#!/usr/bin/env python3
"""Introspecting a clustering run: lattice, verification, α profile.

Beyond the cluster list, a subspace-clustering user usually needs to
know *why* the algorithm reported what it did.  This example shows the
three introspection tools:

* the dense-unit lattice (the search structure the paper's §4.5
  analysis reasons about),
* independent verification of every invariant of the result,
* an α-sensitivity profile for picking the dominance level on
  unfamiliar data.

Run:  python examples/introspection.py
"""

from __future__ import annotations

import numpy as np

from repro import MafiaParams, mafia
from repro.analysis import (alpha_profile, bar_chart, dense_unit_lattice,
                            stable_alpha, summarize_lattice, support_path,
                            verify_result)
from repro.datagen import ClusterSpec, generate


def main() -> None:
    specs = [
        ClusterSpec.box([0, 2, 5, 7], [(10, 18), (30, 38), (60, 70), (44, 52)]),
        ClusterSpec.box([1, 4], [(75, 83), (20, 28)]),
    ]
    ds = generate(30_000, 9, specs, seed=17)
    params = MafiaParams(fine_bins=200, window_size=2, chunk_records=6000)
    domains = np.array([[0.0, 100.0]] * 9)
    result = mafia(ds.records, params, domains=domains)
    print(result.summary())

    # 1. the dense-unit lattice
    summary = summarize_lattice(result)
    print(f"\nlattice: {summary.n_units} dense units, "
          f"{summary.n_edges} projection edges, "
          f"{summary.n_maximal} maximal, closure {summary.closure:.2f}")
    print(bar_chart({f"level {k}": v
                     for k, v in summary.units_per_level.items()},
                    width=30, title="dense units per level"))

    top = result.trace[-1].dense
    path = support_path(result, top.dims[0], top.bins[0])
    print("\nsupport chain of the 4-d cluster unit "
          "(every projection is dense — §4.5):")
    for dims, bins in path:
        print(f"  dims {dims} bins {bins}")

    # 2. independent verification
    report = verify_result(result, ds.records, chunk_records=6000)
    print(f"\n{report.summary()}")

    # 3. alpha profile
    points = alpha_profile(ds.records, [1.5, 2.5, 4.0, 8.0], params,
                           domains=domains)
    print("\nalpha sensitivity:")
    for point in points:
        print(" ", point.describe())
    print(f"stable alpha suggestion: {stable_alpha(points):g}")


if __name__ == "__main__":
    main()
