#!/usr/bin/env python3
"""Mining a rating log: the paper's EachMovie scenario (§5.9.3).

A 4-dimensional data set of (user-id, movie-id, score, weight) ratings:
pMAFIA discovers which *sets of movies* are rated most by which *sets
of users* — 2-dimensional clusters in the (user, movie) and
(movie, score) subspaces — with no supervision at all.

Run:  python examples/movie_ratings.py
"""

from __future__ import annotations

from repro import mafia
from repro.datagen import eachmovie_like
from repro.datagen.real import eachmovie_params

COLUMNS = ["user-id", "movie-id", "score", "weight"]


def main() -> None:
    n = 120_000
    ratings = eachmovie_like(n_records=n)
    params, domains = eachmovie_params(n)
    print(f"rating log: {n} ratings x {ratings.shape[1]} attributes "
          f"{COLUMNS}")

    result = mafia(ratings, params, domains=domains)

    two_d = [c for c in result.clusters if c.dimensionality == 2]
    print(f"\ndiscovered {len(two_d)} two-dimensional clusters "
          f"(paper found 7):\n")
    for cluster in two_d:
        names = [COLUMNS[d] for d in cluster.subspace.dims]
        print(f"  {names[0]} x {names[1]}  ({cluster.point_count} ratings)")
        for term in cluster.dnf:
            parts = []
            for d, (lo, hi) in zip(term.subspace.dims, term.intervals):
                parts.append(f"{COLUMNS[d]} in [{lo:.4g}, {hi:.4g})")
            print(f"      {' AND '.join(parts)}")

    blocks = [c for c in two_d if c.subspace.dims == (0, 1)]
    print(f"\n-> {len(blocks)} user-group x movie-group blocks: "
          "these user cohorts rate these movie slates far more often "
          "than chance — the paper's 'which set of movies were rated "
          "most by which set of users'.")


if __name__ == "__main__":
    main()
