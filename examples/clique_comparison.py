#!/usr/bin/env python3
"""pMAFIA vs CLIQUE head-to-head: supervision, cost, and quality.

Reproduces the paper's argument in one script:

1. CLIQUE needs the user to guess a grid size and density threshold;
   a wrong guess silently degrades or destroys the clustering (Table 3).
2. The uniform grid explodes the candidate space — adaptive grids visit
   orders of magnitude fewer candidate dense units (Table 2 / Fig. 4).
3. pMAFIA's adaptive bin edges report cluster boundaries accurately;
   CLIQUE's snap to the fixed grid (Figure 1.2).

Run:  python examples/clique_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import CliqueParams, MafiaParams, mafia
from repro.analysis import format_table, match_clusters
from repro.clique import clique
from repro.datagen import ClusterSpec, generate


def main() -> None:
    # a cluster whose boundaries sit between the 10-bin grid lines
    specs = [ClusterSpec.box([0, 4, 7], [(23, 37), (51, 66), (12, 28)],
                             name="truth")]
    dataset = generate(40_000, 8, specs, seed=9)
    domains = np.array([[0.0, 100.0]] * 8)

    m = mafia(dataset.records,
              MafiaParams(fine_bins=200, window_size=2, chunk_records=10_000),
              domains=domains)
    good = clique(dataset.records,
                  CliqueParams(bins=10, threshold=0.01, chunk_records=10_000),
                  domains=domains)
    bad = clique(dataset.records,
                 CliqueParams(bins=4, threshold=0.05, chunk_records=10_000),
                 domains=domains)

    rows = []
    for name, res in (("pMAFIA (unsupervised)", m),
                      ("CLIQUE xi=10, tau=1%", good),
                      ("CLIQUE xi=4,  tau=5%", bad)):
        [match] = match_clusters(res, dataset)
        cdus = sum(res.cdus_per_level().values())
        rows.append([name, cdus,
                     "yes" if match.subspace_exact else "NO",
                     f"{match.recall:.2f}", f"{match.precision:.2f}"])
    print(format_table(
        ["algorithm", "CDUs explored", "subspace found", "recall",
         "precision"], rows,
        title="one 3-d cluster at (23-37) x (51-66) x (12-28)"))

    print("\nreported boundaries in dimension 0 (truth: [23, 37)):")
    for name, res in (("pMAFIA", m), ("CLIQUE xi=10", good)):
        target = [c for c in res.clusters if 0 in c.subspace.dims]
        if not target:
            print(f"  {name}: cluster not found")
            continue
        los = [t.intervals[0][0] for t in target[0].dnf]
        his = [t.intervals[0][1] for t in target[0].dnf]
        print(f"  {name}: [{min(los):.1f}, {max(his):.1f})")

    print("\npMAFIA hugs the true boundary; CLIQUE snaps to its grid, "
          "and a poorly guessed grid loses the cluster entirely.")


if __name__ == "__main__":
    main()
