#!/usr/bin/env python3
"""Quickstart: find subspace clusters in synthetic data with pMAFIA.

Generates the paper's flagship scenario — clusters hidden in low
dimensional subspaces of a higher-dimensional noisy data set — and runs
the completely unsupervised MAFIA algorithm (no cluster count, no grid
size, no thresholds: only the data).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MafiaParams, mafia
from repro.analysis import match_clusters
from repro.datagen import ClusterSpec, generate


def main() -> None:
    # Two clusters, each living in its own 4-dimensional subspace of a
    # 10-dimensional space; 10 % noise records on top (paper §5.1).
    specs = [
        ClusterSpec.box([1, 6, 7, 8],
                        [(20, 40), (10, 30), (50, 80), (60, 70)],
                        name="market regime A"),
        ClusterSpec.box([2, 3, 4, 5],
                        [(5, 25), (40, 60), (70, 90), (30, 50)],
                        name="market regime B"),
    ]
    dataset = generate(n_records=20_000, n_dims=10, clusters=specs, seed=11)
    print(f"data: {dataset.n_records} records x {dataset.n_dims} dims "
          f"({dataset.n_noise} noise records)")

    # Cluster.  MafiaParams' defaults are the paper's recommendations;
    # passing nothing at all also works.
    result = mafia(dataset.records, MafiaParams(chunk_records=5000))

    print("\n--- discovered clusters ---")
    print(result.summary())

    print("\n--- search trace (Ncdu / Ndu per dimensionality) ---")
    for level in result.trace:
        print(f"  level {level.level}: {level.n_cdus} candidates "
              f"-> {level.n_dense} dense")

    print("\n--- ground-truth check ---")
    for match in match_clusters(result, dataset):
        spec = dataset.clusters[match.spec_index]
        print(f"  {spec.name!r}: subspace "
              f"{'exact' if match.subspace_exact else 'WRONG'}, "
              f"recall {match.recall:.3f}, "
              f"boundary error {match.boundary_error:.3f}")


if __name__ == "__main__":
    main()
