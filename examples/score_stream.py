#!/usr/bin/env python3
"""Serve a clustering model against a skewed record stream.

Clusters a synthetic data set once, compiles the result into the
packed-interval serving engine (`repro.serve`), ships the compact
compiled-model JSON the way a serving process would receive it, then
scores a simulated hot-key stream in batches — showing the signature
cache answering repeat traffic without re-evaluating, and the batch
API's per-record answers (cluster ids and their subspaces).

Run:  python examples/score_stream.py
"""

from __future__ import annotations

import numpy as np

from repro import MafiaParams, mafia
from repro.core.export import model_to_json
from repro.datagen import ClusterSpec, generate
from repro.serve import ClusterServer


def main() -> None:
    # --- train: two clusters in their own 4-d subspaces (paper §5.1)
    specs = [
        ClusterSpec.box([1, 6, 7, 8],
                        [(20, 40), (10, 30), (50, 80), (60, 70)],
                        name="regime A"),
        ClusterSpec.box([2, 3, 4, 5],
                        [(5, 25), (40, 60), (70, 90), (30, 50)],
                        name="regime B"),
    ]
    dataset = generate(n_records=20_000, n_dims=10, clusters=specs,
                       seed=11)
    result = mafia(dataset.records, MafiaParams(chunk_records=5000))
    print(f"model: {len(result.clusters)} clusters from "
          f"{dataset.n_records} records")

    # --- ship: the compact compiled-model JSON is all a scorer needs
    server = ClusterServer(result)
    wire = model_to_json(server.model)
    server = ClusterServer.from_json(wire)
    print(f"compiled model: {server.model.n_terms} DNF terms, "
          f"{len(wire)} bytes on the wire")

    # --- serve: a skewed stream — many requests, few distinct records
    rng = np.random.default_rng(7)
    hot = dataset.records[rng.integers(0, dataset.n_records, size=200)]
    matched = 0
    for _ in range(10):  # ten batches of 2 000 requests
        batch = hot[rng.integers(0, len(hot), size=2000)]
        scores = server.score_batch(batch)
        matched += int(scores.membership.any(axis=1).sum())
    stats = server.stats()
    print(f"served {stats['records']} requests in {stats['batches']} "
          f"batches: {matched} matched >=1 cluster")
    print(f"cache: {stats['cache']['hits']} hits, "
          f"{stats['evaluations']} evaluations "
          f"(distinct hot signatures <= {len(hot)})")

    # --- answer shape: one record's clusters and their subspaces
    one = server.score_one(hot[0])
    ids = one.cluster_ids(0)
    print(f"record 0 -> clusters {ids}, subspaces "
          f"{[tuple(s) for s in one.record_subspaces(0)]}")


if __name__ == "__main__":
    main()
