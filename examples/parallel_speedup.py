#!/usr/bin/env python3
"""Parallel pMAFIA: thread-SPMD execution and IBM SP2 speedup curves.

Demonstrates both parallel backends:

* ``thread`` — real message-passing SPMD (queues, Reduce collectives,
  the equation-(1) task partition) whose result must equal the serial
  run bit-for-bit;
* ``sim``    — the same execution with deterministic virtual clocks on
  the paper's IBM SP2 machine model, regenerating the near-linear
  speedups of Figure 3 / Table 5.

Run:  python examples/parallel_speedup.py
"""

from __future__ import annotations

import numpy as np

from repro import MachineSpec, MafiaParams, mafia, pmafia
from repro.analysis import format_table, speedup_series
from repro.core.timing import phase_timer
from repro.datagen import ClusterSpec, generate


def main() -> None:
    specs = [
        ClusterSpec.box([2, 5, 8, 11, 13],
                        [(20, 28), (40, 48), (60, 70), (10, 18), (75, 84)]),
        ClusterSpec.box([0, 3, 6, 9, 12],
                        [(50, 58), (30, 38), (12, 20), (80, 88), (44, 52)]),
    ]
    dataset = generate(60_000, 15, specs, seed=42)
    domains = np.array([[0.0, 100.0]] * 15)
    params = MafiaParams(fine_bins=200, window_size=2, chunk_records=15_000)

    with phase_timer() as phases:
        serial = mafia(dataset.records, params, domains=domains)
    print(f"serial found {len(serial.clusters)} clusters:",
          [c.subspace.dims for c in serial.clusters])

    # Where inside a run does the wall time go?  The driver brackets its
    # hot phases (grid build, CDU join, repeat elimination, population,
    # cluster assembly); phase_timer() collects them per thread.
    rows = [[name, f"{phases.seconds[name]:.3f}",
             f"{100 * phases.seconds[name] / phases.total:.1f}%"]
            for name in phases.seconds]
    print()
    print(format_table(["phase", "seconds", "share"], rows,
                       title="serial run, per-phase wall time"))

    # 1. Correctness: the 4-rank thread backend exchanges real messages
    #    and must reproduce the serial clustering exactly.
    threaded = pmafia(dataset.records, 4, params, domains=domains)
    assert [c.subspace.dims for c in threaded.result.clusters] == \
        [c.subspace.dims for c in serial.clusters]
    print("thread backend (p=4) matches the serial result")

    # 2. Performance: virtual IBM SP2 runtimes over processor counts.
    times = {}
    for p in (1, 2, 4, 8, 16):
        run = pmafia(dataset.records, p, params, backend="sim",
                     machine=MachineSpec.ibm_sp2(), domains=domains)
        times[p] = run.makespan
    speedups = speedup_series(times)

    rows = [[p, f"{times[p]:.2f}", f"{speedups[p]:.2f}"]
            for p in sorted(times)]
    print()
    print(format_table(["procs", "SP2 seconds", "speedup"], rows,
                       title="simulated IBM SP2 (cf. paper Figure 3)"))

    # 3. Where does the time go?  Per-rank work tallies from the last run.
    run16 = pmafia(dataset.records, 16, params, backend="sim",
                   domains=domains)
    c0 = run16.counters[0]
    print(f"\nrank 0 at p=16: {c0.record_cell_ops:.2e} cell ops, "
          f"{c0.unit_pair_ops:.2e} pair ops, "
          f"{c0.io_chunks} chunk reads, {c0.messages} messages")

    # 4. The observability subsystem gives the same breakdown per rank
    #    without external timers: re-run p=4 with tracing + metrics on
    #    (bit-identical clusters and virtual times, asserted by
    #    tests/test_observability.py) and read the span/counter exports.
    traced = pmafia(dataset.records, 4, params.with_(trace=True,
                                                     metrics=True),
                    backend="sim", domains=domains)
    rows = []
    for rank_obs in traced.obs.ranks:
        secs = rank_obs.phase_seconds()
        m = rank_obs.metrics
        rows.append([
            rank_obs.rank,
            f"{secs.get('population', 0.0):.3f}",
            f"{secs.get('join', 0.0) + secs.get('dedup', 0.0):.3f}",
            m["io.chunks_read{kind=indexed}"]["value"],
            m["comm.collectives{op=allreduce}"]["value"],
        ])
    print()
    print(format_table(
        ["rank", "populate s", "lattice s", "indexed chunks", "allreduces"],
        rows, title="per-rank breakdown from run.obs (p=4, traced)"))
    comm_bytes = traced.obs.merged_metrics()["total"]
    nbytes = sum(v["value"] for k, v in comm_bytes.items()
                 if k.startswith("comm.bytes"))
    print(f"collective payload moved across the run: {nbytes / 1e6:.2f} MB")


if __name__ == "__main__":
    main()
