#!/usr/bin/env python3
"""Mining a financial indicator panel: the paper's DAX scenario
(§5.9.1, Table 4).

A 22-dimensional panel of daily market indicators.  Partially
correlated "market regimes" create dense regions in many low
dimensional subspaces; pMAFIA enumerates them per dimensionality —
note how higher-dimensional co-movements are progressively rarer, the
Table 4 signature.  Also shows the α knob: α = 2 vs a stricter α = 3.

Run:  python examples/stock_indicators.py
"""

from __future__ import annotations

from collections import Counter

from repro import mafia
from repro.datagen import dax_like
from repro.datagen.real import dax_params


def main() -> None:
    panel = dax_like()
    params, domains = dax_params()
    print(f"indicator panel: {panel.shape[0]} trading days x "
          f"{panel.shape[1]} indicators, alpha = {params.alpha}")

    result = mafia(panel, params, domains=domains)

    by_dim = result.clusters_by_dimensionality()
    print("\nclusters per subspace dimensionality "
          "(paper Table 4: 161/134/104/24 at dims 3-6):")
    for dim in sorted(by_dim):
        if dim >= 3:
            print(f"  {dim}-dimensional: {by_dim[dim]}")

    print("\nhighest-dimensional co-movement regimes:")
    top = max(c.dimensionality for c in result.clusters)
    for cluster in result.clusters:
        if cluster.dimensionality == top:
            print(f"  indicators {cluster.subspace.dims}: "
                  f"{cluster.point_count} days, {cluster.describe()}")

    # stricter significance: only the most dominant regimes survive
    strict = mafia(panel, params.with_(alpha=3.0), domains=domains)
    strict_counts = Counter(c.dimensionality for c in strict.clusters
                            if c.dimensionality >= 3)
    print(f"\nwith alpha = 3: {sum(strict_counts.values())} clusters "
          f"(>=3-d) remain — raising alpha keeps only regimes that "
          "dominate their indicators")


if __name__ == "__main__":
    main()
