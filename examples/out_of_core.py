#!/usr/bin/env python3
"""Out-of-core pMAFIA: clustering a data set that lives on disk.

pMAFIA is "a disk-based parallel and scalable algorithm" (§4): data is
written once to a shared record file; each SPMD rank stages its N/p
block to a rank-private "local disk" file and streams it in chunks of
B records on every pass, so memory use is bounded by B regardless of N.

Run:  python examples/out_of_core.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import MafiaParams, pmafia
from repro.datagen import ClusterSpec, generate
from repro.io import read_header, write_records


def main() -> None:
    spec = ClusterSpec.box([1, 3, 5], [(20, 32), (50, 62), (70, 82)])
    dataset = generate(80_000, 8, [spec], seed=5)

    with tempfile.TemporaryDirectory() as tmp:
        shared = Path(tmp) / "shared.bin"
        write_records(shared, dataset.records)
        info = read_header(shared)
        print(f"shared record file: {info.n_records} records x "
              f"{info.n_dims} dims, {info.data_nbytes / 1e6:.1f} MB on disk")

        # B = 5000 records per chunk: each rank holds at most
        # B x d x 8 bytes = 320 kB of records in memory at a time.
        params = MafiaParams(fine_bins=200, window_size=2,
                             chunk_records=5000)
        run = pmafia(shared, 4, params,
                     domains=np.array([[0.0, 100.0]] * 8))

        print(f"\n4 ranks staged their blocks to local files:")
        for rank in range(4):
            local = Path(tmp) / f"shared.rank{rank}.bin"
            print(f"  rank {rank}: {read_header(local).n_records} records "
                  f"in {local.name}")

        print(f"\nclusters found out-of-core:")
        for cluster in run.result.clusters:
            print(f"  dims {cluster.subspace.dims}: {cluster.describe()}")

        assert any(c.subspace.dims == (1, 3, 5)
                   for c in run.result.clusters)


if __name__ == "__main__":
    main()
