"""Seeded streaming soak: a long drifting workload with oracle gates.

Drives a :class:`~repro.stream.engine.StreamingSession` on the
simulated-time backend through a deterministic drifting workload until
the virtual clock covers a target span (default 1800 s — a 30-minute
shift on the paper's machine model), taking periodic snapshots.  Two
gates decide pass/fail:

- **oracle gate** — every sampled snapshot must be bit-identical to a
  cold batch run over exactly the live window (cluster signature, DNF
  terms, per-level trace and ``pairs_examined``);
- **staleness gate** — the p95 snapshot wall latency must stay under
  the staleness budget, i.e. the incremental engine keeps serving
  fresh clusterings instead of degenerating into cold reruns.

Runnable as ``python -m repro.stream.soak``; exits non-zero when a
gate fails and writes a JSON report either way.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
import time
from typing import Any

import numpy as np

from ..core.result import ClusteringResult
from ..params import MafiaParams
from ..parallel.comm import Comm
from ..parallel.spmd import run_spmd
from .engine import StreamingSession


def result_fingerprint(result: ClusteringResult) -> str:
    """A stable digest of everything the differential oracle compares:
    clusters (subspace, member bins, point counts, DNF terms) and the
    per-level trace (sizes, dense units, dense counts)."""
    h = hashlib.sha256()
    h.update(str(result.n_records).encode())
    for c in result.clusters:
        h.update(repr(tuple(c.subspace.dims)).encode())
        h.update(np.ascontiguousarray(c.units_bins, dtype=np.int64)
                 .tobytes())
        h.update(str(c.point_count).encode())
        h.update(repr(c.dnf).encode())
    for tr in result.trace:
        h.update(repr((tr.level, tr.n_cdus_raw, tr.n_cdus,
                       tr.n_dense)).encode())
        h.update(tr.dense.tobytes())
        h.update(np.ascontiguousarray(tr.dense_counts,
                                      dtype=np.int64).tobytes())
    return h.hexdigest()


def pairs_examined(result: ClusteringResult) -> float:
    """join + dedup pairs from a metered result's metrics export."""
    if result.obs is None or result.obs.metrics is None:
        return float("nan")
    m = result.obs.metrics
    total = 0.0
    for name in ("join.pairs_examined", "dedup.pairs_examined"):
        if name in m:
            total += m[name]["value"]
    return total


def _drifting_block(rng: np.random.Generator, step: int, n: int,
                    d: int) -> np.ndarray:
    """One delta of a slowly drifting workload: a 3-d embedded cluster
    whose center wanders across the domain plus uniform noise, so the
    histogram drifts and the rebin path is genuinely exercised."""
    block = rng.uniform(0.0, 100.0, size=(n, d))
    center = 20.0 + 55.0 * (0.5 + 0.5 * np.sin(step / 17.0))
    n_cluster = (2 * n) // 3
    for dim in (1, 3, 5):
        if dim < d:
            block[:n_cluster, dim] = rng.uniform(center, center + 8.0,
                                                 n_cluster)
    return block


def _soak_rank(comm: Comm, cfg: dict) -> dict:
    """One rank of the soak: every rank generates the identical seeded
    delta stream, so the cold oracle's live window is reconstructable
    without extra collectives."""
    params: MafiaParams = cfg["params"]
    d = cfg["dims"]
    domains = np.array([[0.0, 100.0]] * d)
    rng = np.random.default_rng(cfg["seed"])
    spill_dir = cfg.get("spill_dir") if comm.size == 1 else None
    session = StreamingSession(
        params, comm=comm, domains=domains,
        window_records=cfg["window_records"],
        drift_threshold=cfg["drift_threshold"],
        spill_dir=spill_dir,
        compact_segments=cfg["compact_segments"])

    from ..core.pmafia import pmafia_rank  # deferred: heavy module

    history: list[np.ndarray] = []
    snapshot_wall: list[float] = []
    oracle_checks = 0
    failures: list[dict[str, Any]] = []
    step = 0
    while True:
        if comm.rank == 0:
            more = (comm.time() < cfg["target_virtual"]
                    and step < cfg["max_deltas"])
        else:
            more = None
        if not comm.bcast(more, root=0):
            break
        block = _drifting_block(rng, step, cfg["delta_records"], d)
        history.append(block)
        session.ingest(block)
        step += 1
        if step % cfg["snapshot_every"]:
            continue
        t0 = time.perf_counter()
        snap = session.snapshot()
        snapshot_wall.append(time.perf_counter() - t0)
        if step % cfg["oracle_every"]:
            continue
        oracle_checks += 1
        live = np.ascontiguousarray(
            np.concatenate(history, axis=0)[-cfg["window_records"]:])
        cold = pmafia_rank(comm, live, params, domains)
        mismatch = {}
        if result_fingerprint(snap) != result_fingerprint(cold):
            mismatch["fingerprint"] = [result_fingerprint(snap),
                                       result_fingerprint(cold)]
        sp, cp = pairs_examined(snap), pairs_examined(cold)
        if not (np.isnan(sp) and np.isnan(cp)) and sp != cp:
            mismatch["pairs_examined"] = [sp, cp]
        if mismatch:
            failures.append({"step": step, **mismatch})
    session.close()
    return {
        "deltas": step,
        "oracle_checks": oracle_checks,
        "failures": failures,
        "snapshot_wall": snapshot_wall,
        "virtual_seconds": comm.time(),
        "metrics": (session.obs.export().metrics
                    if session.obs is not None else None),
    }


def run_soak(*, seed: int = 20260807, nprocs: int = 2,
             backend: str = "sim", dims: int = 8,
             delta_records: int = 400, window_records: int = 4000,
             snapshot_every: int = 4, oracle_every: int = 8,
             target_virtual: float = 1800.0, max_deltas: int = 200,
             staleness_budget: float = 10.0,
             drift_threshold: float = 0.25, compact_segments: int = 16,
             spill_dir: str | None = None,
             params: MafiaParams | None = None) -> dict:
    """Run the soak and evaluate its gates; returns the JSON report."""
    params = (params or MafiaParams(fine_bins=200, tau=16)).with_(
        metrics=True)
    cfg = {
        "seed": seed, "dims": dims, "delta_records": delta_records,
        "window_records": window_records,
        "snapshot_every": snapshot_every, "oracle_every": oracle_every,
        "target_virtual": target_virtual, "max_deltas": max_deltas,
        "drift_threshold": drift_threshold,
        "compact_segments": compact_segments,
        "spill_dir": spill_dir, "params": params,
    }
    t0 = time.perf_counter()
    ranks = run_spmd(_soak_rank, nprocs, backend=backend, args=(cfg,))
    wall = time.perf_counter() - t0
    rank0 = ranks[0].value
    latencies = sorted(rank0["snapshot_wall"])
    p95 = (latencies[max(0, int(len(latencies) * 0.95) - 1)]
           if latencies else 0.0)
    gates = {
        "oracle": not rank0["failures"] and rank0["oracle_checks"] > 0,
        "staleness": p95 <= staleness_budget,
    }
    stream_metrics = {}
    if rank0["metrics"]:
        stream_metrics = {k: v["value"] for k, v in
                          rank0["metrics"].items()
                          if k.startswith("stream.")
                          and "value" in v}
    return {
        "seed": seed, "nprocs": nprocs, "backend": backend,
        "deltas": rank0["deltas"],
        "oracle_checks": rank0["oracle_checks"],
        "failures": rank0["failures"],
        "virtual_seconds": rank0["virtual_seconds"],
        "wall_seconds": wall,
        "snapshots": len(rank0["snapshot_wall"]),
        "p95_snapshot_seconds": p95,
        "staleness_budget_seconds": staleness_budget,
        "stream_metrics": stream_metrics,
        "gates": gates,
        "ok": all(gates.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream.soak",
        description="Seeded streaming soak with oracle + staleness gates")
    parser.add_argument("--seed", type=int, default=20260807)
    parser.add_argument("--nprocs", type=int, default=2)
    parser.add_argument("--backend", default="sim")
    parser.add_argument("--dims", type=int, default=8)
    parser.add_argument("--delta-records", type=int, default=400)
    parser.add_argument("--window", type=int, default=4000,
                        dest="window_records")
    parser.add_argument("--snapshot-every", type=int, default=4)
    parser.add_argument("--oracle-every", type=int, default=8)
    parser.add_argument("--target-virtual", type=float, default=1800.0,
                        help="virtual seconds to cover (default: a "
                        "30-minute-equivalent shift)")
    parser.add_argument("--max-deltas", type=int, default=200)
    parser.add_argument("--staleness-budget", type=float, default=10.0,
                        help="p95 snapshot wall-latency gate, seconds")
    parser.add_argument("--drift-threshold", type=float, default=0.25)
    parser.add_argument("--spill", action="store_true",
                        help="stage deltas in a temp spill dir "
                        "(nprocs=1 only)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    spill_dir = None
    tmp = None
    if args.spill:
        tmp = tempfile.TemporaryDirectory(prefix="pmafia-soak-")
        spill_dir = tmp.name
    try:
        report = run_soak(
            seed=args.seed, nprocs=args.nprocs, backend=args.backend,
            dims=args.dims, delta_records=args.delta_records,
            window_records=args.window_records,
            snapshot_every=args.snapshot_every,
            oracle_every=args.oracle_every,
            target_virtual=args.target_virtual,
            max_deltas=args.max_deltas,
            staleness_budget=args.staleness_budget,
            drift_threshold=args.drift_threshold,
            spill_dir=spill_dir)
    finally:
        if tmp is not None:
            tmp.cleanup()
    text = json.dumps(report, indent=1, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
