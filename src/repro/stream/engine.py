"""The incremental clustering engine: :class:`StreamingSession`.

A session is a long-running, incrementally maintained clustering over a
sliding window of records.  ``ingest`` applies one ordered delta:
broadcast to every rank, sliced into per-rank shares, folded into the
maintained global fine histogram (exact integer adds), appended as a
:class:`~repro.stream.window.WindowSegment`, and aged-out head records
expired (exact integer subtracts).  ``snapshot`` then runs the pMAFIA
lattice over the live window using the *same* core passes as the cold
batch driver — join, repeat elimination, dense identification, cluster
assembly — with population served from per-segment bitmap indexes and
caches.

**Correctness anchor** — ``snapshot()`` is bit-identical to a cold
batch run over exactly the live records, including ``pairs_examined``:

- the fine histogram is maintained by per-block integer adds and
  subtracts (:func:`~repro.core.histogram.block_histogram`), which are
  exact over any block partition, so it always equals a cold pass over
  the live records;
- the adaptive grid is rebuilt from that histogram at every snapshot
  by the deterministic :func:`~repro.core.adaptive_grid.build_grid` —
  cheap, ``O(d x fine_bins)``;
- per-CDU counts are exact popcounts summed over segments
  (:func:`~repro.core.population.count_units`), and popcounts are
  additive over any row partition;
- the lattice walk calls the batch driver's own join / dedup /
  identify / assembly functions, replaying each level's *measured*
  pair charges when a join or dedup result is served from cache.

The drift threshold therefore tunes **latency only**: expensive
per-segment artifacts (bitmap indexes, count caches) depend only on
the grid's bin *edges* and are rebuilt eagerly when histogram drift
(:func:`~repro.core.adaptive_grid.histogram_drift`) crosses the
threshold, keeping them warm for the next snapshot.  Exactness never
depends on when (or whether) that eager rebuild runs.

A ``spill_dir`` (single-rank sessions only) makes the session
resumable: each delta's records are staged to disk before the
manifest commit, segment bitmap indexes persist as crash-safe ``.bmx``
siblings, and ``resume=True`` rebuilds the exact live window from the
manifest — re-ingesting an already applied sequence number is a no-op,
so producers replay their last delta after a crash without
double-counting.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import replace
from pathlib import Path
from typing import Any

import numpy as np

from ..core.adaptive_grid import build_grid, histogram_drift
from ..core.histogram import block_histogram, check_domains
from ..core.identify import dense_units
from ..core.pmafia import (_eliminate_repeat_cdus,
                           _find_candidate_dense_units, _identify_dense,
                           assemble_clusters, level_one_cdus,
                           registrations_for_report, resolved_join_strategy)
from ..core.result import ClusteringResult, LevelTrace
from ..core.units import UnitTable
from ..errors import DataError, StreamError
from ..io.binned import edges_fingerprint
from ..io.bitmap_index import (append_bitmap_index, append_bitmap_tiles,
                               bitmap_cache_path)
from ..io.partition import block_range
from ..io.records import RecordFile, write_records
from ..obs import RankObs
from ..params import MafiaParams
from ..parallel.comm import Comm
from ..parallel.delta import broadcast_block, incremental_allreduce
from ..parallel.serial import SerialComm
from .window import SlidingWindow, WindowSegment

_MANIFEST_NAME = "stream_manifest.json"
_MANIFEST_VERSION = 1

#: default segment-count ceiling before adjacent segments are merged
DEFAULT_COMPACT_SEGMENTS = 64


class _PairsTally:
    """Comm proxy that measures the pair charges of one join/dedup call.

    Charges pass through to the wrapped communicator unchanged (the
    virtual clock and metrics see the live call exactly as the batch
    driver's); the measured total is stored with the cached result so a
    later cache hit replays the identical per-rank charge.
    """

    def __init__(self, comm: Comm) -> None:
        self._comm = comm
        self.pairs = 0.0

    def charge_pairs(self, pairs: float) -> None:
        self.pairs += pairs
        self._comm.charge_pairs(pairs)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._comm, name)


def _atomic_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _unlink_quiet(path: Path | None) -> None:
    if path is None:
        return
    try:
        os.unlink(path)
    except OSError:
        pass


class StreamingSession:
    """Long-running incremental clustering over a sliding record window.

    Parameters
    ----------
    params:
        The usual :class:`~repro.params.MafiaParams`; ``trace`` /
        ``metrics`` additionally give every snapshot result a fresh
        per-snapshot observability export (``result.obs``) directly
        comparable to a cold run's.
    comm:
        The rank's communicator for SPMD sessions (every rank
        constructs one session and calls ``ingest``/``snapshot``
        collectively); defaults to a private
        :class:`~repro.parallel.serial.SerialComm`.
    domains:
        Explicit ``(d, 2)`` per-dimension domains — mandatory, because
        global min/max are not maintainable under expiry (an expired
        record may have carried the extremum).  Snapshots equal a cold
        run given the *same* explicit domains.
    window_records:
        Sliding-window capacity in records; ``None`` keeps everything.
    drift_threshold:
        Normalised histogram-drift level above which the adaptive bins
        are eagerly re-merged and segment artifacts rebuilt at ingest
        time (latency knob; see the module docstring).
    spill_dir:
        Directory for delta staging + resumable state (single-rank
        sessions only).
    compact_segments:
        Merge the two oldest segments whenever the live segment count
        exceeds this (bounds per-snapshot segment overhead); resident
        merges go through
        :func:`~repro.io.bitmap_index.append_bitmap_tiles`, spilled
        ones through the crash-safe on-disk
        :func:`~repro.io.bitmap_index.append_bitmap_index`.
    resume:
        Rebuild the live window from ``spill_dir``'s manifest (which
        must exist) instead of starting empty.
    """

    def __init__(self, params: MafiaParams | None = None, *,
                 comm: Comm | None = None,
                 domains: np.ndarray,
                 window_records: int | None = None,
                 drift_threshold: float = 0.25,
                 spill_dir: str | os.PathLike | None = None,
                 compact_segments: int = DEFAULT_COMPACT_SEGMENTS,
                 resume: bool = False) -> None:
        self.comm = SerialComm() if comm is None else comm
        self.params = params or MafiaParams()
        domains = np.asarray(domains, dtype=np.float64)
        if domains.ndim != 2 or domains.shape[1] != 2:
            raise DataError(f"domains must be (d, 2), got {domains.shape}")
        self.domains = check_domains(domains, domains.shape[0])
        self.n_dims = int(domains.shape[0])
        if window_records is not None and window_records <= 0:
            raise DataError(
                f"window_records must be positive, got {window_records}")
        self.window_records = window_records
        if drift_threshold < 0:
            raise DataError(
                f"drift_threshold must be >= 0, got {drift_threshold}")
        self.drift_threshold = float(drift_threshold)
        if compact_segments < 2:
            raise DataError(
                f"compact_segments must be >= 2, got {compact_segments}")
        self.compact_segments = int(compact_segments)
        if spill_dir is not None and self.comm.size > 1:
            raise StreamError(
                "spill_dir is only supported on single-rank sessions "
                f"(this session has {self.comm.size} ranks)")
        self.spill_dir = None if spill_dir is None else Path(spill_dir)
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)

        self._hist = np.zeros((self.n_dims, self.params.fine_bins),
                              dtype=np.int64)
        self._window = SlidingWindow()
        self._last_seq = -1
        self._grid = None
        self._edges_fp: bytes | None = None
        self._grid_hist: np.ndarray | None = None
        self._join_cache: dict[tuple, tuple[bytes, bytes, float]] = {}
        self._dedup_cache: dict[bytes, tuple[bytes, float]] = {}
        self._closed = False
        self.obs = RankObs.create(self.params, self.comm)

        if resume:
            if self.spill_dir is None:
                raise StreamError("resume=True needs a spill_dir")
            self._resume_from_manifest()

    # -- lifecycle --------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def n_live(self) -> int:
        """Global live record count."""
        return self._window.g_live

    @property
    def last_seq(self) -> int:
        """Highest applied delta sequence number (-1 when none)."""
        return self._last_seq

    def close(self) -> None:
        """End the session (idempotent); further ingests/snapshots
        raise :class:`~repro.errors.StreamError`.  Spilled state stays
        on disk for a later ``resume=True`` session."""
        self._closed = True

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self, op: str) -> None:
        if self._closed:
            raise StreamError(f"{op} on a closed streaming session")

    # -- ingest -----------------------------------------------------------
    def ingest(self, block: np.ndarray | None, seq: int | None = None
               ) -> bool:
        """Apply one delta collectively; returns False for an
        already-applied sequence number (idempotent crash replay).

        The root rank passes the ``(n, d)`` record block (other ranks
        may pass ``None``); ``seq`` defaults to ``last_seq + 1`` and
        must otherwise be exactly the next number — gaps mean lost
        deltas and raise :class:`~repro.errors.StreamError`.
        """
        self._check_open("ingest")
        t0 = time.perf_counter()
        block = broadcast_block(self.comm, block)
        if block.shape[1] != self.n_dims:
            raise DataError(
                f"delta has {block.shape[1]} dimensions, session has "
                f"{self.n_dims}")
        if seq is None:
            seq = self._last_seq + 1
        seq = int(seq)
        if seq <= self._last_seq:
            return False          # replayed delta: already applied
        if seq != self._last_seq + 1:
            raise StreamError(
                f"delta gap: got seq {seq}, expected {self._last_seq + 1}")
        g_n = block.shape[0]
        lo, hi = block_range(g_n, self.comm.size, self.comm.rank)
        local = np.ascontiguousarray(block[lo:hi])

        delta_hist = block_histogram(local, self.domains,
                                     self.params.fine_bins)
        incremental_allreduce(self.comm, delta_hist, self._hist)

        rec_path = None
        if self.spill_dir is not None and local.shape[0]:
            rec_path = self.spill_dir / f"seg-{seq:08d}.rec"
            write_records(rec_path, local)
        self._window.append(WindowSegment(seq, local, g_n, lo, hi,
                                          rec_path))
        self._last_seq = seq

        n_expired = 0
        if self.window_records is not None \
                and self._window.g_live > self.window_records:
            n_expired = self._expire(self._window.g_live
                                     - self.window_records)
        if self.comm.size == 1 \
                and len(self._window.segments) > self.compact_segments:
            self._compact()
        self._maybe_rebin()
        self._write_manifest()

        if self.obs is not None:
            self.obs.stream_ingest(seq, g_n, time.perf_counter() - t0)
            if n_expired:
                self.obs.stream_expired(n_expired)
        return True

    def _expire(self, k_global: int) -> int:
        """Collectively age out the oldest ``k_global`` records,
        keeping the maintained histogram exact (integer subtraction of
        the dropped rows' histogram)."""
        reaped = [seg for seg in self._window.segments
                  if seg.rec_path is not None]
        dropped, total = self._window.expire(k_global)
        live = {id(seg) for seg in self._window.segments}
        if total == 0:
            return 0
        drop_hist = np.zeros_like(self._hist)
        for rows in dropped:
            drop_hist += block_histogram(rows, self.domains,
                                         self.params.fine_bins)
        incremental_allreduce(self.comm, -drop_hist, self._hist)
        for seg in reaped:
            if id(seg) not in live:       # fully expired spilled segment
                _unlink_quiet(seg.rec_path)
                _unlink_quiet(bitmap_cache_path(seg.rec_path))
        return total

    # -- grid maintenance -------------------------------------------------
    def _current_grid(self):
        """The adaptive grid of the live window — deterministic
        function of (histogram, domains, live count, params), exactly
        what a cold run would build."""
        if self._window.g_live == 0:
            raise DataError("cannot cluster an empty data set")
        grid = build_grid(self._hist, self.domains, self._window.g_live,
                          self.params)
        self._grid = grid
        self._edges_fp = edges_fingerprint(grid)
        return grid

    def _maybe_rebin(self) -> None:
        """Eagerly re-merge bins and rebuild segment artifacts when
        histogram drift since the last rebuild crosses the threshold —
        a latency optimisation, never a correctness requirement."""
        if self._window.g_live == 0:
            return
        if self._grid_hist is not None:
            drift = histogram_drift(self._hist, self._grid_hist)
            if drift <= self.drift_threshold:
                return
        else:
            drift = float("inf")
        grid = self._current_grid()
        for seg in self._window.segments:
            if seg.n_local:
                seg.ensure_index(grid, self._edges_fp,
                                 self.params.chunk_records)
        self._grid_hist = self._hist.copy()
        if self.obs is not None and np.isfinite(drift):
            self.obs.stream_rebin(drift)

    # -- compaction -------------------------------------------------------
    def _compact(self) -> None:
        """Merge the two oldest segments until the count is back under
        ``compact_segments`` (single-rank sessions).  Current artifacts
        are carried over by *appending* the younger segment's records
        to the older one's bitmap index — resident via
        :func:`append_bitmap_tiles`, spilled via the crash-safe
        :func:`append_bitmap_index` — and by summing the parents' count
        caches for keys both hold."""
        while len(self._window.segments) > self.compact_segments:
            a, b = self._window.segments[0], self._window.segments[1]
            self._window.segments[:2] = [self._merge(a, b)]

    def _merge(self, a: WindowSegment, b: WindowSegment) -> WindowSegment:
        records = np.ascontiguousarray(
            np.concatenate([a.records, b.records], axis=0))
        g_size = a.g_live + b.g_live
        rec_path = None
        index = None
        fp = self._edges_fp
        if self.spill_dir is not None:
            rec_path = self.spill_dir / f"seg-{b.seq:08d}c.rec"
            write_records(rec_path, records)
        if fp is not None and self._grid is not None:
            a_index = a.current_index(fp)
            if a_index is not None and b.records.shape[0]:
                if a_index.resident:
                    index = append_bitmap_tiles(a_index, self._grid,
                                                b.records)
                elif rec_path is not None and a_index.path is not None:
                    # carry the on-disk tiles over under the merged name,
                    # then append in place (crash-safe: fingerprint is
                    # zeroed until the new tiles and CRCs are committed)
                    target = bitmap_cache_path(rec_path)
                    target.write_bytes(Path(a_index.path).read_bytes())
                    index = append_bitmap_index(target, self._grid,
                                                b.records, grid_hash=fp)
            elif a_index is not None:
                index = a_index
        counts: dict[bytes, np.ndarray] = {}
        if index is not None:
            b_cache = b.cached_counts()
            for key, a_counts in a.cached_counts().items():
                b_counts = b_cache.get(key)
                if b_counts is not None:
                    counts[key] = a_counts + b_counts
        merged = WindowSegment(b.seq, records, g_size, 0, g_size, rec_path)
        if fp is not None:
            merged.seed_artifacts(index, fp, counts)
        for old in (a, b):
            if old.rec_path is not None:
                _unlink_quiet(old.rec_path)
                _unlink_quiet(bitmap_cache_path(old.rec_path))
        return merged

    # -- spill manifest ---------------------------------------------------
    def _write_manifest(self) -> None:
        if self.spill_dir is None:
            return
        _atomic_json(self.spill_dir / _MANIFEST_NAME, {
            "version": _MANIFEST_VERSION,
            "last_seq": self._last_seq,
            "n_dims": self.n_dims,
            "fine_bins": self.params.fine_bins,
            "window_records": self.window_records,
            "domains": self.domains.tolist(),
            "segments": [{
                "seq": seg.seq,
                "file": seg.rec_path.name if seg.rec_path is not None
                else None,
                "g_size": seg.g_size,
                "g_dropped": seg.g_dropped,
            } for seg in self._window.segments],
        })

    def _resume_from_manifest(self) -> None:
        path = self.spill_dir / _MANIFEST_NAME
        if not path.exists():
            raise StreamError(
                f"resume=True but no manifest at {path}")
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StreamError(f"unreadable stream manifest {path}: "
                              f"{exc}") from exc
        if manifest.get("version") != _MANIFEST_VERSION:
            raise StreamError(
                f"unsupported stream manifest version "
                f"{manifest.get('version')!r}")
        if manifest["n_dims"] != self.n_dims:
            raise StreamError(
                f"manifest has {manifest['n_dims']} dimensions, session "
                f"was constructed with {self.n_dims}")
        if manifest["fine_bins"] != self.params.fine_bins:
            raise StreamError(
                f"manifest was written with fine_bins="
                f"{manifest['fine_bins']}, session has "
                f"{self.params.fine_bins}")
        for entry in manifest["segments"]:
            if entry["file"] is None:
                continue
            rec_path = self.spill_dir / entry["file"]
            records = RecordFile(rec_path).read_all()
            records = np.ascontiguousarray(records, dtype=np.float64)
            seg = WindowSegment(entry["seq"], records, entry["g_size"],
                                0, entry["g_size"], rec_path)
            seg.drop_head_global(entry["g_dropped"])
            if seg.g_live:
                self._hist += block_histogram(seg.records, self.domains,
                                              self.params.fine_bins)
                self._window.append(seg)
        self._last_seq = int(manifest["last_seq"])

    # -- snapshot ---------------------------------------------------------
    def snapshot(self) -> ClusteringResult:
        """Cluster the live window — bit-identical to a cold batch run
        over exactly the live records (same params, same domains, same
        communicator size), including per-rank ``pairs_examined``.

        With ``params.trace`` / ``params.metrics`` set, the result
        carries a fresh per-snapshot observability export in ``.obs``,
        directly comparable to the cold run's.
        """
        self._check_open("snapshot")
        t0 = time.perf_counter()
        obs = RankObs.create(self.params, self.comm)
        if obs is None:
            result = self._snapshot_inner(None)
        else:
            with obs.activate(self.comm):
                with obs.span("snapshot", cat="run", rank=self.comm.rank,
                              size=self.comm.size):
                    result = self._snapshot_inner(obs)
            result = replace(result, obs=obs.export())
        if self.obs is not None:
            hits = self._snap_hits
            misses = self._snap_misses
            self.obs.stream_snapshot(
                result.n_records, time.perf_counter() - t0,
                levels=len(result.trace), cache_hits=hits,
                cache_misses=misses)
        return result

    def _populate(self, cdus: UnitTable, grid) -> np.ndarray:
        """Global per-CDU counts of the live window: exact per-segment
        popcounts summed locally, then one sum-allreduce — identical to
        the batch pass over the concatenated live records."""
        local = np.zeros(cdus.n_units, dtype=np.int64)
        if cdus.n_units:
            key = hashlib.sha256(cdus.tobytes()).digest()
            for seg in self._window.segments:
                if not seg.n_local:
                    continue
                if seg.has_counts(key):
                    self._snap_hits += 1
                else:
                    self._snap_misses += 1
                local += seg.counts_for(
                    cdus, key, grid, self._edges_fp,
                    self.params.chunk_records,
                    on_quarantine=self._on_quarantine)
        if self.comm.size == 1:
            return local
        return self.comm.allreduce(local, op="sum")

    def _on_quarantine(self, path: str) -> None:
        if self.obs is not None:
            self.obs.stream_quarantine(path)

    def _join(self, dense: UnitTable, level: int, strategy: str,
              tokens, keep, obs: RankObs | None
              ) -> tuple[UnitTable, np.ndarray]:
        """The level join, served from the session cache when this
        exact (strategy, dense table) was joined before.  A hit replays
        the measured per-rank pair charge, so the virtual clock and the
        ``join.pairs_examined`` metric advance exactly as the live call
        would."""
        key = (strategy, level, dense.tobytes())
        hit = self._join_cache.get(key)
        if hit is not None:
            full_bytes, combined_bytes, pairs = hit
            self._snap_hits += 1
            self.comm.charge_pairs(pairs)
            if obs is not None:
                obs.add_pairs("join", pairs)
            return (UnitTable.frombytes(full_bytes),
                    np.frombuffer(combined_bytes, dtype=bool).copy())
        self._snap_misses += 1
        tally = _PairsTally(self.comm)
        raw, combined = _find_candidate_dense_units(
            tally, dense, self.params.tau, strategy=strategy,
            tokens=tokens, keep=keep)
        self._join_cache[key] = (raw.tobytes(),
                                 np.ascontiguousarray(combined).tobytes(),
                                 tally.pairs)
        return raw, combined

    def _dedup(self, raw: UnitTable, obs: RankObs | None) -> UnitTable:
        """Repeat elimination, cached like :meth:`_join`."""
        key = raw.tobytes()
        hit = self._dedup_cache.get(key)
        if hit is not None:
            cdus_bytes, pairs = hit
            self._snap_hits += 1
            self.comm.charge_pairs(pairs)
            if obs is not None:
                obs.add_pairs("dedup", pairs)
            return UnitTable.frombytes(cdus_bytes)
        self._snap_misses += 1
        tally = _PairsTally(self.comm)
        cdus, _ = _eliminate_repeat_cdus(tally, raw, self.params.tau)
        self._dedup_cache[key] = (cdus.tobytes(), tally.pairs)
        return cdus

    def _snapshot_inner(self, obs: RankObs | None) -> ClusteringResult:
        self._snap_hits = 0
        self._snap_misses = 0
        comm, params = self.comm, self.params
        grid = self._current_grid()
        n_live = self._window.g_live

        # no DirectMiner here: the streaming window has no staged bin
        # store to project transactions from, so ``"direct"`` resolves
        # through the classic tiers (resolved_join_strategy, miner=None)
        may_pack = params.join_strategy in ("hash", "fptree", "direct") or (
            params.join_strategy == "auto"
            and not getattr(comm, "models_paper_costs", False))

        def level_pass(cdus: UnitTable, raw_count: int, level: int
                       ) -> LevelTrace:
            counts = self._populate(cdus, grid)
            mask, ndu = _identify_dense(comm, cdus, counts, grid,
                                        params.tau, params.min_bin_points)
            if obs is not None:
                obs.level_stats(level, raw_count, cdus.n_units, ndu)
            dense, dense_counts = dense_units(cdus, counts, mask)
            return LevelTrace(level=level, n_cdus_raw=raw_count,
                              n_cdus=cdus.n_units, n_dense=ndu,
                              dense=dense, dense_counts=dense_counts)

        trace: list[LevelTrace] = []
        registered: list = []
        cdus = level_one_cdus(grid)
        trace.append(level_pass(cdus, cdus.n_units, 1))
        current = trace[-1]
        while current.n_dense > 0:
            dense, dense_counts = current.dense, current.dense_counts
            if current.level >= params.max_dimensionality:
                registered.append((dense, dense_counts))
                break
            tokens = dense.tokens() if may_pack and dense.n_units else None
            strategy, keep = resolved_join_strategy(
                params, comm, dense.n_units, current.level, tokens=tokens)
            if obs is not None:
                obs.join_strategy(current.level, strategy)
            raw, combined = self._join(dense, current.level, strategy,
                                       tokens, keep, obs)
            if (~combined).any():
                registered.append((dense.select(~combined),
                                   dense_counts[~combined]))
            if raw.n_units == 0:
                if combined.any():
                    registered.append((dense.select(combined),
                                       dense_counts[combined]))
                break
            cdus = self._dedup(raw, obs)
            nxt = level_pass(cdus, raw.n_units, current.level + 1)
            trace.append(nxt)
            if nxt.n_dense == 0 and combined.any():
                registered.append((dense.select(combined),
                                   dense_counts[combined]))
            current = nxt

        reg = registrations_for_report(tuple(trace), registered,
                                       params.report)
        if comm.rank == 0:
            clusters = assemble_clusters(grid, reg)
        else:
            clusters = None
        clusters = comm.bcast(clusters, root=0)
        return ClusteringResult(grid=grid, clusters=clusters,
                                trace=tuple(trace), params=params,
                                n_records=n_live)
