"""Incremental streaming clustering over a sliding record window.

The package turns the cold batch pipeline into a long-running service:
:class:`~repro.stream.engine.StreamingSession` ingests ordered record
deltas, maintains the per-dimension fine histogram and per-segment
bitmap indexes in place, expires aged-out records, and serves
:meth:`~repro.stream.engine.StreamingSession.snapshot` — a clustering
of the live window that is **bit-identical** to a cold batch run over
exactly the live records (the differential oracle enforced by
``tests/test_stream_conformance.py``).  See ``docs/STREAMING.md``.
"""

from .deltas import (BlockDeltaSource, Delta, DeltaQueue,
                     RecordDeltaSource)
from .engine import DEFAULT_COMPACT_SEGMENTS, StreamingSession
from .soak import pairs_examined, result_fingerprint, run_soak
from .window import SlidingWindow, WindowSegment

__all__ = [
    "BlockDeltaSource",
    "DEFAULT_COMPACT_SEGMENTS",
    "Delta",
    "DeltaQueue",
    "RecordDeltaSource",
    "SlidingWindow",
    "StreamingSession",
    "WindowSegment",
    "pairs_examined",
    "result_fingerprint",
    "run_soak",
]
