"""Sliding-window segments: the unit of incremental state.

Each ingested delta becomes one :class:`WindowSegment` holding the
rank's local slice of the delta's records plus two lazily built,
reusable artifacts: a per-(dim, bin) bitmap index over the slice and a
cache of per-CDU popcounts.  Both depend only on the grid's *bin
edges* (stamped via :func:`repro.io.binned.edges_fingerprint`), so
they survive threshold-only grid changes — the common case under
steady traffic, where new deltas shift density thresholds every ingest
but leave the merged bin structure alone.

Window expiry is head-drop in *global* record order: the window tracks
each segment's global size and each rank's global sub-range, so every
rank independently drops exactly its overlap with the globally expired
prefix — the surviving local slices always union to the surviving
global window, which is what keeps snapshots bit-identical to a cold
run over the live records.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import ChecksumError, DataError
from ..core.checkpoint import quarantine_checkpoint
from ..core.population import count_units
from ..io.bitmap_index import (BitmapIndex, bitmap_cache_path,
                               build_bitmap_index, load_bitmap_cache)
from ..io.chunks import ArraySource
from ..types import Grid


class WindowSegment:
    """One delta's live slice on this rank, with cached artifacts.

    ``g_size`` is the delta's *global* record count and ``[g_lo, g_hi)``
    the global positions this rank's slice covered at ingest time;
    ``g_dropped`` counts globally expired head records.  The segment's
    artifacts (bitmap index, per-unit count cache) are invalidated by
    expiry and by bin-edge changes, never by threshold-only grid
    changes.
    """

    def __init__(self, seq: int, records: np.ndarray, g_size: int,
                 g_lo: int, g_hi: int,
                 rec_path: str | os.PathLike | None = None) -> None:
        records = np.ascontiguousarray(records, dtype=np.float64)
        if records.ndim != 2:
            raise DataError(f"segment records must be 2-D, got "
                            f"{records.ndim}-D")
        if not 0 <= g_lo <= g_hi <= g_size or g_hi - g_lo != len(records):
            raise DataError(
                f"segment range [{g_lo}, {g_hi}) inconsistent with "
                f"{len(records)} local records of {g_size} global")
        self.seq = int(seq)
        self.records = records
        self.g_size = int(g_size)
        self.g_lo = int(g_lo)
        self.g_hi = int(g_hi)
        self.g_dropped = 0
        self.rec_path = None if rec_path is None else Path(rec_path)
        self._index: BitmapIndex | None = None
        self._edges_fp: bytes | None = None
        self._counts: dict[bytes, np.ndarray] = {}

    # -- bookkeeping ------------------------------------------------------
    @property
    def n_local(self) -> int:
        return self.records.shape[0]

    @property
    def g_live(self) -> int:
        return self.g_size - self.g_dropped

    # -- expiry -----------------------------------------------------------
    def drop_head_global(self, k: int) -> np.ndarray:
        """Expire ``k`` more *global* head records; returns this rank's
        dropped rows (for histogram subtraction) and invalidates the
        segment's artifacts when any local row went."""
        k = min(int(k), self.g_live)
        lo = max(self.g_lo, self.g_dropped)          # first live local pos
        hi = min(self.g_hi, self.g_dropped + k)      # end of dropped range
        n_drop = max(0, hi - lo)
        self.g_dropped += k
        if n_drop == 0:
            return self.records[:0]
        dropped = self.records[:n_drop].copy()
        self.records = np.ascontiguousarray(self.records[n_drop:])
        self._index = None
        self._edges_fp = None
        self._counts.clear()
        return dropped

    # -- artifacts --------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the cached index and counts (e.g. after an edge change
        when the caller wants memory back immediately)."""
        self._index = None
        self._edges_fp = None
        self._counts.clear()

    def has_counts(self, units_key: bytes) -> bool:
        """Whether :meth:`counts_for` would be a cache hit."""
        return units_key in self._counts

    def cached_counts(self) -> dict[bytes, np.ndarray]:
        """The live count cache (read-only by convention) — compaction
        pre-seeds a merged segment from its parents' shared keys."""
        return self._counts

    def current_index(self, edges_fp: bytes) -> BitmapIndex | None:
        """The cached index iff it matches these bin edges."""
        return self._index if self._edges_fp == edges_fp else None

    def seed_artifacts(self, index: BitmapIndex | None, edges_fp: bytes,
                       counts: dict[bytes, np.ndarray]) -> None:
        """Adopt pre-built artifacts (compaction's merged index and
        summed count cache)."""
        self._index = index
        self._edges_fp = edges_fp
        self._counts = dict(counts)

    def _index_path(self) -> Path | None:
        return None if self.rec_path is None \
            else bitmap_cache_path(self.rec_path)

    def ensure_index(self, grid: Grid, edges_fp: bytes,
                     chunk_records: int, *,
                     on_quarantine: Callable[[str], None] | None = None
                     ) -> BitmapIndex:
        """The segment's bitmap index for the current bin edges,
        (re)building it when stale.  A spilled segment persists the
        index next to its record file; a sibling failing its header or
        fingerprint check is silently rebuilt, and one failing a tile
        CRC *after* load is quarantined (renamed ``.corrupt``) before
        the rebuild — see :meth:`counts_for`."""
        if self._index is not None and self._edges_fp == edges_fp:
            return self._index
        path = self._index_path()
        index = None
        if path is not None:
            index = load_bitmap_cache(path, grid, self.n_local,
                                      grid_hash=edges_fp)
        if index is None:
            index = build_bitmap_index(
                ArraySource(self.records), grid, chunk_records,
                path=path, grid_hash=edges_fp)
        if self._edges_fp != edges_fp:
            self._counts.clear()
        self._index = index
        self._edges_fp = edges_fp
        return index

    def counts_for(self, units, units_key: bytes, grid: Grid,
                   edges_fp: bytes, chunk_records: int, *,
                   on_quarantine: Callable[[str], None] | None = None
                   ) -> np.ndarray:
        """Exact per-unit counts of this segment's live local records,
        cached per (edges, unit-table) pair.

        A spilled tile failing its CRC on first touch is quarantined
        (the ``.bmx`` is renamed ``.corrupt``, like a corrupt
        checkpoint) and the index rebuilt from the segment's records —
        corruption costs a rebuild, never a wrong count.
        """
        cached = self._counts.get(units_key)
        if cached is not None:
            return cached
        index = self.ensure_index(grid, edges_fp, chunk_records,
                                  on_quarantine=on_quarantine)
        try:
            counts = count_units(index, units)
        except ChecksumError:
            path = self._index_path()
            if path is None or not path.exists():
                raise
            quarantined = quarantine_checkpoint(path)
            if on_quarantine is not None:
                on_quarantine(str(quarantined))
            self._index = None
            self._edges_fp = None
            index = self.ensure_index(grid, edges_fp, chunk_records,
                                      on_quarantine=on_quarantine)
            counts = count_units(index, units)
        self._counts[units_key] = counts
        return counts


class SlidingWindow:
    """Ordered live segments plus the global-window arithmetic."""

    def __init__(self) -> None:
        self.segments: list[WindowSegment] = []

    @property
    def g_live(self) -> int:
        """Global live record count across all ranks."""
        return sum(seg.g_live for seg in self.segments)

    @property
    def n_local(self) -> int:
        """This rank's live record count."""
        return sum(seg.n_local for seg in self.segments)

    def append(self, segment: WindowSegment) -> None:
        self.segments.append(segment)

    def expire(self, k_global: int) -> tuple[list[np.ndarray], int]:
        """Expire the oldest ``k_global`` global records.

        Returns ``(dropped_blocks, n_dropped_global)`` — this rank's
        dropped row blocks in stream order (for exact histogram
        subtraction) and the global count actually dropped.  Segments
        whose last live record expired are removed (their spilled
        files are left for the caller's spill manager to reap).
        """
        dropped: list[np.ndarray] = []
        remaining = min(int(k_global), self.g_live)
        total = remaining
        for seg in self.segments:
            if remaining <= 0:
                break
            take = min(remaining, seg.g_live)
            rows = seg.drop_head_global(take)
            if rows.shape[0]:
                dropped.append(rows)
            remaining -= take
        self.segments = [s for s in self.segments if s.g_live > 0]
        return dropped, total
