"""Delta sources and the bounded hand-off queue for streaming ingest.

A *delta* is one ordered batch of appended records: a ``(seq, block)``
pair where ``seq`` is a monotonically increasing sequence number and
``block`` an ``(n, d)`` float64 record block.  Sources slice an
existing corpus (an array or a ``datagen/stream.py``-written record
file) into deltas; :class:`DeltaQueue` carries them from a producer
thread to the ingesting session with bounded memory (backpressure) and
explicit end-of-stream semantics.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..errors import DataError, StreamError
from ..io.records import RecordFile
from ..io.resilient import RetryPolicy, read_with_retry


@dataclass(frozen=True)
class Delta:
    """One ordered batch of appended records."""

    seq: int
    block: np.ndarray

    @property
    def n_records(self) -> int:
        return self.block.shape[0]


def _check_delta_records(delta_records: int) -> None:
    if delta_records <= 0:
        raise DataError(
            f"delta_records must be positive, got {delta_records}")


class BlockDeltaSource:
    """Slice an in-memory ``(n, d)`` array into ordered deltas.

    Deltas are numbered ``first_seq, first_seq + 1, ...`` in record
    order, so replaying the source into a session reproduces the array
    exactly.
    """

    def __init__(self, records: np.ndarray, delta_records: int, *,
                 first_seq: int = 0) -> None:
        _check_delta_records(delta_records)
        records = np.ascontiguousarray(records, dtype=np.float64)
        if records.ndim != 2:
            raise DataError(f"records must be 2-D, got {records.ndim}-D")
        self.records = records
        self.delta_records = int(delta_records)
        self.first_seq = int(first_seq)

    @property
    def n_dims(self) -> int:
        return self.records.shape[1]

    def __iter__(self) -> Iterator[Delta]:
        n = self.records.shape[0]
        for i, lo in enumerate(range(0, n, self.delta_records)):
            hi = min(lo + self.delta_records, n)
            yield Delta(seq=self.first_seq + i,
                        block=self.records[lo:hi])


class RecordDeltaSource:
    """Slice a record file (e.g. one written by
    :func:`repro.datagen.stream.generate_to_file`) into ordered deltas.

    Each block read is CRC-verified and retried under ``retry`` —
    transient ``OSError`` s are absorbed with backoff (``on_retry``
    fires once per absorbed failure, for ``io.read_retries``-style
    accounting), while corruption propagates immediately.
    """

    def __init__(self, path, delta_records: int, *,
                 first_seq: int = 0, retry: RetryPolicy | None = None,
                 on_retry: Callable[[], None] | None = None) -> None:
        _check_delta_records(delta_records)
        self.file = RecordFile(path)
        self.delta_records = int(delta_records)
        self.first_seq = int(first_seq)
        self.retry = retry
        self.on_retry = on_retry

    @property
    def n_dims(self) -> int:
        return self.file.n_dims

    def __iter__(self) -> Iterator[Delta]:
        n = self.file.n_records
        for i, lo in enumerate(range(0, n, self.delta_records)):
            hi = min(lo + self.delta_records, n)
            block = read_with_retry(
                lambda lo=lo, hi=hi: self.file.read_block(lo, hi),
                self.retry, self.on_retry)
            yield Delta(seq=self.first_seq + i,
                        block=np.ascontiguousarray(block,
                                                   dtype=np.float64))


class DeltaQueue:
    """Bounded FIFO hand-off between a delta producer and the session.

    ``put`` blocks while ``maxsize`` deltas are in flight — the
    producer is backpressured by a slow consumer instead of buffering
    the stream unboundedly.  ``close()`` marks end-of-stream: queued
    deltas still drain, then ``get`` returns ``None`` (and iteration
    stops).  ``put`` after ``close`` raises
    :class:`~repro.errors.StreamError`; so does a ``timeout`` expiry,
    making stuck producers/consumers fail loudly instead of hanging.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize <= 0:
            raise DataError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = int(maxsize)
        self._deltas: deque[Delta] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def qsize(self) -> int:
        with self._lock:
            return len(self._deltas)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, delta: Delta, timeout: float | None = None) -> None:
        with self._not_full:
            while len(self._deltas) >= self.maxsize and not self._closed:
                if not self._not_full.wait(timeout):
                    raise StreamError(
                        f"put timed out after {timeout}s: queue full "
                        f"({self.maxsize} deltas) and no consumer progress")
            if self._closed:
                raise StreamError("put on a closed delta queue")
            self._deltas.append(delta)
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Delta | None:
        """Next delta in order, or ``None`` at end-of-stream."""
        with self._not_empty:
            while not self._deltas and not self._closed:
                if not self._not_empty.wait(timeout):
                    raise StreamError(
                        f"get timed out after {timeout}s: queue empty "
                        "and the producer made no progress")
            if self._deltas:
                delta = self._deltas.popleft()
                self._not_full.notify()
                return delta
            return None  # closed and drained

    def close(self) -> None:
        """Mark end-of-stream (idempotent); queued deltas still drain."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def __iter__(self) -> Iterator[Delta]:
        while True:
            delta = self.get()
            if delta is None:
                return
            yield delta
