"""The dense-unit lattice as a graph.

The bottom-up search explores the subset lattice of dense units — "if a
dense cell exists in k dimensions, then all its projections ... are
also dense" (§4.5).  This module materialises that lattice as a
networkx DiGraph (edges from each dense unit to its one-level
projections' dense units), giving downstream users the paper's search
structure for inspection: which subspaces supported which clusters, how
counts decay with dimensionality, where the search stopped extending.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.result import ClusteringResult
from ..errors import DataError

#: node key: ((dims...), (bins...))
UnitKey = tuple[tuple[int, ...], tuple[int, ...]]


def unit_key(dims, bins) -> UnitKey:
    """Canonical hashable node key for a dense unit."""
    return (tuple(int(d) for d in dims), tuple(int(b) for b in bins))


def dense_unit_lattice(result: ClusteringResult) -> "nx.DiGraph":
    """Build the dense-unit lattice of a clustering run.

    Nodes are dense units keyed by ``((dims...), (bins...))`` with
    attributes ``level`` and ``count``; an edge ``u -> v`` means ``v``
    is the projection of ``u`` with one dimension removed (and was
    itself found dense).
    """
    graph = nx.DiGraph()
    by_level: dict[int, set[UnitKey]] = {}
    for trace in result.trace:
        dense = trace.dense
        keys = set()
        for i in range(dense.n_units):
            key = unit_key(dense.dims[i], dense.bins[i])
            graph.add_node(key, level=trace.level,
                           count=int(trace.dense_counts[i]))
            keys.add(key)
        by_level[trace.level] = keys

    for trace in result.trace:
        if trace.level < 2:
            continue
        lower = by_level.get(trace.level - 1, set())
        dense = trace.dense
        for i in range(dense.n_units):
            dims = dense.dims[i]
            bins = dense.bins[i]
            parent = unit_key(dims, bins)
            for drop in range(trace.level):
                keep = [j for j in range(trace.level) if j != drop]
                child = unit_key(dims[keep], bins[keep])
                if child in lower:
                    graph.add_edge(parent, child)
    return graph


@dataclass(frozen=True)
class LatticeSummary:
    """Aggregate facts about a run's dense-unit lattice."""

    n_units: int
    n_edges: int
    units_per_level: dict[int, int]
    #: dense units with no dense extension one level up (search frontier)
    n_maximal: int
    #: fraction of possible projections that were found dense (1.0 when
    #: the lattice is downward closed, as count-monotone thresholds imply)
    closure: float


def summarize_lattice(result: ClusteringResult) -> LatticeSummary:
    """Summary statistics of the dense-unit lattice."""
    graph = dense_unit_lattice(result)
    levels: dict[int, int] = {}
    for _, data in graph.nodes(data=True):
        levels[data["level"]] = levels.get(data["level"], 0) + 1
    n_maximal = sum(1 for node in graph.nodes
                    if graph.in_degree(node) == 0)
    expected_edges = sum(
        data["level"] * 1 for _, data in graph.nodes(data=True)
        if data["level"] >= 2)
    closure = (graph.number_of_edges() / expected_edges
               if expected_edges else 1.0)
    return LatticeSummary(
        n_units=graph.number_of_nodes(),
        n_edges=graph.number_of_edges(),
        units_per_level=dict(sorted(levels.items())),
        n_maximal=n_maximal,
        closure=closure,
    )


def support_path(result: ClusteringResult, dims, bins) -> list[UnitKey]:
    """One chain of dense units from a unit down to a single bin —
    the paper's 'all projections are dense' witness.

    Raises :class:`~repro.errors.DataError` when the unit is not a
    dense unit of the run.
    """
    graph = dense_unit_lattice(result)
    key = unit_key(dims, bins)
    if key not in graph:
        raise DataError(f"{key} is not a dense unit of this run")
    path = [key]
    current = key
    while True:
        children = list(graph.successors(current))
        if not children:
            break
        current = min(children)  # deterministic descent
        path.append(current)
    return path
