"""Independent verification of a clustering result against its data.

``verify_result`` re-derives, with fresh passes over the records and
none of the driver's code paths, every invariant a correct
(p)MAFIA run must satisfy:

1. **Counts** — each dense unit's stored count equals a brute-force
   recount of records falling in its bins;
2. **Density** — each dense unit's count strictly exceeds the max of
   its bins' thresholds;
3. **Closure** — every projection of a dense unit appears among the
   dense units one level down (count monotonicity makes the lattice
   downward closed);
4. **Clusters** — every cluster's units are dense units of its level,
   its point count is the sum of their counts, and its DNF covers
   exactly its units' cells.

Any violation is reported as a human-readable finding; an empty report
means the result is internally consistent with the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iter_product

import numpy as np

from ..core.population import populate_local
from ..core.result import ClusteringResult
from ..core.units import UnitTable
from ..core.identify import unit_thresholds
from ..core.dnf import projections
from ..io.chunks import DataSource, as_source
from ..parallel.serial import SerialComm


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_result`."""

    findings: list[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, message: str) -> None:
        """Record one violated invariant."""
        self.findings.append(message)

    def summary(self) -> str:
        """Human-readable report, one line per finding."""
        status = "OK" if self.ok else f"{len(self.findings)} problem(s)"
        lines = [f"verification: {status} ({self.checks_run} checks)"]
        lines.extend(f"  - {f}" for f in self.findings)
        return "\n".join(lines)


def _check_counts(report: VerificationReport, result: ClusteringResult,
                  source: DataSource, chunk_records: int) -> None:
    comm = SerialComm()
    for trace in result.trace:
        if trace.n_dense == 0:
            continue
        recounted = populate_local(source, comm, result.grid, trace.dense,
                                   chunk_records)
        report.checks_run += trace.n_dense
        bad = np.flatnonzero(recounted != np.asarray(trace.dense_counts))
        for i in bad[:5]:
            report.add(
                f"level {trace.level} unit {trace.dense.unit(int(i))}: "
                f"stored count {trace.dense_counts[int(i)]} != recount "
                f"{recounted[int(i)]}")


def _check_density(report: VerificationReport,
                   result: ClusteringResult) -> None:
    for trace in result.trace:
        if trace.n_dense == 0:
            continue
        thresholds = unit_thresholds(result.grid, trace.dense)
        report.checks_run += trace.n_dense
        bad = np.flatnonzero(
            np.asarray(trace.dense_counts) <= thresholds)
        for i in bad[:5]:
            report.add(
                f"level {trace.level} unit {trace.dense.unit(int(i))}: "
                f"count {trace.dense_counts[int(i)]} does not exceed "
                f"threshold {thresholds[int(i)]:.1f}")


def _check_closure(report: VerificationReport,
                   result: ClusteringResult) -> None:
    by_level = {t.level: t.dense for t in result.trace}
    for trace in result.trace:
        if trace.level < 2 or trace.n_dense == 0:
            continue
        lower = by_level.get(trace.level - 1)
        if lower is None or lower.n_units == 0:
            report.add(f"level {trace.level} has dense units but level "
                       f"{trace.level - 1} has none")
            continue
        proj = projections(trace.dense).unique()
        report.checks_run += proj.n_units
        missing = ~lower.contains_rows(proj)
        for i in np.flatnonzero(missing)[:5]:
            report.add(
                f"projection {proj.unit(int(i))} of a level-{trace.level} "
                f"dense unit is not dense at level {trace.level - 1}")


def _check_clusters(report: VerificationReport,
                    result: ClusteringResult) -> None:
    by_level = {t.level: t for t in result.trace}
    for ci, cluster in enumerate(result.clusters):
        k = cluster.dimensionality
        trace = by_level.get(k)
        if trace is None:
            report.add(f"cluster {ci} lives at level {k} which the "
                       f"search never reached")
            continue
        dims = np.tile(np.asarray(cluster.subspace.dims, dtype=np.uint8),
                       (cluster.n_units, 1))
        table = UnitTable(dims=dims,
                          bins=cluster.units_bins.astype(np.uint8))
        report.checks_run += cluster.n_units + 1
        member = trace.dense.contains_rows(table)
        if not member.all():
            report.add(f"cluster {ci}: {int((~member).sum())} unit(s) are "
                       f"not dense units of level {k}")
            continue
        # point count = sum of its units' stored counts
        mask = table.contains_rows(trace.dense)
        expected = int(np.asarray(trace.dense_counts)[mask].sum())
        if expected != cluster.point_count:
            report.add(f"cluster {ci}: point_count {cluster.point_count} "
                       f"!= sum of unit counts {expected}")
        # DNF covers exactly the cluster's cells
        cells = {tuple(r) for r in cluster.units_bins.tolist()}
        covered = set()
        for term in cluster.dnf:
            ranges = []
            for d, (lo, hi) in zip(cluster.subspace.dims, term.intervals):
                dg = result.grid[d]
                lo_bin = int(dg.locate(np.array([lo]))[0])
                hi_bin = int(dg.locate(np.array([hi - 1e-12]))[0])
                ranges.append(range(lo_bin, hi_bin + 1))
            covered |= set(iter_product(*ranges))
        if covered != cells:
            report.add(f"cluster {ci}: DNF covers {len(covered)} cells, "
                       f"units occupy {len(cells)}")


def verify_result(result: ClusteringResult, data,
                  chunk_records: int = 50_000) -> VerificationReport:
    """Re-derive and check every invariant of ``result`` against
    ``data`` (array, DataSource or anything :func:`repro.io.as_source`
    accepts).  Returns a :class:`VerificationReport`."""
    source = as_source(np.asarray(data, dtype=np.float64)
                       if not isinstance(data, DataSource) else data)
    report = VerificationReport()
    _check_counts(report, result, source, chunk_records)
    _check_density(report, result)
    _check_closure(report, result)
    _check_clusters(report, result)
    return report
