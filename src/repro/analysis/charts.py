"""Dependency-free ASCII charts for terminal reports.

The paper presents its scalability results as figures; the benches and
examples render the same series as horizontal bar charts so a terminal
run can eyeball curve shapes (linear vs exponential, speedup decay)
without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import DataError

#: glyph resolution within one character cell
_PARTIALS = " ▏▎▍▌▋▊▉█"


def bar_chart(series: Mapping[object, float], width: int = 40,
              title: str = "", unit: str = "") -> str:
    """Horizontal bar chart of a label → value series.

    Bars are scaled to the maximum value; values must be non-negative.
    """
    if not series:
        raise DataError("cannot chart an empty series")
    values = list(series.values())
    if any(v < 0 for v in values):
        raise DataError("bar_chart needs non-negative values")
    if width < 1:
        raise DataError(f"width must be >= 1, got {width}")
    peak = max(values) or 1.0
    label_width = max(len(str(k)) for k in series)
    lines = [title] if title else []
    for key, value in series.items():
        cells = value / peak * width
        full = int(cells)
        frac = cells - full
        partial = _PARTIALS[int(frac * (len(_PARTIALS) - 1))] if full < width else ""
        bar = "█" * full + partial
        lines.append(f"{str(key).rjust(label_width)} | "
                     f"{bar.ljust(width)} {value:g}{unit}")
    return "\n".join(lines)


def scaling_chart(series: Mapping[object, float], width: int = 40,
                  title: str = "", unit: str = "s") -> str:
    """A bar chart plus the step-to-step growth ratios — the quickest
    way to tell linear (flat ratios) from exponential (growing ratios)
    series in a terminal."""
    chart = bar_chart(series, width=width, title=title, unit=unit)
    values = list(series.values())
    ratios = [b / a if a else float("inf")
              for a, b in zip(values, values[1:])]
    if ratios:
        chart += ("\n  step ratios: "
                  + ", ".join(f"{r:.2f}" for r in ratios))
    return chart
