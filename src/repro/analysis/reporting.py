"""Paper-style table and series formatting for the benchmark harness.

Every bench prints the rows the paper's table/figure reports next to
what this reproduction measured, via :func:`paper_vs_measured`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import DataError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width text table."""
    rows = [[_fmt(c) for c in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise DataError(
                f"row width {len(row)} != header width {len(headers)}")
    widths = [len(h) for h in headers]
    for row in rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def paper_vs_measured(title: str, x_label: str,
                      paper: Mapping[object, object],
                      measured: Mapping[object, object],
                      note: str = "") -> str:
    """Two-column comparison keyed by the experiment's x-axis values.

    Absolute numbers are *not* expected to agree (different substrate) —
    the printed table lets EXPERIMENTS.md record both and shape claims be
    audited.
    """
    keys = list(paper.keys())
    for k in measured:
        if k not in paper:
            keys.append(k)
    rows = [[k, paper.get(k, "-"), measured.get(k, "-")] for k in keys]
    table = format_table([x_label, "paper", "measured"], rows, title=title)
    if note:
        table += f"\n  note: {note}"
    return table


def speedup_series(times: Mapping[int, float]) -> dict[int, float]:
    """Speedups relative to the smallest processor count present."""
    if not times:
        return {}
    base_p = min(times)
    base = times[base_p]
    if base <= 0:
        raise DataError("base time must be positive")
    return {p: base / max(t, 1e-12) for p, t in times.items()}
