"""α-sensitivity profiling.

"Discovering clusters with higher values of α yields clusters in the
data set which are more dominant than the others ... choosing a
suitable value of α is straightforward" (§4.4).  For real data the
paper demonstrates the knob on the ionosphere set (α = 2 → 190
clusters, α = 3 → 1).  :func:`alpha_profile` automates that sweep: run
the full algorithm at several α values and report how the cluster
population thins, so a user can pick the dominance level they care
about by inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mafia import mafia
from ..core.result import ClusteringResult
from ..errors import ParameterError
from ..params import MafiaParams


@dataclass(frozen=True)
class AlphaPoint:
    """One α value's outcome in a profile."""

    alpha: float
    n_clusters: int
    clusters_by_dim: dict[int, int]
    max_level: int
    #: records inside the largest surviving cluster
    dominant_points: int
    result: ClusteringResult

    def describe(self) -> str:
        """One-line summary for terminal display."""
        dims = ", ".join(f"{d}-d: {n}" for d, n in
                         sorted(self.clusters_by_dim.items()))
        return (f"alpha={self.alpha:g}: {self.n_clusters} clusters "
                f"({dims or 'none'})")


def alpha_profile(data, alphas, params: MafiaParams | None = None,
                  domains: np.ndarray | None = None,
                  min_dimensionality: int = 1) -> list[AlphaPoint]:
    """Run MAFIA at each α and summarise the surviving clusters.

    ``min_dimensionality`` filters the reported counts (the paper's
    real-data sections only discuss clusters of dimensionality ≥ 3).
    Returns one :class:`AlphaPoint` per α, in the given order.
    """
    alphas = [float(a) for a in alphas]
    if not alphas:
        raise ParameterError("alpha_profile needs at least one alpha")
    if any(a <= 0 for a in alphas):
        raise ParameterError("alphas must be positive")
    params = params or MafiaParams()
    points = []
    for alpha in alphas:
        result = mafia(data, params.with_(alpha=alpha), domains=domains)
        kept = [c for c in result.clusters
                if c.dimensionality >= min_dimensionality]
        by_dim: dict[int, int] = {}
        for c in kept:
            by_dim[c.dimensionality] = by_dim.get(c.dimensionality, 0) + 1
        points.append(AlphaPoint(
            alpha=alpha,
            n_clusters=len(kept),
            clusters_by_dim=by_dim,
            max_level=result.max_level,
            dominant_points=max((c.point_count for c in kept), default=0),
            result=result,
        ))
    return points


def stable_alpha(points: list[AlphaPoint]) -> float:
    """The smallest α at which the cluster count stops changing —
    a pragmatic default for unsupervised runs on unfamiliar data."""
    if not points:
        raise ParameterError("stable_alpha needs a non-empty profile")
    ordered = sorted(points, key=lambda p: p.alpha)
    for previous, current in zip(ordered, ordered[1:]):
        if previous.n_clusters == current.n_clusters:
            return previous.alpha
    return ordered[-1].alpha
