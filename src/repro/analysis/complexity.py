"""The paper's closed-form time model (§4.5).

"The total time complexity of the algorithm is then
``O(c^k + (N/(B·p))·k·γ + α·S·p·k)``" — compute exponential in the
hidden cluster dimensionality ``k``, I/O linear in the per-processor
data with ``k`` passes, and communication linear in processors and
passes.  :func:`predicted_seconds` instantiates the model on a
:class:`~repro.parallel.machine.MachineSpec`; the scaling benches check
the *measured* virtual times against its monotonicity/shape claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from ..errors import ParameterError
from ..parallel.machine import MachineSpec


@dataclass(frozen=True)
class Workload:
    """The knobs of the paper's model for one run."""

    n_records: int
    n_dims: int
    cluster_dim: int          # k: highest dense-unit dimensionality
    nprocs: int = 1
    chunk_records: int = 50_000
    bins_per_cluster_dim: int = 1
    noise_bins_per_dim: int = 5
    record_bytes: int = 8     # per attribute value
    message_bytes: int = 4096  # S: typical collective payload

    def __post_init__(self) -> None:
        for name in ("n_records", "n_dims", "cluster_dim", "nprocs",
                     "chunk_records"):
            if getattr(self, name) <= 0:
                raise ParameterError(f"{name} must be positive")
        if self.cluster_dim > self.n_dims:
            raise ParameterError("cluster_dim cannot exceed n_dims")


def expected_cdus(workload: Workload) -> dict[int, int]:
    """CDU counts per level under adaptive grids: a clean k-dimensional
    cluster yields exactly C(k, l) units at level l (Table 2's pMAFIA
    row), plus the level-1 bins of every dimension."""
    k = workload.cluster_dim
    out = {1: (workload.n_dims * workload.noise_bins_per_dim
               + k * workload.bins_per_cluster_dim)}
    for level in range(2, k + 2):
        out[level] = comb(k, level) if level <= k else 0
    return out


def predicted_seconds(machine: MachineSpec, workload: Workload) -> float:
    """Total predicted run time on ``machine`` per the §4.5 model."""
    k = workload.cluster_dim
    passes = k + 1  # one populate pass per level until no dense units
    n_local = workload.n_records / workload.nprocs

    compute = 0.0
    for level, ncdu in expected_cdus(workload).items():
        compute += machine.cell_seconds(n_local * ncdu * level)
    # domain + fine histogram passes
    compute += 2 * machine.cell_seconds(n_local * workload.n_dims)

    bytes_per_pass = n_local * workload.n_dims * workload.record_bytes
    chunks = max(1, int(n_local // workload.chunk_records))
    io = (passes + 2) * machine.io_seconds(bytes_per_pass, chunks)

    comm = 0.0
    if workload.nprocs > 1:
        per_collective = (workload.nprocs - 1) * machine.message_seconds(
            workload.message_bytes)
        comm = (passes + 2) * 2 * per_collective
    return compute + io + comm


def predicted_speedup(machine: MachineSpec, workload: Workload,
                      nprocs: int) -> float:
    """Predicted speedup of ``nprocs`` ranks over the serial run."""
    from dataclasses import replace
    serial = predicted_seconds(machine, replace(workload, nprocs=1))
    parallel = predicted_seconds(machine, replace(workload, nprocs=nprocs))
    return serial / parallel
