"""Clustering quality metrics (paper §5.8, Table 3).

The paper judges quality by (a) whether the *subspaces* of the embedded
clusters are recovered, (b) whether each cluster's *records* are fully
captured rather than "thrown away as outliers", and (c) how close the
reported boundaries are to the defined extents.  These metrics quantify
all three against the ground truth carried by a
:class:`~repro.datagen.generator.SyntheticDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import ClusteringResult
from ..datagen.generator import SyntheticDataset
from ..datagen.spec import ClusterSpec
from ..errors import DataError
from ..types import Cluster


def subspace_scores(result: ClusteringResult,
                    specs: tuple[ClusterSpec, ...] | list[ClusterSpec]
                    ) -> tuple[float, float]:
    """(precision, recall) of the discovered cluster *subspaces* against
    the true embedded subspaces."""
    truth = {tuple(s.dims) for s in specs}
    found = {c.subspace.dims for c in result.clusters}
    if not found:
        return (1.0 if not truth else 0.0, 0.0 if truth else 1.0)
    hit = truth & found
    precision = len(hit) / len(found)
    recall = len(hit) / len(truth) if truth else 1.0
    return precision, recall


def assign_records(result: ClusteringResult, records: np.ndarray,
                   tie_break: str = "highest") -> np.ndarray:
    """Label each record with the index of a cluster containing it, or
    -1 for outliers.

    Clusters constrain only their own subspace dimensions, so a record
    can fall inside several; ``tie_break`` picks ``"highest"``
    (highest-dimensionality cluster — clusters are sorted that way) or
    ``"first"`` (first match in report order — identical here, kept for
    clarity of intent).
    """
    if tie_break not in ("highest", "first"):
        raise DataError(f"unknown tie_break {tie_break!r}")
    records = np.asarray(records, dtype=np.float64)
    labels = np.full(len(records), -1, dtype=np.int64)
    # result.clusters is sorted highest dimensionality first; assign in
    # reverse so earlier (higher) clusters overwrite later ones
    for index in range(len(result.clusters) - 1, -1, -1):
        member = points_in_cluster(result.clusters[index], records)
        labels[member] = index
    return labels


def points_in_cluster(cluster: Cluster, records: np.ndarray) -> np.ndarray:
    """Boolean membership of full-dimensional records in a discovered
    cluster's DNF region."""
    records = np.asarray(records, dtype=np.float64)
    mask = np.zeros(len(records), dtype=bool)
    for term in cluster.dnf:
        inside = np.ones(len(records), dtype=bool)
        for d, (lo, hi) in zip(term.subspace.dims, term.intervals):
            inside &= (records[:, d] >= lo) & (records[:, d] < hi)
        mask |= inside
    return mask


@dataclass(frozen=True)
class ClusterMatch:
    """How well one discovered cluster reproduces one true cluster."""

    spec_index: int
    cluster_index: int
    subspace_exact: bool
    #: fraction of the true cluster's records inside the discovered DNF
    recall: float
    #: fraction of the discovered DNF's records that belong to the truth
    precision: float
    #: worst per-dimension boundary deviation, as a fraction of the true
    #: extent (only for single-box specs on exact-subspace matches)
    boundary_error: float


def _boundary_error(cluster: Cluster, spec: ClusterSpec) -> float:
    if len(spec.boxes) != 1 or cluster.subspace.dims != spec.dims:
        return float("nan")
    worst = 0.0
    box = spec.boxes[0]
    for j, (true_lo, true_hi) in enumerate(box):
        extent = true_hi - true_lo
        los = [t.intervals[j][0] for t in cluster.dnf]
        his = [t.intervals[j][1] for t in cluster.dnf]
        worst = max(worst,
                    abs(min(los) - true_lo) / extent,
                    abs(max(his) - true_hi) / extent)
    return worst


def match_clusters(result: ClusteringResult, dataset: SyntheticDataset
                   ) -> list[ClusterMatch]:
    """Best discovered cluster for every true cluster of the data set.

    Each true cluster is matched to the discovered cluster maximising
    record recall among those sharing (a superset of) its subspace, or
    any cluster if none overlaps.
    """
    matches: list[ClusterMatch] = []
    records = dataset.records
    for spec_index, spec in enumerate(dataset.clusters):
        truth_mask = dataset.labels == spec_index
        n_truth = int(truth_mask.sum())
        if n_truth == 0:
            raise DataError(f"true cluster {spec_index} has no records")
        best: ClusterMatch | None = None
        for ci, cluster in enumerate(result.clusters):
            member = points_in_cluster(cluster, records)
            inter = int((member & truth_mask).sum())
            recall = inter / n_truth
            precision = inter / int(member.sum()) if member.any() else 0.0
            candidate = ClusterMatch(
                spec_index=spec_index, cluster_index=ci,
                subspace_exact=cluster.subspace.dims == spec.dims,
                recall=recall, precision=precision,
                boundary_error=_boundary_error(cluster, spec))
            if best is None or (candidate.subspace_exact, candidate.recall) > (
                    best.subspace_exact, best.recall):
                best = candidate
        if best is None:
            best = ClusterMatch(spec_index=spec_index, cluster_index=-1,
                                subspace_exact=False, recall=0.0,
                                precision=0.0, boundary_error=float("nan"))
        matches.append(best)
    return matches
