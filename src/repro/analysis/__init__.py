"""Quality metrics, the paper's closed-form complexity model, and
paper-vs-measured report formatting."""

from .alpha import AlphaPoint, alpha_profile, stable_alpha
from .charts import bar_chart, scaling_chart
from .lattice import (LatticeSummary, dense_unit_lattice, summarize_lattice,
                      support_path, unit_key)
from .complexity import Workload, expected_cdus, predicted_seconds, predicted_speedup
from .quality import (ClusterMatch, assign_records, match_clusters,
                      points_in_cluster, subspace_scores)
from .reporting import format_table, paper_vs_measured, speedup_series
from .verify import VerificationReport, verify_result

__all__ = [
    "AlphaPoint",
    "ClusterMatch",
    "alpha_profile",
    "stable_alpha",
    "LatticeSummary",
    "assign_records",
    "dense_unit_lattice",
    "summarize_lattice",
    "support_path",
    "unit_key",
    "bar_chart",
    "scaling_chart",
    "VerificationReport",
    "Workload",
    "expected_cdus",
    "format_table",
    "match_clusters",
    "paper_vs_measured",
    "points_in_cluster",
    "predicted_seconds",
    "predicted_speedup",
    "speedup_series",
    "subspace_scores",
    "verify_result",
]
