"""Labeled counters, gauges and histograms for a (p)MAFIA run.

A :class:`MetricsRegistry` is per rank (one more labeled child per
metric family): ``registry.counter("io.bytes_read", kind="records")``
returns the counter for that exact label set, creating it on first use.
``snapshot()`` renders the whole registry as a plain nested dict —
stable key order, JSON-ready, picklable across the process backend —
and :func:`merge_snapshots` folds per-rank snapshots into run totals
(counters and histograms sum; gauges keep the maximum, being
last-observed levels rather than flows).

Everything here only *observes*: recording never touches the
communicator, its virtual clock or the cost-accounting hooks, which is
what keeps results and simulated runtimes bit-identical with metrics
enabled (asserted by ``tests/test_observability.py``).

Counter increments are plain int/float adds guarded by the GIL; the
only off-thread writers are the retry counters bumped on a prefetch
reader thread, for which that is sufficient.
"""

from __future__ import annotations

from typing import Any, Iterable


def metric_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": _plain(self.value)}


class Gauge:
    """A last-observed level (set, not accumulated)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": _plain(self.value)}


class Histogram:
    """A distribution summary: count / sum / min / max plus power-of-two
    bucket counts (bucket ``i`` holds observations with
    ``2**(i-1) < v <= 2**i``; bucket 0 holds ``v <= 1``)."""

    kind = "histogram"
    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        bucket = 0 if value <= 1 else (int(value) - 1).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "count": self.count,
                "sum": _plain(self.total),
                "min": _plain(self.vmin), "max": _plain(self.vmax),
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())}}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of labeled metric children, insertion
    ordered.  One registry per rank; snapshots merge across ranks."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _child(self, cls: type, name: str, labels: dict[str, Any]):
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls()
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {key!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._child(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._child(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._child(Histogram, name, labels)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """The registry as a plain dict, keyed by flat metric key."""
        return {key: metric.snapshot()
                for key, metric in self._metrics.items()}


def merge_snapshots(snapshots: Iterable[dict[str, dict[str, Any]]]
                    ) -> dict[str, dict[str, Any]]:
    """Fold per-rank snapshots into run totals: counters and histograms
    sum element-wise, gauges take the maximum across ranks."""
    merged: dict[str, dict[str, Any]] = {}
    for snap in snapshots:
        for key, entry in snap.items():
            have = merged.get(key)
            if have is None:
                merged[key] = _copy_entry(entry)
                continue
            if have["kind"] != entry["kind"]:
                raise TypeError(
                    f"metric {key!r} is {have['kind']} on one rank and "
                    f"{entry['kind']} on another")
            _fold_entry(have, entry)
    return merged


def _copy_entry(entry: dict[str, Any]) -> dict[str, Any]:
    out = dict(entry)
    if entry["kind"] == "histogram":
        out["buckets"] = dict(entry["buckets"])
    return out


def _fold_entry(have: dict[str, Any], entry: dict[str, Any]) -> None:
    kind = have["kind"]
    if kind == "counter":
        have["value"] += entry["value"]
    elif kind == "gauge":
        have["value"] = max(have["value"], entry["value"])
    else:
        have["count"] += entry["count"]
        have["sum"] += entry["sum"]
        have["min"] = _opt(min, have["min"], entry["min"])
        have["max"] = _opt(max, have["max"], entry["max"])
        for bucket, n in entry["buckets"].items():
            have["buckets"][bucket] = have["buckets"].get(bucket, 0) + n


def _opt(fn, a, b):
    if a is None:
        return b
    if b is None:
        return a
    return fn(a, b)


def _plain(value):
    """Numpy scalars -> native Python numbers for JSON/pickle."""
    if value is None or isinstance(value, (int, float)):
        return value
    item = getattr(value, "item", None)
    return item() if callable(item) else value
