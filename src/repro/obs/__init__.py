"""Observability: per-rank tracing and metrics for (p)MAFIA runs.

The subsystem is strictly read-only with respect to the algorithm: it
reads the wall clock and the rank's virtual clock, counts what already
happened, and never sends a message or charges the cost model — so
clusters, CDU tables and simulated runtimes are bit-identical with
observability on or off (the conformance property asserted by
``tests/test_observability.py``).

Entry points
------------
* ``MafiaParams(trace=True, metrics=True)`` — the driver creates one
  :class:`RankObs` per rank and threads it through the communicator,
  the I/O layer and the level loop.
* :class:`RankObs` — the per-rank bundle: a
  :class:`~repro.obs.trace.RankTracer` (spans), a
  :class:`~repro.obs.metrics.MetricsRegistry` (counters/gauges/
  histograms), and the instrumentation hooks the library calls.
* ``ClusteringResult.obs`` / ``PMafiaRun.obs`` — the exported
  :class:`RankObsData` / :class:`RunObs` (picklable, survives the
  process backend).
* :func:`~repro.obs.trace.obs_session` — capture observers across
  crashed attempts (fault-injection tests).
* :func:`write_chrome_trace` / :func:`write_metrics_snapshot` /
  :func:`~repro.obs.manifest.write_manifest` — file exports (the CLI's
  ``--trace-out`` / ``--metrics-out``).

See ``docs/OBSERVABILITY.md`` for the span and metric catalogue.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from ..parallel.simtime import payload_nbytes
from . import trace as _trace
from .metrics import MetricsRegistry, merge_snapshots
from .trace import (ObsSession, RankTracer, Span, check_rank_spans,
                    check_spans_by_rank, obs_session, write_chrome_trace)

__all__ = [
    "ObsSession",
    "RankObs",
    "RankObsData",
    "RankTracer",
    "RunObs",
    "Span",
    "as_run_obs",
    "check_rank_spans",
    "check_spans_by_rank",
    "obs_session",
    "serve_summary",
    "write_chrome_trace",
    "write_metrics_snapshot",
]


class RankObs:
    """One rank's observer: tracer + metrics + the hooks the library
    calls.  Created by the driver when ``params.trace`` or
    ``params.metrics`` is set; either half may be ``None`` when its
    knob is off, and every hook degrades to (nearly) nothing."""

    def __init__(self, rank: int, *, trace: bool = True,
                 metrics: bool = True,
                 clock: Callable[[], float] | None = None) -> None:
        self.rank = rank
        self.tracer = RankTracer(rank, clock) if trace else None
        self.metrics = MetricsRegistry() if metrics else None
        self._collective_depth = 0
        self._join_strategies: dict[int, str] = {}
        _trace.register_observer(self)

    @classmethod
    def create(cls, params: Any, comm: Any) -> "RankObs | None":
        """The rank observer ``params`` asks for, or ``None`` when both
        knobs are off (the zero-cost path)."""
        want_trace = bool(getattr(params, "trace", False))
        want_metrics = bool(getattr(params, "metrics", False))
        if not (want_trace or want_metrics):
            return None
        return cls(comm.rank, trace=want_trace, metrics=want_metrics,
                   clock=comm.time)

    # -- driver wiring --------------------------------------------------
    @contextmanager
    def activate(self, comm: Any) -> Iterator["RankObs"]:
        """Attach this observer for the duration of a run: the
        communicator's collectives, the rank's fault state and the
        ambient tracer (``timing.phase`` spans) all report here."""
        comm.obs = self
        fault_state = getattr(comm, "fault_state", None)
        if fault_state is not None:
            fault_state.observer = self
        token = (_trace._active.set(self.tracer)
                 if self.tracer is not None else None)
        try:
            yield self
        finally:
            if token is not None:
                _trace._active.reset(token)
            if fault_state is not None:
                fault_state.observer = None
            comm.obs = None

    # -- spans ----------------------------------------------------------
    @contextmanager
    def span(self, name: str, cat: str = "task",
             **attrs: Any) -> Iterator[dict[str, Any] | None]:
        if self.tracer is None:
            yield None
            return
        with self.tracer.span(name, cat, **attrs) as span_attrs:
            yield span_attrs

    def instant(self, name: str, cat: str = "event",
                **attrs: Any) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, cat, **attrs)

    # -- communicator hook ----------------------------------------------
    @contextmanager
    def collective(self, op: str, payload: Any) -> Iterator[None]:
        """Record one collective call: a ``comm`` span (wall + virtual
        interval) and byte/count metrics.  Collectives compose (an
        allreduce runs an allgather runs gather+bcast), so only the
        outermost call records — inner calls are the wire pattern of
        the outer one, not separate operations."""
        if self._collective_depth:
            self._collective_depth += 1
            try:
                yield
            finally:
                self._collective_depth -= 1
            return
        self._collective_depth = 1
        nbytes = payload_nbytes(payload)
        try:
            if self.tracer is None:
                yield
            else:
                with self.tracer.span(op, cat="comm", op=op,
                                      nbytes=nbytes):
                    yield
        finally:
            self._collective_depth = 0
            if self.metrics is not None:
                self.metrics.counter("comm.collectives", op=op).inc()
                self.metrics.counter("comm.bytes", op=op).inc(nbytes)
                self.metrics.histogram("comm.payload_nbytes",
                                       op=op).observe(nbytes)

    # -- I/O hooks -------------------------------------------------------
    def io_chunk(self, rows: int, nbytes: int,
                 kind: str = "records") -> None:
        """One chunk handed to the consumer (record or binned pass)."""
        if self.metrics is not None:
            self.metrics.counter("io.chunks_read", kind=kind).inc()
            self.metrics.counter("io.records_read", kind=kind).inc(rows)
            self.metrics.counter("io.bytes_read", kind=kind).inc(nbytes)

    def io_retry(self) -> None:
        """One transient read failure absorbed by the retry loop.  May
        fire on a prefetch reader thread (plain GIL-guarded add)."""
        if self.metrics is not None:
            self.metrics.counter("io.read_retries").inc()

    def prefetch_result(self, hit: bool) -> None:
        """Whether a prefetched chunk was ready when the consumer asked."""
        if self.metrics is not None:
            name = "io.prefetch_hits" if hit else "io.prefetch_misses"
            self.metrics.counter(name).inc()

    # -- bitmap-index hooks ----------------------------------------------
    def bitmap_index_built(self, n_pairs: int, nbytes: int,
                           resident: bool) -> None:
        """The rank's persistent bitmap index finished staging —
        records whether the byte budget kept it resident or spilled it
        to the mmap tile file."""
        self.instant("bitmap_index_built", cat="io", n_pairs=n_pairs,
                     nbytes=nbytes, resident=resident)
        if self.metrics is not None:
            self.metrics.gauge("index.pairs").set(n_pairs)
            self.metrics.gauge("index.nbytes").set(nbytes)
            self.metrics.gauge("index.resident").set(int(resident))
            if not resident:
                self.metrics.counter("index.spills").inc()

    def indexed_pass(self, units: int, hits: int, misses: int,
                     and_ops: int, memo_bytes: int) -> None:
        """One level pass served from the bitmap index: CDUs counted,
        prefix-AND memo hits/misses (plus the run-cumulative hit rate
        as an ``index.memo_hit_rate`` gauge), bitmap ANDs actually
        executed and the memo's resident size after the pass."""
        if self.metrics is not None:
            self.metrics.counter("index.units_counted").inc(units)
            hit_c = self.metrics.counter("index.memo_hits")
            miss_c = self.metrics.counter("index.memo_misses")
            hit_c.inc(hits)
            miss_c.inc(misses)
            probes = hit_c.value + miss_c.value
            self.metrics.gauge("index.memo_hit_rate").set(
                hit_c.value / probes if probes else 0.0)
            self.metrics.counter("index.and_ops").inc(and_ops)
            self.metrics.gauge("index.memo_bytes").set(memo_bytes)

    # -- lattice hooks ---------------------------------------------------
    def add_pairs(self, stage: str, pairs: float) -> None:
        """Unit-pair comparisons, mirroring ``comm.charge_pairs`` calls
        exactly (``stage`` is ``join`` or ``dedup``), so the metric
        reconciles with the sim backend's ``unit_pair_ops``."""
        if self.metrics is not None:
            self.metrics.counter(f"{stage}.pairs_examined").inc(pairs)

    def join_strategy(self, level: int, strategy: str) -> None:
        """The join implementation this level *actually ran* — the
        resolved strategy, so ``auto`` decisions (including the fptree
        support-prune demotion) are visible in the Chrome trace, the
        metrics and the run manifest, not just the param value."""
        self._join_strategies[level] = strategy
        self.instant("join.strategy", cat="join", level=level,
                     strategy=strategy)
        if self.metrics is not None:
            self.metrics.counter("join.strategy_levels",
                                 strategy=strategy).inc()

    def level_stats(self, level: int, raw: int, cdus: int,
                    dense: int) -> None:
        """Per-level lattice sizes: CDUs as generated, after repeat
        elimination, and found dense."""
        if self.metrics is not None:
            label = str(level)
            self.metrics.counter("lattice.cdus_raw", level=label).inc(raw)
            self.metrics.counter("lattice.cdus", level=label).inc(cdus)
            self.metrics.counter("lattice.dense", level=label).inc(dense)

    # -- checkpoint / fault hooks ---------------------------------------
    def checkpoint_saved(self, level: int, nbytes: int) -> None:
        if self.metrics is not None:
            self.metrics.counter("checkpoint.saves").inc()
            self.metrics.counter("checkpoint.bytes").inc(nbytes)

    def checkpoint_restored(self, level: int) -> None:
        self.instant("checkpoint_restored", cat="checkpoint", level=level)
        if self.metrics is not None:
            self.metrics.counter("checkpoint.restores").inc()

    def fault_event(self, kind: str, **attrs: Any) -> None:
        """An injected fault fired on this rank (crash, read error,
        message drop/delay) — lands in the same trace as real work."""
        self.instant(f"fault.{kind}", cat="fault", **attrs)
        if self.metrics is not None:
            self.metrics.counter("faults.injected", kind=kind).inc()

    # -- serving hooks ----------------------------------------------------
    def serve_batch(self, n_records: int, seconds: float, *,
                    hits: int, misses: int, evaluated: int,
                    bypassed: bool) -> None:
        """One scored batch from the serving engine: records answered,
        signature-cache hits/misses at record granularity, distinct
        signatures actually evaluated, and whether the batch bypassed
        the cache probe (mostly-novel traffic).  The ``score_batch``
        span itself is recorded by the server around the evaluation;
        this hook lands the metrics half."""
        if self.metrics is None:
            return
        self.metrics.counter("serve.batches").inc()
        self.metrics.counter("serve.records").inc(n_records)
        self.metrics.counter("serve.cache_hits").inc(hits)
        self.metrics.counter("serve.cache_misses").inc(misses)
        self.metrics.counter("serve.evaluations").inc(evaluated)
        if bypassed:
            self.metrics.counter("serve.cache_bypasses").inc()
        self.metrics.gauge("serve.batch_size").set(n_records)
        self.metrics.histogram("serve.batch_records").observe(n_records)
        self.metrics.histogram("serve.batch_latency_us").observe(
            seconds * 1e6)

    # -- streaming hooks --------------------------------------------------
    def stream_ingest(self, seq: int, n_records: int,
                      seconds: float) -> None:
        """One delta applied to a streaming session: records appended,
        the sequence number it carried, and the wall time of the apply
        (bin + histogram update + segment build)."""
        if self.metrics is None:
            return
        self.metrics.counter("stream.deltas").inc()
        self.metrics.counter("stream.records_ingested").inc(n_records)
        self.metrics.gauge("stream.last_seq").set(seq)
        self.metrics.histogram("stream.ingest_latency_us").observe(
            seconds * 1e6)

    def stream_expired(self, n_records: int) -> None:
        """Records aged out of the sliding window by an ingest."""
        if self.metrics is not None:
            self.metrics.counter("stream.records_expired").inc(n_records)

    def stream_rebin(self, drift: float) -> None:
        """Histogram drift crossed the threshold: adaptive bins were
        re-merged and the per-segment indexes rebuilt eagerly."""
        self.instant("stream.rebin", cat="stream", drift=drift)
        if self.metrics is not None:
            self.metrics.counter("stream.rebins").inc()
            self.metrics.gauge("stream.last_drift").set(drift)

    def stream_snapshot(self, n_live: int, seconds: float, *,
                        levels: int, cache_hits: int,
                        cache_misses: int) -> None:
        """One window snapshot: live records clustered, lattice levels
        walked, and join/dedup cache traffic for the walk."""
        if self.metrics is None:
            return
        self.metrics.counter("stream.snapshots").inc()
        self.metrics.counter("stream.snapshot_cache_hits").inc(cache_hits)
        self.metrics.counter("stream.snapshot_cache_misses").inc(
            cache_misses)
        self.metrics.gauge("stream.live_records").set(n_live)
        self.metrics.histogram("stream.snapshot_latency_us").observe(
            seconds * 1e6)

    def stream_quarantine(self, path: str) -> None:
        """A spilled segment tile failed its CRC check and was renamed
        aside; the segment was rebuilt from its record file."""
        self.instant("stream.quarantine", cat="stream", path=path)
        if self.metrics is not None:
            self.metrics.counter("stream.tile_quarantines").inc()

    # -- recovery / rebalance hooks --------------------------------------
    def recovery_event(self, kind: str, **attrs: Any) -> None:
        """One step of a shard-recovery round seen from this rank:
        ``resumed`` on a survivor restored to an earlier level,
        ``rebuilt`` on a replacement that restaged the lost shard,
        ``shard_manifest`` when staged-artifact reuse was verified."""
        self.instant(f"recovery.{kind}", cat="recovery", **attrs)
        if self.metrics is not None:
            self.metrics.counter("recovery.events", kind=kind).inc()

    def rebalance_event(self, level: int, ratio: float) -> None:
        """The straggler monitor re-fenced the level's join/dedup work
        (``ratio`` is the realised slowest/fastest spread)."""
        self.instant("recovery.rebalance", cat="recovery", level=level,
                     ratio=ratio)
        if self.metrics is not None:
            self.metrics.counter("rebalance.refences").inc()
            self.metrics.gauge("rebalance.last_ratio").set(ratio)

    # -- export ----------------------------------------------------------
    def phase_seconds(self) -> dict[str, float]:
        """Wall seconds per driver phase, from this rank's spans."""
        return _phase_seconds(self.tracer.spans
                              if self.tracer is not None else ())

    def join_strategies(self) -> dict[int, str]:
        """Level -> resolved join strategy recorded so far."""
        return dict(self._join_strategies)

    def export(self) -> "RankObsData":
        """Freeze the buffers into a picklable per-rank record."""
        return RankObsData(
            rank=self.rank,
            spans=tuple(self.tracer.spans)
            if self.tracer is not None else (),
            metrics=self.metrics.snapshot()
            if self.metrics is not None else None,
            join_strategies=dict(self._join_strategies))


@dataclass(frozen=True)
class RankObsData:
    """One rank's frozen observability output: its span buffer in
    record order and its metrics snapshot (either may be empty/None
    when the corresponding knob was off)."""

    rank: int
    spans: tuple[Span, ...]
    metrics: dict[str, dict[str, Any]] | None
    #: level -> join strategy the level actually ran (resolved, not the
    #: param value); defaulted so records pickled before the field
    #: existed still load
    join_strategies: dict[int, str] = field(default_factory=dict)

    def phase_seconds(self) -> dict[str, float]:
        """Wall seconds per driver phase, from this rank's spans."""
        return _phase_seconds(self.spans)

    def check(self) -> list[str]:
        """Span-integrity violations for this rank (empty when clean)."""
        return check_rank_spans(self.spans)


@dataclass(frozen=True)
class RunObs:
    """A whole run's observability: one :class:`RankObsData` per rank."""

    ranks: tuple[RankObsData, ...]

    def merged_spans(self) -> list[Span]:
        """All ranks' spans on one begin-ordered timeline (stable, so
        each rank's relative record order survives)."""
        spans = [s for r in self.ranks for s in r.spans]
        spans.sort(key=lambda s: (s.begin, s.rank))
        return spans

    def merged_metrics(self) -> dict[str, Any]:
        """Per-rank snapshots plus the cross-rank total."""
        per_rank = {str(r.rank): r.metrics for r in self.ranks}
        total = merge_snapshots(r.metrics for r in self.ranks
                                if r.metrics is not None)
        return {"per_rank": per_rank, "total": total}

    def phase_seconds(self) -> dict[str, float]:
        """Wall seconds per driver phase, summed across ranks."""
        out: dict[str, float] = {}
        for r in self.ranks:
            for name, secs in r.phase_seconds().items():
                out[name] = out.get(name, 0.0) + secs
        return out

    def join_strategies(self) -> dict[int, str]:
        """Level -> resolved join strategy across the run.  Strategy
        resolution is deterministic and identical on every rank, so
        merging is a plain union."""
        out: dict[int, str] = {}
        for r in self.ranks:
            out.update(getattr(r, "join_strategies", {}))
        return out

    def check(self) -> list[str]:
        """Span-integrity violations across all ranks."""
        problems: list[str] = []
        for r in self.ranks:
            problems.extend(f"rank {r.rank}: {p}" for p in r.check())
        return problems


def _phase_seconds(spans) -> dict[str, float]:
    out: dict[str, float] = {}
    for s in spans:
        if s.cat == "phase" and s.kind == _trace.COMPLETE:
            out[s.name] = out.get(s.name, 0.0) + s.duration
    return out


def as_run_obs(obj: Any) -> RunObs | None:
    """Coerce a :class:`RunObs`, ``PMafiaRun`` or ``ClusteringResult``
    into the run-level view (``None`` when observability was off)."""
    if obj is None or isinstance(obj, RunObs):
        return obj
    if isinstance(obj, RankObsData):
        return RunObs(ranks=(obj,))
    inner = getattr(obj, "obs", None)
    if inner is obj:
        return None
    return as_run_obs(inner)


def serve_summary(obs: Any) -> dict[str, Any] | None:
    """The serving half of an observer's metrics, flattened to one
    JSON-ready dict (``None`` when no ``serve.*`` metric was ever
    recorded — e.g. metrics off, or the observer never served).

    Counters come through as plain numbers; the latency histogram is
    summarised as count / total / min / max / mean microseconds."""
    run = as_run_obs(obs)
    if run is None:
        if isinstance(obs, RankObs):
            run = RunObs(ranks=(obs.export(),))
        else:
            return None
    total = run.merged_metrics()["total"]
    out: dict[str, Any] = {}
    for name in ("serve.batches", "serve.records", "serve.cache_hits",
                 "serve.cache_misses", "serve.evaluations",
                 "serve.cache_bypasses"):
        entry = total.get(name)
        if entry is not None:
            out[name.split(".", 1)[1]] = entry["value"]
    lat = total.get("serve.batch_latency_us")
    if lat is not None and lat["count"]:
        out["latency_us"] = {
            "count": lat["count"], "total": lat["sum"],
            "min": lat["min"], "max": lat["max"],
            "mean": lat["sum"] / lat["count"],
        }
    return out or None


def write_metrics_snapshot(path: str | Path, obs: Any) -> Path:
    """Write the merged metrics of a run (or single rank) as JSON."""
    run = as_run_obs(obs)
    if run is None:
        raise ValueError("no observability data to write "
                         "(was metrics/trace enabled?)")
    path = Path(path)
    path.write_text(json.dumps(run.merged_metrics(), indent=2,
                               sort_keys=True) + "\n")
    return path
