"""Per-rank span tracing.

A :class:`RankTracer` owns one rank's append-only span buffer.  The
driver brackets its work in :meth:`RankTracer.span` context managers;
each completed bracket appends one immutable :class:`Span` carrying the
wall clock (``time.perf_counter``), the rank's *virtual* clock (the
communicator's :meth:`~repro.parallel.comm.Comm.time` — 0.0 outside the
simulated-time backend), the nesting depth and free-form attributes.

Spans are recorded only as *complete* intervals (begin and end captured
by the same ``with`` block), so orphan ends are impossible by
construction; a block that raises still records its span, tagged with
an ``error`` attribute, which is how a crashed rank's partial progress
survives into the merged timeline.  Point events (injected faults,
checkpoint restores) are :meth:`RankTracer.instant` records.

The buffer is a plain Python list appended to by exactly one thread —
the rank's driver thread — so no lock is taken on the hot path.
Prefetch and overlap helper threads never touch the tracer (mirroring
how ``charge_io`` stays on the consumer thread).

The active tracer travels in a :class:`contextvars.ContextVar`, exactly
like :mod:`repro.core.timing`'s collector: per-rank driver threads each
see their own tracer (or none) without locking, and instrumented
library code far from the driver (``timing.phase``) picks it up for
free via :func:`current_tracer` / :func:`span`.

Export: :func:`write_chrome_trace` emits the Chrome ``trace_event``
JSON format (load in ``chrome://tracing`` or https://ui.perfetto.dev);
ranks appear as threads of one process, virtual timestamps ride along
in each event's ``args``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

#: span kinds
COMPLETE = "complete"
INSTANT = "instant"


@dataclass(frozen=True)
class Span:
    """One recorded interval (or point event) on one rank.

    ``begin`` / ``end`` are wall seconds (``perf_counter`` — only
    differences are meaningful); ``vbegin`` / ``vend`` are the rank's
    virtual-clock seconds at the same two moments (both 0.0 outside the
    simulated-time backend).  ``depth`` is the tracer's nesting depth
    *outside* this span.  For ``kind == "instant"`` begin equals end.
    """

    name: str
    cat: str
    rank: int
    begin: float
    end: float
    vbegin: float
    vend: float
    depth: int
    kind: str = COMPLETE
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.begin

    @property
    def ok(self) -> bool:
        """False when the traced block raised (``error`` attribute)."""
        return "error" not in self.attrs


class RankTracer:
    """One rank's span buffer plus its wall and virtual clocks.

    Single-writer: only the rank's own driver thread may record.
    ``clock`` supplies virtual timestamps (pass the communicator's
    bound ``time`` method); ``None`` pins virtual time to 0.0.
    """

    def __init__(self, rank: int,
                 clock: Callable[[], float] | None = None) -> None:
        self.rank = rank
        self._clock = clock if clock is not None else _zero_clock
        self.spans: list[Span] = []
        self._depth = 0

    @contextmanager
    def span(self, name: str, cat: str = "task",
             **attrs: Any) -> Iterator[dict[str, Any]]:
        """Record the block as one complete span.  Yields the span's
        attribute dict, which the block may extend with values known
        only mid-flight; a raising block is recorded with an ``error``
        attribute naming the exception type."""
        out_attrs = dict(attrs)
        begin = time.perf_counter()
        vbegin = self._clock()
        self._depth += 1
        try:
            yield out_attrs
        except BaseException as exc:
            out_attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            self._depth -= 1
            self.spans.append(Span(
                name=name, cat=cat, rank=self.rank,
                begin=begin, end=time.perf_counter(),
                vbegin=vbegin, vend=self._clock(),
                depth=self._depth, attrs=out_attrs))

    def instant(self, name: str, cat: str = "event",
                **attrs: Any) -> None:
        """Record a point event at the current clocks."""
        now = time.perf_counter()
        vnow = self._clock()
        self.spans.append(Span(
            name=name, cat=cat, rank=self.rank,
            begin=now, end=now, vbegin=vnow, vend=vnow,
            depth=self._depth, kind=INSTANT, attrs=dict(attrs)))


def _zero_clock() -> float:
    return 0.0


# -- ambient tracer ----------------------------------------------------

_active: ContextVar[RankTracer | None] = ContextVar(
    "repro_active_tracer", default=None)


def current_tracer() -> RankTracer | None:
    """The tracer activated on this thread/context, if any."""
    return _active.get()


@contextmanager
def activated(tracer: RankTracer) -> Iterator[RankTracer]:
    """Make ``tracer`` the ambient tracer for the block."""
    token = _active.set(tracer)
    try:
        yield tracer
    finally:
        _active.reset(token)


@contextmanager
def span(name: str, cat: str = "task", **attrs: Any) -> Iterator[None]:
    """Record a span on the ambient tracer; free no-op without one."""
    tracer = _active.get()
    if tracer is None:
        yield
        return
    with tracer.span(name, cat, **attrs):
        yield


# -- crash-surviving session registry ----------------------------------

_sessions_lock = threading.Lock()
_sessions: list["ObsSession"] = []


class ObsSession:
    """Collects every per-rank observer created while the session is
    open — including observers whose rank later crashed, whose buffers
    would otherwise be lost with the failed run.  Thread-safe; spans
    are read only after the observed runs have ended."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._observers: list[Any] = []

    def _add(self, obs: Any) -> None:
        with self._lock:
            self._observers.append(obs)

    @property
    def observers(self) -> list[Any]:
        with self._lock:
            return list(self._observers)

    def merged_spans(self) -> list[Span]:
        """All spans from every registered observer, merged into one
        begin-ordered timeline (per-rank relative order preserved for
        equal begin times by the stable sort)."""
        spans: list[Span] = []
        for obs in self.observers:
            tracer = getattr(obs, "tracer", None)
            if tracer is not None:
                spans.extend(tracer.spans)
        spans.sort(key=lambda s: (s.begin, s.rank))
        return spans


@contextmanager
def obs_session() -> Iterator[ObsSession]:
    """Open a session that captures every observer created inside the
    block — the merged timeline then includes ranks that crashed.
    Observers register only in the creating process, so the process
    backend's children are not captured (use the thread backend when a
    test needs a crashed rank's trace)."""
    session = ObsSession()
    with _sessions_lock:
        _sessions.append(session)
    try:
        yield session
    finally:
        with _sessions_lock:
            _sessions.remove(session)


def register_observer(obs: Any) -> None:
    """Hand a freshly created observer to every open session."""
    with _sessions_lock:
        sessions = list(_sessions)
    for session in sessions:
        session._add(obs)


# -- integrity checks ---------------------------------------------------

def check_rank_spans(spans: Sequence[Span]) -> list[str]:
    """Validate one rank's spans *in recorded order*.  Returns human-
    readable violations (empty when clean): every interval must satisfy
    begin <= end on both clocks, the rank's clocks must be monotone in
    record order (complete spans record at their *end*), and complete
    spans must nest properly — any two either disjoint or contained.
    """
    problems: list[str] = []
    last_end = last_vend = float("-inf")
    by_rank = {s.rank for s in spans}
    if len(by_rank) > 1:
        problems.append(f"spans from multiple ranks {sorted(by_rank)} — "
                        "check one rank's buffer at a time")
    for s in spans:
        if s.begin > s.end:
            problems.append(f"{s.name}: begin {s.begin} > end {s.end}")
        if s.vbegin > s.vend:
            problems.append(
                f"{s.name}: vbegin {s.vbegin} > vend {s.vend}")
        if s.end < last_end:
            problems.append(
                f"{s.name}: wall clock ran backwards "
                f"({s.end} after {last_end})")
        if s.vend < last_vend:
            problems.append(
                f"{s.name}: virtual clock ran backwards "
                f"({s.vend} after {last_vend})")
        last_end, last_vend = s.end, s.vend
    # nesting: process complete spans as an interval stack
    complete = sorted((s for s in spans if s.kind == COMPLETE),
                      key=lambda s: (s.begin, -s.end))
    stack: list[Span] = []
    for s in complete:
        while stack and stack[-1].end <= s.begin:
            stack.pop()
        if stack and s.end > stack[-1].end:
            problems.append(
                f"{s.name} [{s.begin}, {s.end}] straddles the end of "
                f"enclosing {stack[-1].name} "
                f"[{stack[-1].begin}, {stack[-1].end}]")
        stack.append(s)
    return problems


def check_spans_by_rank(spans: Iterable[Span]) -> list[str]:
    """Run :func:`check_rank_spans` per rank on a mixed collection
    (e.g. a begin-ordered merged timeline).

    Spans are recorded at block *exit*, so a rank's record order is its
    end order — a begin-sorted merge interleaves an enclosing span
    before its children.  Each rank's spans are therefore re-sorted by
    ``(end, begin)`` to reconstruct record order before checking.
    """
    per_rank: dict[int, list[Span]] = {}
    for s in spans:
        per_rank.setdefault(s.rank, []).append(s)
    problems: list[str] = []
    for rank in sorted(per_rank):
        ordered = sorted(per_rank[rank], key=lambda s: (s.end, s.begin))
        problems.extend(f"rank {rank}: {p}"
                        for p in check_rank_spans(ordered))
    return problems


# -- Chrome trace_event export ------------------------------------------

def chrome_trace_events(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Spans as Chrome ``trace_event`` dicts: ranks are threads of one
    process, timestamps are microseconds since the earliest span."""
    spans = list(spans)
    t0 = min((s.begin for s in spans), default=0.0)
    events: list[dict[str, Any]] = []
    for rank in sorted({s.rank for s in spans}):
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": rank, "args": {"name": f"rank {rank}"}})
    for s in spans:
        args = {k: _jsonable(v) for k, v in s.attrs.items()}
        args["vbegin_s"] = s.vbegin
        args["vend_s"] = s.vend
        event: dict[str, Any] = {
            "name": s.name, "cat": s.cat, "pid": 0, "tid": s.rank,
            "ts": (s.begin - t0) * 1e6, "args": args,
        }
        if s.kind == INSTANT:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (s.end - s.begin) * 1e6
        events.append(event)
    return events


def write_chrome_trace(path: str | Path,
                       spans: Iterable[Span]) -> Path:
    """Write spans as a Chrome ``trace_event`` JSON object file."""
    path = Path(path)
    doc = {"traceEvents": chrome_trace_events(spans),
           "displayTimeUnit": "ms"}
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    return repr(value)
