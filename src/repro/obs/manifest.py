"""The ``run_manifest.json`` written next to checkpoints.

One JSON document per run answering "what exactly ran": the full
parameter set, the adaptive-grid fingerprint (the same SHA-256 the
binned store and checkpoints carry, so artifacts cross-check), data-set
shape, the per-level lattice sizes, per-phase wall totals from the
span buffer and the virtual completion time on the simulated backend.

Schema (``pmafia-run-manifest/1``)::

    {
      "schema": "pmafia-run-manifest/1",
      "params": {...},                 # every MafiaParams field
      "n_records": int,
      "n_dims": int,
      "nprocs": int,
      "grid_fingerprint": "hex sha-256",
      "levels": [{"level", "n_cdus_raw", "n_cdus", "n_dense"}, ...],
      "n_clusters": int,
      "phases": {"grid": seconds, ...}, # from the writing rank's spans
      "virtual_seconds": float,         # 0.0 off the sim backend
      "join_strategies": {"2": "hash", "4": "fptree", ...},  # resolved
      "serve": {...}                    # optional: serve_summary() of a
    }                                   # scoring session over the result

Rank 0 writes the manifest at the end of a run when observability is on
and a checkpoint directory is configured; the CLI writes one next to
``--trace-out`` / ``--metrics-out``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..io.binned import grid_fingerprint

SCHEMA = "pmafia-run-manifest/1"
MANIFEST_NAME = "run_manifest.json"


def build_manifest(result: Any, *, phases: dict[str, float],
                   nprocs: int = 1,
                   virtual_seconds: float = 0.0,
                   join_strategies: dict[int, str] | None = None,
                   serve: dict[str, Any] | None = None
                   ) -> dict[str, Any]:
    """Assemble the manifest dict for a finished
    :class:`~repro.core.result.ClusteringResult`.

    ``join_strategies`` records the *resolved* join implementation each
    level ran (``auto`` decisions included), keyed by level.
    ``serve`` attaches a :func:`repro.obs.serve_summary` of a scoring
    session run over the result (the CLI ``score`` subcommand's path);
    the key is omitted when ``None`` so clustering-only manifests are
    byte-identical to before.
    """
    params = result.params
    fields = getattr(params, "__dataclass_fields__", {})
    manifest = {
        "schema": SCHEMA,
        "params": {name: _plain(getattr(params, name)) for name in fields},
        "n_records": int(result.n_records),
        "n_dims": int(result.grid.ndim),
        "nprocs": int(nprocs),
        "grid_fingerprint": grid_fingerprint(result.grid).hex(),
        "levels": [{"level": t.level, "n_cdus_raw": t.n_cdus_raw,
                    "n_cdus": t.n_cdus, "n_dense": t.n_dense}
                   for t in result.trace],
        "n_clusters": len(result.clusters),
        "phases": {name: round(secs, 6)
                   for name, secs in phases.items()},
        "virtual_seconds": float(virtual_seconds),
        "join_strategies": {str(level): strategy for level, strategy
                            in sorted((join_strategies or {}).items())},
    }
    if serve is not None:
        manifest["serve"] = serve
    return manifest


def write_manifest(path: str | Path, manifest: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def _plain(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
