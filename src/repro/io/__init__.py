"""Out-of-core I/O substrate: binary record files, chunked passes,
block partitioning of N over p ranks, shared→local disk staging, the
staged bin-index store behind the ``bin_cache`` policy and the
persistent membership bitmap index behind ``bitmap_index``."""

from .binned import (BinnedStore, binned_cache_path, build_binned_store,
                     grid_fingerprint, load_binned_cache, stage_binned)
from .bitmap_index import (DEFAULT_BITMAP_BUDGET, BitmapIndex,
                           bitmap_cache_path, build_bitmap_index,
                           index_nbytes, load_bitmap_cache,
                           stage_bitmap_index)
from .chunks import ArraySource, DataSource, as_source, charged_chunks
from .partition import block_offsets, block_range
from .prefetch import prefetched
from .records import (DEFAULT_CRC_CHUNK_RECORDS, RecordFile, RecordFileInfo,
                      RecordFileWriter, read_header, write_records)
from .resilient import DEFAULT_RETRY, RetryPolicy, read_with_retry
from .staging import local_path, stage_local

__all__ = [
    "ArraySource",
    "BinnedStore",
    "BitmapIndex",
    "DEFAULT_BITMAP_BUDGET",
    "DEFAULT_CRC_CHUNK_RECORDS",
    "DEFAULT_RETRY",
    "DataSource",
    "RecordFile",
    "RecordFileInfo",
    "RecordFileWriter",
    "RetryPolicy",
    "as_source",
    "binned_cache_path",
    "bitmap_cache_path",
    "block_offsets",
    "block_range",
    "build_binned_store",
    "build_bitmap_index",
    "charged_chunks",
    "grid_fingerprint",
    "index_nbytes",
    "load_binned_cache",
    "load_bitmap_cache",
    "local_path",
    "prefetched",
    "read_header",
    "read_with_retry",
    "stage_binned",
    "stage_bitmap_index",
    "stage_local",
    "write_records",
]
