"""Out-of-core I/O substrate: binary record files, chunked passes,
block partitioning of N over p ranks and shared→local disk staging."""

from .chunks import ArraySource, DataSource, as_source, charged_chunks
from .partition import block_offsets, block_range
from .records import (DEFAULT_CRC_CHUNK_RECORDS, RecordFile, RecordFileInfo,
                      RecordFileWriter, read_header, write_records)
from .resilient import DEFAULT_RETRY, RetryPolicy, read_with_retry
from .staging import local_path, stage_local

__all__ = [
    "ArraySource",
    "DEFAULT_CRC_CHUNK_RECORDS",
    "DEFAULT_RETRY",
    "DataSource",
    "RecordFile",
    "RecordFileInfo",
    "RecordFileWriter",
    "RetryPolicy",
    "as_source",
    "block_offsets",
    "block_range",
    "charged_chunks",
    "local_path",
    "read_header",
    "read_with_retry",
    "stage_local",
    "write_records",
]
