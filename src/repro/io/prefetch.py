"""Double-buffered chunk read-ahead.

:func:`prefetched` wraps any chunk iterator so the *next* item is
produced on a single background thread while the consumer processes the
current one — classic double buffering, overlapping disk reads (and the
CRC verification / memmap copies of the binned store) with the
bitmap-AND counting of the level pass.

The wrapped iterator does only the *raw* reads.  Everything that touches
rank-local mutable state stays on the consumer thread: the simulated
clock's ``charge_io`` (``TimedComm`` is not thread-safe) is applied by
the caller after each chunk is handed over, so virtual runtimes are
bit-identical with prefetch on or off.  Fault injection still fires —
the injected ``OSError`` is raised on the reader thread and re-raised to
the consumer at the hand-over point.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, TypeVar

T = TypeVar("T")

_STOP = object()


def _pull(it: Iterator[T]):
    try:
        return next(it)
    except StopIteration:
        return _STOP


def prefetched(iterable: Iterable[T],
               on_wait: Callable[[bool], None] | None = None
               ) -> Iterator[T]:
    """Yield from ``iterable``, computing each next item one step ahead
    on a background thread.

    Exactly one item is in flight at any time (double buffering): peak
    extra memory is one chunk.  Exceptions from the underlying iterator
    propagate to the consumer in order.  Abandoning the generator joins
    the reader thread (at most one in-flight read completes and is
    dropped).

    ``on_wait(hit)`` is called on the consumer thread once per item
    with whether the read-ahead had already finished when the consumer
    asked (``True`` = overlap fully hid the read) — the observability
    layer's prefetch hit/miss counters.
    """
    it = iter(iterable)
    pool = ThreadPoolExecutor(max_workers=1,
                              thread_name_prefix="repro-prefetch")
    try:
        fut = pool.submit(_pull, it)
        while True:
            ready = fut.done()
            item = fut.result()
            if item is _STOP:
                return
            if on_wait is not None:
                on_wait(ready)
            fut = pool.submit(_pull, it)
            yield item
    finally:
        fut.cancel()
        try:
            fut.result()
        except Exception:
            pass  # in-flight read failed after the consumer stopped
        pool.shutdown(wait=True)
