"""Shared-disk to local-disk staging.

On the paper's SP2 "each processor reads a portion of the data from a
shared disk initially and keeps it on the local disk" because local-disk
bandwidth is much higher (§4).  :func:`stage_local` reproduces that step:
rank ``r`` copies its block of the shared record file into a private
local record file, which all subsequent passes read.

The paper excludes the shared-disk (NFS) read time from its measurements
(§5.2), so staging charges nothing to the virtual clock.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..parallel.comm import Comm
from .partition import block_range
from .records import RecordFile, write_records


def local_path(shared: str | os.PathLike, rank: int,
               local_dir: str | os.PathLike | None = None) -> Path:
    """Path of rank ``rank``'s local copy of ``shared``."""
    shared = Path(shared)
    directory = Path(local_dir) if local_dir is not None else shared.parent
    return directory / f"{shared.stem}.rank{rank}{shared.suffix or '.bin'}"


def stage_local(comm: Comm, shared: str | os.PathLike,
                local_dir: str | os.PathLike | None = None) -> RecordFile:
    """Copy this rank's N/p block of ``shared`` onto "local disk".

    Returns a handle on the rank-private record file.  Idempotent: an
    existing up-to-date local copy is reused.
    """
    source = RecordFile(shared)
    start, stop = block_range(source.n_records, comm.size, comm.rank)
    destination = local_path(shared, comm.rank, local_dir)
    if destination.exists():
        try:
            existing = RecordFile(destination)
        except Exception:
            destination.unlink()
        else:
            if (existing.n_records == stop - start
                    and existing.n_dims == source.n_dims):
                return existing
    return write_records(destination, source.read_block(start, stop))
