"""Chunked data sources.

The algorithms make k passes over their local data "in chunks of B
records" (Algorithm 2).  They are written against the small
:class:`DataSource` protocol so the same code runs out-of-core from a
:class:`~repro.io.records.RecordFile` or in-memory from an
:class:`ArraySource`; :func:`charged_chunks` threads the pass through the
communicator's I/O cost hook so the simulated-time backend sees every
block read.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from ..errors import DataError
from ..parallel.comm import Comm
from .prefetch import prefetched
from .resilient import RetryPolicy, read_with_retry


@runtime_checkable
class DataSource(Protocol):
    """Anything the out-of-core passes can read records from."""

    @property
    def n_records(self) -> int: ...

    @property
    def n_dims(self) -> int: ...

    def iter_chunks(self, chunk_records: int, start: int = 0,
                    stop: int | None = None) -> Iterator[np.ndarray]:
        """Yield ``(rows, d)`` blocks of at most ``chunk_records``
        records covering ``[start, stop)``."""
        ...


class ArraySource:
    """An in-memory ``(n, d)`` array exposed as a :class:`DataSource`."""

    def __init__(self, records: np.ndarray) -> None:
        # already-float64 input must be wrapped without a copy (callers
        # hand in multi-GB blocks); only foreign dtypes convert
        records = np.asarray(records)
        if records.dtype != np.float64:
            records = records.astype(np.float64)
        if records.ndim != 2:
            raise DataError(f"records must be 2-D, got shape {records.shape}")
        if records.shape[1] == 0:
            raise DataError("records must have at least one dimension")
        self._records = records

    @property
    def n_records(self) -> int:
        return int(self._records.shape[0])

    @property
    def n_dims(self) -> int:
        return int(self._records.shape[1])

    @property
    def records(self) -> np.ndarray:
        return self._records

    def read_block(self, start: int, stop: int) -> np.ndarray:
        """A view of records ``[start, stop)`` (no copy)."""
        if not 0 <= start <= stop <= self.n_records:
            raise DataError(
                f"block [{start}, {stop}) out of range for "
                f"{self.n_records} records")
        return self._records[start:stop]

    def iter_chunks(self, chunk_records: int, start: int = 0,
                    stop: int | None = None) -> Iterator[np.ndarray]:
        """Yield array views of at most ``chunk_records`` rows."""
        if chunk_records <= 0:
            raise DataError(f"chunk_records must be positive, got {chunk_records}")
        stop = self.n_records if stop is None else stop
        if not 0 <= start <= stop <= self.n_records:
            raise DataError(
                f"range [{start}, {stop}) out of bounds for "
                f"{self.n_records} records")
        for lo in range(start, stop, chunk_records):
            yield self._records[lo:min(lo + chunk_records, stop)]


def as_source(data) -> DataSource:
    """Coerce an array or DataSource into a DataSource."""
    if isinstance(data, np.ndarray):
        return ArraySource(data)
    if isinstance(data, DataSource):
        return data
    raise DataError(f"cannot read records from {type(data).__name__}")


def _raw_blocks(read_block, fault_state, chunk_records: int, start: int,
                stop: int, retry: RetryPolicy | None,
                on_retry=None) -> Iterator[np.ndarray]:
    """The uncharged read loop — safe to run on a prefetch thread (it
    touches only the source, the rank's fault state and the retry
    counter, never the communicator's clock)."""
    for index, lo in enumerate(range(start, stop, chunk_records)):
        hi = min(lo + chunk_records, stop)

        def attempt(lo: int = lo, hi: int = hi,
                    index: int = index) -> np.ndarray:
            if fault_state is not None:
                fault_state.on_chunk_read(index)
            return read_block(lo, hi)

        yield read_with_retry(attempt, retry, on_retry)


def charged_chunks(source: DataSource, comm: Comm, chunk_records: int,
                   start: int = 0, stop: int | None = None,
                   itemsize: int = 8,
                   retry: RetryPolicy | None = None,
                   prefetch: bool = False) -> Iterator[np.ndarray]:
    """Iterate chunks while charging each block read to the rank's
    virtual I/O clock (one chunk access of ``rows * d * itemsize`` bytes).

    When the source exposes ``read_block`` (record files, in-memory
    arrays), every block is read through :func:`read_with_retry` so
    transient ``OSError`` s are retried with backoff under ``retry``;
    structural failures (bad header, :class:`~repro.errors.ChecksumError`
    corruption) fail fast.  The rank's fault state (if a
    :class:`~repro.parallel.faults.FaultPlan` is active) is consulted
    before each read so injected read errors exercise exactly this
    path.  Pure streaming sources without ``read_block`` cannot be
    re-read and fall back to plain iteration.

    With ``prefetch`` the next block is read one step ahead on a
    background thread (:func:`repro.io.prefetch.prefetched`); charging
    always happens here on the consumer thread, so simulated times are
    unaffected.

    When the rank has an observer attached (``comm.obs``), every chunk
    is also counted into its metrics registry (chunks / records /
    bytes, retries, prefetch hits) — pure counting on top of the same
    values already charged, so virtual clocks are untouched.
    """
    obs = getattr(comm, "obs", None)
    read_block = getattr(source, "read_block", None)
    if read_block is None:
        chunks = source.iter_chunks(chunk_records, start, stop)
    else:
        if chunk_records <= 0:
            raise DataError(
                f"chunk_records must be positive, got {chunk_records}")
        stop = source.n_records if stop is None else stop
        if not 0 <= start <= stop <= source.n_records:
            raise DataError(
                f"range [{start}, {stop}) out of bounds for "
                f"{source.n_records} records")
        chunks = _raw_blocks(read_block, getattr(comm, "fault_state", None),
                             chunk_records, start, stop, retry,
                             obs.io_retry if obs is not None else None)
    if prefetch:
        chunks = prefetched(
            chunks, obs.prefetch_result if obs is not None else None)
    for chunk in chunks:
        nbytes = chunk.shape[0] * chunk.shape[1] * itemsize
        comm.charge_io(nbytes, chunks=1)
        if obs is not None:
            obs.io_chunk(chunk.shape[0], nbytes, kind="records")
        yield chunk
