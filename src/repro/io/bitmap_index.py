"""Persistent per-(dim, bin) membership bitmap index.

The binned store (PR 2) removed the *float decode* from level passes but
every pass still re-reads the staged columns and re-runs
``np.packbits(col == b)`` for the same (dim, bin) pairs at every level
and every chunk.  A :class:`BitmapIndex` is the next fixpoint of that
redundancy: immediately after the adaptive grid is fixed, one staging
pass packs **one membership bitmap per (dim, bin) pair of the grid** —
bit ``r`` of bitmap ``(d, b)`` is set iff record ``r`` falls in bin
``b`` of dimension ``d``.  Every later population pass is then pure
AND + popcount over cached bitmaps: zero re-reads of the staged
columns, zero repeated ``packbits`` (see
:class:`repro.core.population.IndexedPopulator` for the memoized
prefix AND-tree that consumes this index).

Residency is governed by a byte budget (``MafiaParams.bitmap_budget``):
an index of ``sum(nbins) * ceil(n/8)`` bytes lives in RAM when it fits
(``auto``/``resident``) and otherwise *spills* to an mmap-tiled on-disk
format — each pair's bitmap is one contiguous tile, mapped read-only
and CRC-verified lazily on first touch, with the same grid-fingerprint
cache-invalidation rule as the PMBS binned store.

On-disk format (version 1)::

    header  <4sHHqqq32s>  magic b"PMBI" | u16 version | u16 reserved |
                          i64 n_records | i64 n_pairs | i64 n_dims |
                          32-byte grid fingerprint
    nbins   n_dims x i64  bins per dimension (their sum is n_pairs)
    data    pair-major tiles: pair 0's ceil(n/8) packed bytes, then
            pair 1's, ... (pair id = offsets[dim] + bin)
    footer  one CRC32 per pair tile

Version 2 (the streaming engine's appendable variant) adds one i64
``cap_records`` header field and pads every tile to ``ceil(cap/8)``
bytes, so new records can be spliced onto every tile **in place**
(:func:`append_bitmap_index`) without moving the pair-major layout.
The append protocol zeroes the header's grid fingerprint (and flushes)
*before* touching any tile and restores it only after the new tiles,
CRCs and record count are all durable — a run that crashes mid-append
leaves a file no loader will ever serve
(:func:`load_bitmap_cache` / :meth:`BitmapIndex.open` reject the
zeroed fingerprint as stale), so a half-written tile can never reach a
population pass.  Batch staging keeps writing version 1; version-1
files are upgraded to version 2 (with doubled capacity, via an atomic
temp + rename) the first time they are appended to.

Cost-model note: like binned staging, building the index charges
*nothing* to the virtual clock, and the indexed population engine
replays the exact per-chunk I/O + cell charges the streaming engines
pay — the index changes wall clock only, never simulated SP2 times
(see :mod:`repro.parallel.simtime`).
"""

from __future__ import annotations

import os
import struct
import tempfile
import weakref
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import ChecksumError, DataError, RecordFileError
from ..parallel.comm import Comm
from ..types import Grid
from .binned import BinnedStore, _source_chunks, _unlink_quiet, grid_fingerprint
from .chunks import DataSource
from .records import RecordFile
from .resilient import RetryPolicy, read_with_retry

_MAGIC = b"PMBI"
_VERSION = 1
_VERSION_CAP = 2
_HEADER = struct.Struct("<4sHHqqq32s")
_HEADER_CAP = struct.Struct("<4sHHqqqq32s")
_NBINS_ITEM = struct.Struct("<q")
_CRC_ITEM = struct.Struct("<I")

#: the "no grid" fingerprint an in-flight append stamps into the header
#: before touching tiles; SHA-256 never produces it, so any loader that
#: compares fingerprints rejects the file until the append completes
_NULL_HASH = b"\0" * 32

_CRC_BLOCK = 1 << 20

#: default residency budget for the index plus the prefix-AND memo
DEFAULT_BITMAP_BUDGET = 1 << 28


def _grid_nbins(grid: Grid) -> tuple[int, ...]:
    return tuple(int(dg.nbins) for dg in grid)


def _pair_offsets(nbins: tuple[int, ...]) -> np.ndarray:
    offsets = np.zeros(len(nbins) + 1, dtype=np.int64)
    np.cumsum(np.asarray(nbins, dtype=np.int64), out=offsets[1:])
    return offsets


def index_nbytes(grid: Grid, n_records: int) -> int:
    """Bytes a :class:`BitmapIndex` over this grid and record count
    occupies (one ``ceil(n/8)``-byte tile per (dim, bin) pair) — what
    the ``auto`` policy weighs against ``bitmap_budget``."""
    return sum(_grid_nbins(grid)) * (-(-n_records // 8))


def bitmap_cache_path(record_path: str | os.PathLike) -> Path:
    """The on-disk bitmap-index cache sitting alongside a record file."""
    return Path(record_path).with_suffix(".bmx")


class BitmapIndex:
    """One rank's per-(dim, bin) membership bitmaps.

    Bitmaps live either in a resident ``(n_pairs, row_bytes)`` uint8
    matrix or as mmap tiles of the on-disk format.  Rows are read-only:
    consumers AND them into fresh accumulators, so cached prefix ANDs
    may alias rows safely.
    """

    def __init__(self, *, data: np.ndarray | None = None,
                 path: Path | None = None,
                 nbins: tuple[int, ...] = (),
                 n_records: int = 0,
                 grid_hash: bytes = b"") -> None:
        if (data is None) == (path is None):
            raise DataError("BitmapIndex needs exactly one of data/path")
        self.path = path
        self._mmap: np.ndarray | None = None
        self._verified: set[int] = set()
        self._crcs: tuple[int, ...] = ()
        if data is not None:
            data = np.ascontiguousarray(data, dtype=np.uint8)
            data.setflags(write=False)
            self._data: np.ndarray | None = data
            self.nbins = tuple(int(b) for b in nbins)
            self.n_records = int(n_records)
            self.grid_hash = bytes(grid_hash)
            if data.shape != (sum(self.nbins), -(-self.n_records // 8)):
                raise DataError(
                    f"bitmap data shape {data.shape} does not match "
                    f"{sum(self.nbins)} pairs x {-(-self.n_records // 8)} "
                    f"bytes")
            self._cap_row_bytes = -(-self.n_records // 8)
        else:
            self._data = None
            (self.n_records, self.nbins, self.grid_hash,
             self._data_offset, self._crcs,
             self._cap_row_bytes) = _read_index_header(path)
        self.n_dims = len(self.nbins)
        self.n_pairs = sum(self.nbins)
        self.row_bytes = -(-self.n_records // 8)
        self.offsets = _pair_offsets(self.nbins)

    # -- construction -----------------------------------------------------
    @classmethod
    def open(cls, path: str | os.PathLike,
             expected_grid_hash: bytes | None = None) -> "BitmapIndex":
        """Open an on-disk index; with ``expected_grid_hash`` given, a
        fingerprint mismatch (stale cache) raises
        :class:`~repro.errors.RecordFileError`."""
        index = cls(path=Path(path))
        if (expected_grid_hash is not None
                and index.grid_hash != bytes(expected_grid_hash)):
            raise RecordFileError(
                f"{path}: bitmap index was built for a different grid "
                f"(stale cache; rebuild it)")
        return index

    # -- properties -------------------------------------------------------
    @property
    def resident(self) -> bool:
        """True when every bitmap lives in RAM (no mmap tiles)."""
        return self._data is not None

    @property
    def nbytes(self) -> int:
        """Total bitmap payload bytes (resident or mapped alike)."""
        return self.n_pairs * self.row_bytes

    # -- reads ------------------------------------------------------------
    def _map(self) -> np.ndarray:
        if self._mmap is None:
            # version-2 files pad tiles to the capacity width; the map
            # keeps the padded stride and reads slice off the live bytes
            self._mmap = np.memmap(self.path, mode="r", dtype=np.uint8,
                                   offset=self._data_offset,
                                   shape=(self.n_pairs,
                                          self._cap_row_bytes))
        return self._mmap

    def _verify_tile(self, pair: int) -> None:
        if not self._crcs or pair in self._verified:
            return
        tile = self._map()[pair, :self.row_bytes]
        crc = 0
        for lo in range(0, self.row_bytes, _CRC_BLOCK):
            crc = zlib.crc32(np.ascontiguousarray(tile[lo:lo + _CRC_BLOCK]),
                             crc)
        if crc != self._crcs[pair]:
            raise ChecksumError(
                f"{self.path}: CRC mismatch in bitmap tile {pair}: "
                f"stored {self._crcs[pair]:#010x}, computed {crc:#010x}")
        self._verified.add(pair)

    def pair_id(self, dim: int, bin_: int) -> int:
        """Flat pair id of ``(dim, bin)`` (``offsets[dim] + bin``)."""
        if not 0 <= dim < self.n_dims or not 0 <= bin_ < self.nbins[dim]:
            raise DataError(
                f"(dim, bin) = ({dim}, {bin_}) outside the indexed grid")
        return int(self.offsets[dim]) + int(bin_)

    def pair_ids(self, dims: np.ndarray, bins: np.ndarray) -> np.ndarray:
        """Flat pair ids for matching ``(n, k)`` dim/bin matrices."""
        dims = np.asarray(dims, dtype=np.int64)
        bins = np.asarray(bins, dtype=np.int64)
        if dims.size and (int(dims.max()) >= self.n_dims
                          or int(dims.min()) < 0):
            raise DataError("unit table references dimensions beyond the "
                            "indexed grid")
        per_dim = np.asarray(self.nbins, dtype=np.int64)
        if dims.size and (bins < 0).any() or \
                dims.size and (bins >= per_dim[dims]).any():
            raise DataError("unit table references bins beyond the "
                            "indexed grid")
        return self.offsets[dims] + bins

    def bitmap(self, pair: int) -> np.ndarray:
        """The ``(row_bytes,)`` packed membership bitmap of one pair
        (a read-only view; disk tiles are CRC-verified on first touch)."""
        if not 0 <= pair < self.n_pairs:
            raise DataError(
                f"pair {pair} out of range for {self.n_pairs} bitmaps")
        if self._data is not None:
            return self._data[pair]
        self._verify_tile(pair)
        return self._map()[pair, :self.row_bytes]


def _read_index_header(path: Path):
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            raw = fh.read(_HEADER_CAP.size)
            if len(raw) < _HEADER.size:
                raise RecordFileError(f"{path}: truncated bitmap-index header")
            magic, version = struct.unpack_from("<4sH", raw)
            if magic != _MAGIC:
                raise RecordFileError(f"{path}: bad magic {magic!r}")
            if version == _VERSION:
                (_, _, _reserved, n_records, n_pairs, n_dims,
                 ghash) = _HEADER.unpack(raw[:_HEADER.size])
                cap_records = n_records
                header_size = _HEADER.size
            elif version == _VERSION_CAP:
                if len(raw) < _HEADER_CAP.size:
                    raise RecordFileError(
                        f"{path}: truncated bitmap-index header")
                (_, _, _reserved, n_records, n_pairs, n_dims, cap_records,
                 ghash) = _HEADER_CAP.unpack(raw)
                header_size = _HEADER_CAP.size
            else:
                raise RecordFileError(
                    f"{path}: unsupported bitmap-index version {version}")
            if n_records < 0 or n_dims <= 0 or n_pairs <= 0 \
                    or cap_records < n_records:
                raise RecordFileError(
                    f"{path}: bad shape ({n_records}, {n_pairs}, {n_dims}, "
                    f"capacity {cap_records})")
            fh.seek(header_size)
            table = fh.read(n_dims * _NBINS_ITEM.size)
            if len(table) != n_dims * _NBINS_ITEM.size:
                raise RecordFileError(f"{path}: truncated nbins table")
            nbins = tuple(int(v) for v in np.frombuffer(table, dtype="<i8"))
            if any(b <= 0 for b in nbins) or sum(nbins) != n_pairs:
                raise RecordFileError(
                    f"{path}: nbins table {nbins} does not sum to "
                    f"{n_pairs} pairs")
            cap_row_bytes = -(-cap_records // 8)
            data_nbytes = n_pairs * cap_row_bytes
            expected = (header_size + n_dims * _NBINS_ITEM.size
                        + data_nbytes + n_pairs * _CRC_ITEM.size)
            if size != expected:
                raise RecordFileError(
                    f"{path}: file is {size} bytes, header implies {expected}")
            fh.seek(expected - n_pairs * _CRC_ITEM.size)
            footer = fh.read(n_pairs * _CRC_ITEM.size)
            if len(footer) != n_pairs * _CRC_ITEM.size:
                raise RecordFileError(f"{path}: truncated CRC table")
            crcs = tuple(int(v) for v in np.frombuffer(footer, dtype="<u4"))
    except RecordFileError:
        raise
    except OSError as exc:
        raise RecordFileError(
            f"cannot open bitmap index {path}: {exc}") from exc
    data_offset = header_size + n_dims * _NBINS_ITEM.size
    return n_records, nbins, ghash, data_offset, crcs, cap_row_bytes


def _aligned_chunk(chunk_records: int) -> int:
    """Largest multiple of 8 not above ``chunk_records`` (min 8), so
    every non-final build chunk starts on a byte boundary of the
    bitmaps (``np.packbits`` pads only the final byte of the range)."""
    if chunk_records <= 0:
        raise DataError(
            f"chunk_records must be positive, got {chunk_records}")
    return max(8, chunk_records - (chunk_records % 8))


def _binned_blocks(binned: BinnedStore, chunk_records: int,
                   retry: RetryPolicy | None,
                   fault_state) -> Iterator[tuple[int, np.ndarray]]:
    """``(offset, (n_dims, rows))`` blocks from the staged bin store —
    the resilient-read pattern of its charged pass, minus the charging
    (index staging is free on the virtual clock)."""
    for index, lo in enumerate(range(0, binned.n_records, chunk_records)):
        hi = min(lo + chunk_records, binned.n_records)

        def attempt(lo: int = lo, hi: int = hi,
                    index: int = index) -> np.ndarray:
            if fault_state is not None:
                fault_state.on_chunk_read(index)
            return binned.read_columns(lo, hi)

        yield lo, read_with_retry(attempt, retry)


def build_bitmap_index(source: DataSource | None, grid: Grid,
                       chunk_records: int, start: int = 0,
                       stop: int | None = None, *,
                       binned: BinnedStore | None = None,
                       path: str | os.PathLike | None = None,
                       retry: RetryPolicy | None = None,
                       fault_state=None,
                       grid_hash: bytes | None = None) -> BitmapIndex:
    """One staging pass: pack every (dim, bin) membership bitmap for the
    rank's ``[start, stop)`` block, resident (``path`` None) or into the
    on-disk tile format (atomic temp + rename publish).

    The pass prefers the staged bin-index store (``binned``) — compact
    columns, no re-locating — and falls back to streaming the float
    ``source`` through ``grid.locate_records`` when no store was staged
    (``bin_cache="off"``).

    ``grid_hash`` overrides the fingerprint stamped into the index (the
    streaming engine stamps :func:`~repro.io.binned.edges_fingerprint`
    so tiles stay valid across threshold-only grid changes); the
    default is the strict :func:`~repro.io.binned.grid_fingerprint`.
    """
    nbins = _grid_nbins(grid)
    if max(nbins, default=1) > 256:
        raise DataError(
            f"grid has {max(nbins)} bins in one dimension; unit tables "
            f"hold byte bins, so the bitmap index supports at most 256")
    if binned is not None:
        n = binned.n_records
        if binned.n_dims != grid.ndim:
            raise DataError(
                f"binned store has {binned.n_dims} dimensions, grid has "
                f"{grid.ndim}")
    else:
        if source is None:
            raise DataError("build_bitmap_index needs a source or a "
                            "binned store")
        stop = source.n_records if stop is None else stop
        if not 0 <= start <= stop <= source.n_records:
            raise DataError(
                f"range [{start}, {stop}) out of bounds for "
                f"{source.n_records} records")
        n = stop - start
    chunk = _aligned_chunk(chunk_records)
    n_pairs = sum(nbins)
    row_bytes = -(-n // 8)
    offsets = _pair_offsets(nbins)
    ghash = grid_fingerprint(grid) if grid_hash is None else bytes(grid_hash)

    def blocks() -> Iterator[tuple[int, np.ndarray]]:
        """(record offset, (n_dims, rows)) column blocks."""
        if binned is not None:
            yield from _binned_blocks(binned, chunk, retry, fault_state)
            return
        for offset, raw in _source_chunks(source, chunk, start, stop,
                                          retry, fault_state):
            yield offset, grid.locate_records(raw).T

    def fill(data: np.ndarray) -> None:
        for offset, cols in blocks():
            byte_lo = offset // 8
            for dim in range(grid.ndim):
                col = cols[dim]
                base = int(offsets[dim])
                # all of the dimension's bitmaps in one one-hot
                # comparison + one packbits (row-padded exactly like
                # the per-bin packbits it replaces)
                hits = col[None, :] == np.arange(
                    nbins[dim], dtype=np.int64)[:, None]
                packed = np.packbits(hits, axis=1)
                data[base:base + nbins[dim],
                     byte_lo:byte_lo + packed.shape[1]] = packed

    if path is None or n == 0:
        data = np.empty((n_pairs, row_bytes), dtype=np.uint8)
        fill(data)
        return BitmapIndex(data=data, nbins=nbins, n_records=n,
                           grid_hash=ghash)

    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    header = _HEADER.pack(_MAGIC, _VERSION, 0, n, n_pairs, grid.ndim, ghash)
    nbins_table = b"".join(_NBINS_ITEM.pack(b) for b in nbins)
    data_offset = _HEADER.size + len(nbins_table)
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(nbins_table)
            fh.truncate(data_offset + n_pairs * row_bytes)
        mm = np.memmap(tmp, mode="r+", dtype=np.uint8, offset=data_offset,
                       shape=(n_pairs, row_bytes))
        try:
            fill(mm)
            mm.flush()
            crcs = []
            for pair in range(n_pairs):
                crc = 0
                for lo in range(0, row_bytes, _CRC_BLOCK):
                    crc = zlib.crc32(
                        np.ascontiguousarray(mm[pair, lo:lo + _CRC_BLOCK]),
                        crc)
                crcs.append(crc)
        finally:
            del mm  # drop the mapping (and its descriptor) before publish
        with open(tmp, "ab") as fh:
            for crc in crcs:
                fh.write(_CRC_ITEM.pack(crc))
        os.replace(tmp, path)
    except BaseException:
        # a failed staging pass (e.g. injected read faults exhausting
        # the retry budget) must not leave a half-written temp behind
        _unlink_quiet(str(tmp))
        raise
    return BitmapIndex.open(path)


def _membership_bits(grid: Grid, records: np.ndarray,
                     nbins: tuple[int, ...]) -> np.ndarray:
    """``(n_pairs, m)`` membership booleans of ``m`` new records — the
    unpacked form of the tile bits an append splices on."""
    cols = grid.locate_records(records).T
    offsets = _pair_offsets(nbins)
    hits = np.empty((sum(nbins), records.shape[0]), dtype=bool)
    for dim in range(len(nbins)):
        base = int(offsets[dim])
        hits[base:base + nbins[dim]] = (
            cols[dim][None, :]
            == np.arange(nbins[dim], dtype=np.int64)[:, None])
    return hits


def _splice_bits(last_bytes: np.ndarray | None, live: int,
                 hits: np.ndarray) -> np.ndarray:
    """Pack ``hits`` onto tiles whose final byte holds ``live`` ragged
    bits (``last_bytes``, one column).  Returns the packed bytes that
    replace each tile from byte ``n_old // 8`` on — bit-identical to
    what one ``np.packbits`` over the full record range produces for
    that byte range."""
    if live:
        tail = np.unpackbits(last_bytes, axis=1)[:, :live]
        glue = np.concatenate([tail, hits], axis=1)
    else:
        glue = hits
    return np.packbits(glue, axis=1)


def _tile_crc(*parts: np.ndarray) -> int:
    crc = 0
    for part in parts:
        for lo in range(0, part.shape[0], _CRC_BLOCK):
            crc = zlib.crc32(np.ascontiguousarray(part[lo:lo + _CRC_BLOCK]),
                             crc)
    return crc


def _check_append_args(index: BitmapIndex, grid: Grid,
                       records: np.ndarray) -> np.ndarray:
    records = np.ascontiguousarray(np.asarray(records, dtype=np.float64))
    if records.ndim != 2 or records.shape[1] != grid.ndim:
        raise DataError(
            f"append records shape {records.shape} does not match "
            f"{grid.ndim}-dimensional grid")
    if index.nbins != _grid_nbins(grid):
        raise DataError(
            "bitmap index bin structure does not match the grid; "
            "rebuild instead of appending")
    return records


def append_bitmap_tiles(index: BitmapIndex, grid: Grid,
                        records: np.ndarray) -> BitmapIndex:
    """A new *resident* index covering ``index``'s records plus
    ``records``, reusing every already-packed byte — only the new
    records (and the ragged final byte of each tile) are re-packed.
    Bit-identical to rebuilding over the concatenated records."""
    if not index.resident:
        raise DataError("append_bitmap_tiles needs a resident index; "
                        "use append_bitmap_index for on-disk tiles")
    records = _check_append_args(index, grid, records)
    m = records.shape[0]
    if m == 0:
        return index
    hits = _membership_bits(grid, records, index.nbins)
    n_old = index.n_records
    live = n_old % 8
    data = index._data
    packed = _splice_bits(data[:, -1:] if live else None, live, hits)
    new_data = np.concatenate([data[:, :n_old // 8], packed], axis=1)
    return BitmapIndex(data=new_data, nbins=index.nbins,
                       n_records=n_old + m, grid_hash=index.grid_hash)


def invalidate_bitmap_cache(path: str | os.PathLike) -> bool:
    """Zero the grid fingerprint of an on-disk index **in place** (and
    flush it to disk), so every loader treats the file as stale until a
    completed append restores a real fingerprint.

    This is the first, durable step of the in-place append protocol:
    once the zeroed header hits disk, a crash at *any* later point —
    half-written tiles, missing CRCs, an un-updated record count —
    leaves a file that :func:`load_bitmap_cache` and
    :meth:`BitmapIndex.open` refuse to serve.  Returns ``False`` when
    no file exists (nothing to invalidate)."""
    path = Path(path)
    if not path.exists():
        return False
    with open(path, "r+b") as fh:
        raw = fh.read(struct.calcsize("<4sH"))
        if len(raw) < struct.calcsize("<4sH"):
            raise RecordFileError(f"{path}: truncated bitmap-index header")
        magic, version = struct.unpack("<4sH", raw)
        if magic != _MAGIC:
            raise RecordFileError(f"{path}: bad magic {magic!r}")
        header = _HEADER if version == _VERSION else _HEADER_CAP
        fh.seek(header.size - len(_NULL_HASH))
        fh.write(_NULL_HASH)
        fh.flush()
        os.fsync(fh.fileno())
    return True


def _write_appended_tiles(path: Path, data_offset: int, n_pairs: int,
                          cap_row_bytes: int, floor_bytes: int,
                          packed: np.ndarray) -> None:
    """Step 2 of the in-place append: splice the new bytes onto every
    tile (bytes ``>= floor_bytes``; earlier bytes are never touched)."""
    mm = np.memmap(path, mode="r+", dtype=np.uint8, offset=data_offset,
                   shape=(n_pairs, cap_row_bytes))
    try:
        mm[:, floor_bytes:floor_bytes + packed.shape[1]] = packed
        mm.flush()
    finally:
        del mm


def _finalize_append(path: Path, nbins: tuple[int, ...], n_records: int,
                     cap_records: int, ghash: bytes, crcs: list[int],
                     data_offset: int, cap_row_bytes: int) -> None:
    """Steps 3-4 of the in-place append: durable CRC footer, then the
    header with the new record count and the *restored* fingerprint —
    the commit point of the whole append."""
    n_pairs = sum(nbins)
    with open(path, "r+b") as fh:
        fh.seek(data_offset + n_pairs * cap_row_bytes)
        fh.write(b"".join(_CRC_ITEM.pack(crc) for crc in crcs))
        fh.flush()
        os.fsync(fh.fileno())
        fh.seek(0)
        fh.write(_HEADER_CAP.pack(_MAGIC, _VERSION_CAP, 0, n_records,
                                  n_pairs, len(nbins), cap_records, ghash))
        fh.flush()
        os.fsync(fh.fileno())


def _write_capacity_file(path: Path, nbins: tuple[int, ...],
                         n_records: int, cap_records: int, ghash: bytes,
                         rows: np.ndarray) -> None:
    """Write a complete version-2 file (tiles padded to capacity) via
    atomic temp + rename — the upgrade/overflow path of an append."""
    n_pairs = sum(nbins)
    cap_row_bytes = -(-cap_records // 8)
    row_bytes = -(-n_records // 8)
    tmp = path.with_suffix(path.suffix + ".tmp")
    data_offset = _HEADER_CAP.size + len(nbins) * _NBINS_ITEM.size
    try:
        with open(tmp, "wb") as fh:
            fh.write(_HEADER_CAP.pack(_MAGIC, _VERSION_CAP, 0, n_records,
                                      n_pairs, len(nbins), cap_records,
                                      ghash))
            fh.write(b"".join(_NBINS_ITEM.pack(b) for b in nbins))
            fh.truncate(data_offset + n_pairs * cap_row_bytes)
        if row_bytes:
            mm = np.memmap(tmp, mode="r+", dtype=np.uint8,
                           offset=data_offset,
                           shape=(n_pairs, cap_row_bytes))
            try:
                mm[:, :row_bytes] = rows
                mm.flush()
            finally:
                del mm
        with open(tmp, "ab") as fh:
            for pair in range(n_pairs):
                fh.write(_CRC_ITEM.pack(_tile_crc(rows[pair])))
        os.replace(tmp, path)
    except BaseException:
        _unlink_quiet(str(tmp))
        raise


def append_bitmap_index(path: str | os.PathLike, grid: Grid,
                        records: np.ndarray, *,
                        grid_hash: bytes | None = None) -> BitmapIndex:
    """Append ``records`` to an on-disk index **in place**.

    Version-2 files with spare tile capacity are extended without
    moving a byte of existing tiles, under the crash-safe protocol
    (invalidate fingerprint → splice tiles → CRC footer → restore
    fingerprint + record count); existing tile bytes are CRC-verified
    before their checksums are extended, so latent corruption is
    surfaced (:class:`~repro.errors.ChecksumError`) rather than
    laundered into fresh CRCs.  Version-1 files, and appends past the
    reserved capacity, are rewritten as version 2 with doubled headroom
    through an atomic temp + rename (no invalidation window at all).

    ``grid_hash`` is the fingerprint stamped (and expected) on the
    file, defaulting to the strict :func:`grid_fingerprint`; a file
    carrying any *other* fingerprint — including the zeroed one left by
    a crashed append — is rejected as stale rather than appended to.
    """
    path = Path(path)
    ghash = grid_fingerprint(grid) if grid_hash is None else bytes(grid_hash)
    index = BitmapIndex.open(path, expected_grid_hash=ghash)
    records = _check_append_args(index, grid, records)
    m = records.shape[0]
    if m == 0:
        return index
    n_old = index.n_records
    total = n_old + m
    hits = _membership_bits(grid, records, index.nbins)
    live = n_old % 8
    floor_bytes = n_old // 8
    new_row_bytes = -(-total // 8)
    mapped = index._map()
    for pair in range(index.n_pairs):
        index._verify_tile(pair)
    packed = _splice_bits(mapped[:, floor_bytes:floor_bytes + 1]
                          if live else None, live, hits)
    is_v2 = index._data_offset != _HEADER.size + index.n_dims * _NBINS_ITEM.size
    if not is_v2 or new_row_bytes > index._cap_row_bytes:
        # upgrade / overflow: rebuild with doubled headroom, atomically
        rows = np.concatenate([mapped[:, :floor_bytes], packed], axis=1)
        cap_records = max(64, ((2 * total + 7) // 8) * 8)
        del mapped
        index._mmap = None
        _write_capacity_file(path, index.nbins, total, cap_records, ghash,
                             rows)
        return BitmapIndex.open(path, expected_grid_hash=ghash)
    crcs = [_tile_crc(mapped[pair, :floor_bytes], packed[pair])
            for pair in range(index.n_pairs)]
    cap_records = index._cap_row_bytes * 8
    data_offset = index._data_offset
    cap_row_bytes = index._cap_row_bytes
    nbins = index.nbins
    n_pairs = index.n_pairs
    del mapped
    index._mmap = None
    invalidate_bitmap_cache(path)
    _write_appended_tiles(path, data_offset, n_pairs, cap_row_bytes,
                          floor_bytes, packed)
    _finalize_append(path, nbins, total, cap_records, ghash, crcs,
                     data_offset, cap_row_bytes)
    return BitmapIndex.open(path, expected_grid_hash=ghash)


def load_bitmap_cache(path: str | os.PathLike, grid: Grid,
                      n_records: int,
                      grid_hash: bytes | None = None) -> BitmapIndex | None:
    """Reopen an on-disk bitmap-index cache, or ``None`` when it is
    missing, malformed, or stale — anything not built from exactly this
    grid over exactly this record range is rebuilt, never trusted.
    ``grid_hash`` overrides the expected fingerprint (see
    :func:`build_bitmap_index`); either way a file whose fingerprint was
    zeroed by an in-flight (crashed) append is rejected here."""
    path = Path(path)
    if not path.exists():
        return None
    expected = grid_fingerprint(grid) if grid_hash is None else grid_hash
    try:
        index = BitmapIndex.open(path, expected_grid_hash=expected)
    except RecordFileError:
        return None
    if index.n_records != n_records or index.nbins != _grid_nbins(grid):
        return None
    return index


def stage_bitmap_index(source: DataSource | None, comm: Comm, grid: Grid,
                       chunk_records: int, start: int = 0,
                       stop: int | None = None, *, policy: str = "auto",
                       budget: int = DEFAULT_BITMAP_BUDGET,
                       binned: BinnedStore | None = None,
                       retry: RetryPolicy | None = None
                       ) -> BitmapIndex | None:
    """Stage this rank's bitmap index under a ``bitmap_index`` policy.

    ``"auto"`` keeps the index resident when it fits ``budget`` bytes
    and spills to the mmap tile format otherwise; ``"resident"`` forces
    RAM regardless of the budget; ``"mmap"`` always writes the on-disk
    format — next to the rank's staged record file when the source is
    one (reusing a still-valid cache from an earlier run), otherwise
    into an anonymous temp file removed with the index; ``"off"``
    returns ``None`` (the streaming engines run instead).  Staging
    charges nothing to the virtual clock, like shared-to-local staging.
    """
    if policy == "off":
        return None
    if policy not in ("auto", "resident", "mmap"):
        raise DataError(f"unknown bitmap_index policy {policy!r}")
    if binned is not None:
        n = binned.n_records
    else:
        stop = (source.n_records if stop is None else stop)
        n = stop - start
    fault_state = getattr(comm, "fault_state", None)
    obs = getattr(comm, "obs", None)
    want_resident = policy == "resident" or (
        policy == "auto" and index_nbytes(grid, n) <= budget)
    if want_resident:
        index = build_bitmap_index(source, grid, chunk_records, start, stop,
                                   binned=binned, retry=retry,
                                   fault_state=fault_state)
    elif isinstance(source, RecordFile):
        path = bitmap_cache_path(source.path)
        index = load_bitmap_cache(path, grid, n)
        if index is None:
            index = build_bitmap_index(source, grid, chunk_records, start,
                                       stop, binned=binned, path=path,
                                       retry=retry, fault_state=fault_state)
    else:
        fd, tmpname = tempfile.mkstemp(prefix="pmafia-rank-", suffix=".bmx")
        os.close(fd)
        index = build_bitmap_index(source, grid, chunk_records, start, stop,
                                   binned=binned, path=tmpname, retry=retry,
                                   fault_state=fault_state)
        weakref.finalize(index, _unlink_quiet, tmpname)
    if obs is not None:
        obs.bitmap_index_built(index.n_pairs, index.nbytes, index.resident)
    return index
