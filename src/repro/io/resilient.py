"""Bounded retry with exponential backoff for chunk reads.

pMAFIA re-reads all N records from local disk at every level, so a
single transient I/O hiccup (NFS blip, overloaded disk, injected fault)
at level k must not throw away the levels already computed.
:func:`read_with_retry` re-attempts a read under a :class:`RetryPolicy`;
the sleep function is injectable so tests assert the exact backoff
schedule without real sleeps.

Deterministic failures are never retried: any ``OSError`` that is also
a :class:`~repro.errors.ReproError` — a bad header
(:class:`~repro.errors.RecordFileError`) or on-disk corruption
(:class:`~repro.errors.ChecksumError`) — propagates on the first
attempt, because re-reading rotten bytes cannot fix them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

from ..errors import ParameterError, ReproError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry knobs for one class of transient failure.

    ``max_attempts`` counts the first try; ``base_delay`` seconds are
    slept before the first retry, multiplied by ``multiplier`` each
    further retry and capped at ``max_delay``.  ``sleep`` is the clock
    to wait on — inject a recorder in tests (it must be picklable, e.g.
    a module-level function, to cross the process backend).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    sleep: Callable[[float], None] = field(default=time.sleep, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ParameterError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ParameterError(
                f"multiplier must be >= 1, got {self.multiplier}")

    def delays(self) -> Iterator[float]:
        """The backoff schedule: one delay per allowed retry."""
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier


#: policy used when callers do not pass one
DEFAULT_RETRY = RetryPolicy()


def read_with_retry(read: Callable[[], T],
                    policy: RetryPolicy | None = None,
                    on_retry: Callable[[], None] | None = None) -> T:
    """Call ``read()`` until it succeeds or the retry budget runs out.

    Transient ``OSError`` s are retried with backoff; structural
    failures (any :class:`~repro.errors.ReproError`, even OSError-based
    ones) and non-OSError exceptions propagate immediately.  The final
    failed attempt re-raises the last ``OSError``.

    ``on_retry`` is invoked once per absorbed transient failure, before
    the backoff sleep — the observability layer counts retries through
    it (``io.read_retries``) without this module knowing about
    communicators or registries.  The exhausted final failure is not
    reported: it propagates as an error, not a retry.
    """
    policy = DEFAULT_RETRY if policy is None else policy
    delays = list(policy.delays())
    for attempt in range(policy.max_attempts):
        try:
            return read()
        except OSError as exc:
            if isinstance(exc, ReproError):
                raise
            if attempt == policy.max_attempts - 1:
                raise
            if on_retry is not None:
                on_retry()
            policy.sleep(delays[attempt])
    raise AssertionError("unreachable")  # pragma: no cover
