"""Staged bin-index store: the binned-pass engine's data layer.

Every population pass after grid construction needs only each record's
*bin index* per dimension — re-reading the float64 records and redoing
``grid.locate_records`` (one ``searchsorted`` per column) on all k level
passes is pure redundancy.  A :class:`BinnedStore` is the one-time
compact encoding that removes it: immediately after the adaptive grid is
fixed, one pass converts the rank's local records to per-dimension bin
indices packed as ``uint8``/``uint16`` columns (8-16x smaller than the
float records), held in memory or written as a CRC-footered on-disk
format alongside record-file v2.  Level passes then stream the store and
skip ``locate_records`` entirely (see ``repro.core.population``).

On-disk format (version 1)::

    header  <4sHHqq32s>  magic b"PMBS" | u16 version | u16 dtype code
                         (1 = uint8, 2 = uint16) | i64 n_records |
                         i64 n_dims | 32-byte grid fingerprint
    data    column-major: dimension 0's n_records indices, then
            dimension 1's, ... (contiguous columns are what the
            population engine consumes)
    footer  one CRC32 per dimension column

The grid fingerprint (:func:`grid_fingerprint`, SHA-256 over the exact
bin edges, thresholds and uniform flags) is the cache-invalidation rule:
a store is only valid for the grid it was built from, so
:func:`load_binned_cache` silently rejects — and the driver rebuilds —
any on-disk store whose fingerprint does not match the current run's
grid (e.g. after the data or the α/β knobs changed).  Column CRCs are
verified lazily on first access and raise
:class:`~repro.errors.ChecksumError` on silent bit rot, like record
files.

Cost-model note: the simulated-time backend charges binned chunk reads
at *float64 width* (:data:`RECORD_ITEMSIZE`) — the virtual SP2 models
the paper's implementation, which re-read 8-byte records on every pass.
Wall clock drops; virtual runtimes stay faithful (and bit-identical to
the float path).  The staging pass itself charges nothing, like
shared-to-local staging (§5.2 excludes it from measurements).
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
import weakref
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import ChecksumError, DataError, RecordFileError
from ..parallel.comm import Comm
from ..types import Grid
from .chunks import DataSource
from .prefetch import prefetched
from .records import RecordFile
from .resilient import RetryPolicy, read_with_retry

_MAGIC = b"PMBS"
_VERSION = 1
_HEADER = struct.Struct("<4sHHqq32s")
_CRC_ITEM = struct.Struct("<I")
_DTYPES = {1: np.dtype(np.uint8), 2: np.dtype(np.uint16)}
_DTYPE_CODES = {v: k for k, v in _DTYPES.items()}

#: bytes a chunk read is charged per record cell on the virtual clock —
#: float64 width, so the simulated machine keeps paying the paper's
#: per-pass record-read cost whatever the store's physical dtype is
RECORD_ITEMSIZE = 8

_CRC_BLOCK = 1 << 20


def grid_fingerprint(grid: Grid) -> bytes:
    """32-byte SHA-256 fingerprint of a grid's exact geometry.

    Covers dimension count and, per dimension, the bin edges, density
    thresholds and the uniform-resplit flag — everything the bin-index
    mapping depends on.  Two grids share a fingerprint iff a binned
    store built under one is valid under the other.
    """
    h = hashlib.sha256()
    h.update(struct.pack("<q", grid.ndim))
    for dg in grid:
        h.update(struct.pack("<qq?", dg.dim, dg.nbins, dg.uniform))
        h.update(np.asarray(dg.edges, dtype="<f8").tobytes())
        h.update(np.asarray(dg.thresholds, dtype="<f8").tobytes())
    return h.digest()


def edges_fingerprint(grid: Grid) -> bytes:
    """32-byte SHA-256 fingerprint of a grid's *bin-edge geometry only*
    (dimension count, per-dimension edges) — deliberately excluding the
    density thresholds.

    Bin membership — hence every binned column and membership bitmap —
    depends only on the edges; thresholds merely classify counts as
    dense.  The streaming engine keys its per-segment bitmap tiles and
    count caches on this fingerprint so a grid whose thresholds moved
    (every ingest changes ``n_records``, scaling thresholds) but whose
    edges did not keeps all staged tiles valid.  Batch staging keeps
    using the stricter :func:`grid_fingerprint`.
    """
    h = hashlib.sha256()
    h.update(struct.pack("<q", grid.ndim))
    for dg in grid:
        h.update(struct.pack("<qq?", dg.dim, dg.nbins, dg.uniform))
        h.update(np.asarray(dg.edges, dtype="<f8").tobytes())
    return h.digest()


def store_dtype(grid: Grid) -> np.dtype:
    """Narrowest unsigned dtype that can hold every bin index."""
    widest = max((dg.nbins for dg in grid), default=1)
    if widest <= 256:
        return np.dtype(np.uint8)
    if widest <= 65536:
        return np.dtype(np.uint16)
    raise DataError(
        f"grid has {widest} bins in one dimension; the binned store "
        f"supports at most 65536")


def binned_cache_path(record_path: str | os.PathLike) -> Path:
    """The on-disk bin-index cache sitting alongside a record file."""
    record_path = Path(record_path)
    return record_path.with_suffix(".bins")


class BinnedStore:
    """Per-dimension bin-index columns for one rank's local records.

    Holds an ``(n_dims, n_records)`` column-major index matrix, either
    in memory or memory-mapped from the on-disk format.  Not a float
    :class:`~repro.io.chunks.DataSource` — consumers read *columns*
    (:meth:`read_columns`) because the population engine wants
    contiguous per-dimension slices.
    """

    def __init__(self, *, columns: np.ndarray | None = None,
                 path: Path | None = None,
                 grid_hash: bytes = b"") -> None:
        if (columns is None) == (path is None):
            raise DataError("BinnedStore needs exactly one of columns/path")
        self.grid_hash = bytes(grid_hash)
        self.path = path
        self._columns = columns
        self._mmap: np.ndarray | None = None
        self._verified: set[int] = set()
        self._crcs: tuple[int, ...] = ()
        if columns is not None:
            if columns.ndim != 2:
                raise DataError(
                    f"columns must be (n_dims, n_records), got {columns.shape}")
            self.n_dims = int(columns.shape[0])
            self.n_records = int(columns.shape[1])
            self.dtype = columns.dtype
            self._data_offset = 0
        else:
            (self.n_records, self.n_dims, self.dtype, self._data_offset,
             self.grid_hash, self._crcs) = _read_store_header(path)

    # -- construction -----------------------------------------------------
    @classmethod
    def in_memory(cls, columns: np.ndarray, grid_hash: bytes) -> "BinnedStore":
        """Wrap an already-built ``(n_dims, n_records)`` index matrix."""
        return cls(columns=np.ascontiguousarray(columns),
                   grid_hash=grid_hash)

    @classmethod
    def open(cls, path: str | os.PathLike,
             expected_grid_hash: bytes | None = None) -> "BinnedStore":
        """Open an on-disk store; with ``expected_grid_hash`` given, a
        fingerprint mismatch (stale cache) raises
        :class:`~repro.errors.RecordFileError`."""
        store = cls(path=Path(path))
        if (expected_grid_hash is not None
                and store.grid_hash != bytes(expected_grid_hash)):
            raise RecordFileError(
                f"{path}: binned store was built for a different grid "
                f"(stale cache; rebuild it)")
        return store

    # -- reads ------------------------------------------------------------
    def _map(self) -> np.ndarray:
        if self._columns is not None:
            return self._columns
        if self._mmap is None:
            self._mmap = np.memmap(self.path, mode="r", dtype=self.dtype,
                                   offset=self._data_offset,
                                   shape=(self.n_dims, self.n_records))
        return self._mmap

    def _verify_column(self, dim: int) -> None:
        if not self._crcs or dim in self._verified:
            return
        column = self._map()[dim]
        crc = 0
        for lo in range(0, self.n_records, _CRC_BLOCK):
            crc = zlib.crc32(
                np.ascontiguousarray(column[lo:lo + _CRC_BLOCK]), crc)
        if crc != self._crcs[dim]:
            raise ChecksumError(
                f"{self.path}: CRC mismatch in bin-index column {dim}: "
                f"stored {self._crcs[dim]:#010x}, computed {crc:#010x}")
        self._verified.add(dim)

    def read_columns(self, start: int, stop: int) -> np.ndarray:
        """The ``(n_dims, rows)`` index block for records ``[start, stop)``
        (a view for in-memory stores, a verified copy from disk)."""
        if not 0 <= start <= stop <= self.n_records:
            raise DataError(
                f"block [{start}, {stop}) out of range for "
                f"{self.n_records} records")
        if self._columns is not None:
            return self._columns[:, start:stop]
        for dim in range(self.n_dims):
            self._verify_column(dim)
        return np.array(self._map()[:, start:stop])

    def _raw_chunks(self, fault_state, chunk_records: int,
                    retry: RetryPolicy | None,
                    on_retry=None) -> Iterator[np.ndarray]:
        """Uncharged column-block reads — safe on a prefetch thread."""
        for index, lo in enumerate(range(0, self.n_records, chunk_records)):
            hi = min(lo + chunk_records, self.n_records)

            def attempt(lo: int = lo, hi: int = hi,
                        index: int = index) -> np.ndarray:
                if fault_state is not None:
                    fault_state.on_chunk_read(index)
                return self.read_columns(lo, hi)

            yield read_with_retry(attempt, retry, on_retry)

    def charged_chunks(self, comm: Comm, chunk_records: int,
                       retry: RetryPolicy | None = None,
                       prefetch: bool = False) -> Iterator[np.ndarray]:
        """Stream ``(n_dims, rows)`` column blocks while charging each
        read to the rank's virtual I/O clock at *float64 width*
        (:data:`RECORD_ITEMSIZE`), so simulated runtimes are identical
        to the float-record pass the virtual machine models.  The
        rank's fault state is consulted before every block read and
        transient failures retry under ``retry``, exactly like
        :func:`repro.io.chunks.charged_chunks`.  With ``prefetch`` the
        next block (including its lazy CRC verification) is read ahead
        on a background thread; charging stays on the consumer thread.
        """
        if chunk_records <= 0:
            raise DataError(
                f"chunk_records must be positive, got {chunk_records}")
        obs = getattr(comm, "obs", None)
        chunks = self._raw_chunks(getattr(comm, "fault_state", None),
                                  chunk_records, retry,
                                  obs.io_retry if obs is not None else None)
        if prefetch:
            chunks = prefetched(
                chunks, obs.prefetch_result if obs is not None else None)
        for cols in chunks:
            nbytes = cols.shape[1] * self.n_dims * RECORD_ITEMSIZE
            comm.charge_io(nbytes, chunks=1)
            if obs is not None:
                obs.io_chunk(cols.shape[1], nbytes, kind="binned")
            yield cols


def _read_store_header(path: Path):
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            raw = fh.read(_HEADER.size)
            if len(raw) < _HEADER.size:
                raise RecordFileError(f"{path}: truncated binned-store header")
            magic, version, dtype_code, n_records, n_dims, grid_hash = (
                _HEADER.unpack(raw))
            if magic != _MAGIC:
                raise RecordFileError(f"{path}: bad magic {magic!r}")
            if version != _VERSION:
                raise RecordFileError(
                    f"{path}: unsupported binned-store version {version}")
            if dtype_code not in _DTYPES:
                raise RecordFileError(
                    f"{path}: unknown dtype code {dtype_code}")
            if n_records < 0 or n_dims <= 0:
                raise RecordFileError(
                    f"{path}: bad shape ({n_records}, {n_dims})")
            dtype = _DTYPES[dtype_code]
            data_nbytes = n_records * n_dims * dtype.itemsize
            expected = _HEADER.size + data_nbytes + n_dims * _CRC_ITEM.size
            if size != expected:
                raise RecordFileError(
                    f"{path}: file is {size} bytes, header implies {expected}")
            fh.seek(_HEADER.size + data_nbytes)
            table = fh.read(n_dims * _CRC_ITEM.size)
            if len(table) != n_dims * _CRC_ITEM.size:
                raise RecordFileError(f"{path}: truncated CRC table")
            crcs = tuple(int(v) for v in np.frombuffer(table, dtype="<u4"))
    except RecordFileError:
        raise
    except OSError as exc:
        raise RecordFileError(
            f"cannot open binned store {path}: {exc}") from exc
    return n_records, n_dims, dtype, _HEADER.size, grid_hash, crcs


def _source_chunks(source: DataSource, chunk_records: int, start: int,
                   stop: int, retry: RetryPolicy | None,
                   fault_state) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(offset_from_start, chunk)`` pairs covering
    ``[start, stop)`` — the resilient-read pattern of
    :func:`repro.io.chunks.charged_chunks`, minus the charging (the
    staging pass is free on the virtual clock, like
    :func:`repro.io.staging.stage_local`)."""
    read_block = getattr(source, "read_block", None)
    if read_block is None:
        offset = 0
        for chunk in source.iter_chunks(chunk_records, start, stop):
            yield offset, chunk
            offset += chunk.shape[0]
        return
    for index, lo in enumerate(range(start, stop, chunk_records)):
        hi = min(lo + chunk_records, stop)

        def attempt(lo: int = lo, hi: int = hi,
                    index: int = index) -> np.ndarray:
            if fault_state is not None:
                fault_state.on_chunk_read(index)
            return read_block(lo, hi)

        yield lo - start, read_with_retry(attempt, retry)


def build_binned_store(source: DataSource, grid: Grid, chunk_records: int,
                       start: int = 0, stop: int | None = None, *,
                       path: str | os.PathLike | None = None,
                       retry: RetryPolicy | None = None,
                       fault_state=None) -> BinnedStore:
    """One staging pass: locate every record of ``[start, stop)`` once
    and pack the bin indices as compact columns, in memory (``path``
    None) or into the on-disk format (atomic temp + rename publish)."""
    stop = source.n_records if stop is None else stop
    if not 0 <= start <= stop <= source.n_records:
        raise DataError(
            f"range [{start}, {stop}) out of bounds for "
            f"{source.n_records} records")
    n = stop - start
    dtype = store_dtype(grid)
    ghash = grid_fingerprint(grid)
    chunks = _source_chunks(source, chunk_records, start, stop, retry,
                            fault_state)
    if path is None or n == 0:
        columns = np.empty((grid.ndim, n), dtype=dtype)
        for offset, chunk in chunks:
            block = grid.locate_records(chunk)
            columns[:, offset:offset + block.shape[0]] = block.T
        return BinnedStore.in_memory(columns, ghash)

    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    header = _HEADER.pack(_MAGIC, _VERSION, _DTYPE_CODES[dtype], n,
                          grid.ndim, ghash)
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.truncate(_HEADER.size + n * grid.ndim * dtype.itemsize)
        mm = np.memmap(tmp, mode="r+", dtype=dtype, offset=_HEADER.size,
                       shape=(grid.ndim, n))
        try:
            for offset, chunk in chunks:
                block = grid.locate_records(chunk)
                mm[:, offset:offset + block.shape[0]] = block.T
            mm.flush()
            crcs = []
            for dim in range(grid.ndim):
                crc = 0
                for lo in range(0, n, _CRC_BLOCK):
                    crc = zlib.crc32(
                        np.ascontiguousarray(mm[dim, lo:lo + _CRC_BLOCK]),
                        crc)
                crcs.append(crc)
        finally:
            del mm  # drop the mapping (and its descriptor) before publish
        with open(tmp, "ab") as fh:
            for crc in crcs:
                fh.write(_CRC_ITEM.pack(crc))
        os.replace(tmp, path)
    except BaseException:
        # a failed staging pass (e.g. injected read faults exhausting the
        # retry budget) must not leave a half-written temp file behind
        _unlink_quiet(str(tmp))
        raise
    return BinnedStore.open(path)


def load_binned_cache(path: str | os.PathLike, grid: Grid,
                      n_records: int) -> BinnedStore | None:
    """Reopen an on-disk bin-index cache, or ``None`` when it is
    missing, malformed, or stale — the fingerprint/shape checks are the
    cache-invalidation rule: anything not built from exactly this grid
    over exactly this record range is rebuilt, never trusted."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        store = BinnedStore.open(path, expected_grid_hash=grid_fingerprint(grid))
    except RecordFileError:
        return None
    if store.n_records != n_records or store.n_dims != grid.ndim:
        return None
    return store


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def stage_binned(source: DataSource, comm: Comm, grid: Grid,
                 chunk_records: int, start: int = 0,
                 stop: int | None = None, *, policy: str = "memory",
                 retry: RetryPolicy | None = None) -> BinnedStore | None:
    """Stage this rank's bin-index store under a ``bin_cache`` policy.

    ``"memory"`` builds the compact columns in RAM (n x d bytes, 8-16x
    below the float records); ``"disk"`` writes the on-disk format —
    next to the rank's staged record file when the source is one
    (reusing a still-valid cache from an earlier run), otherwise into
    an anonymous temp file removed with the store; ``"off"`` returns
    ``None`` (the float path).  The staging pass charges nothing to the
    virtual clock.
    """
    if policy == "off":
        return None
    if policy not in ("memory", "disk"):
        raise DataError(f"unknown bin_cache policy {policy!r}")
    stop = source.n_records if stop is None else stop
    fault_state = getattr(comm, "fault_state", None)
    if policy == "memory":
        return build_binned_store(source, grid, chunk_records, start, stop,
                                  retry=retry, fault_state=fault_state)
    if isinstance(source, RecordFile):
        path = binned_cache_path(source.path)
        cached = load_binned_cache(path, grid, stop - start)
        if cached is not None:
            return cached
        return build_binned_store(source, grid, chunk_records, start, stop,
                                  path=path, retry=retry,
                                  fault_state=fault_state)
    fd, tmpname = tempfile.mkstemp(prefix="pmafia-rank-", suffix=".bins")
    os.close(fd)
    store = build_binned_store(source, grid, chunk_records, start, stop,
                               path=tmpname, retry=retry,
                               fault_state=fault_state)
    weakref.finalize(store, _unlink_quiet, tmpname)
    return store
