"""Binary record files.

pMAFIA is "a disk-based parallel and scalable algorithm" (§4): each
processor stages its share of the data onto local disk and re-reads it in
chunks of ``B`` records on every pass.  :class:`RecordFile` is that
on-disk format — a tiny self-describing header followed by C-order raw
records — readable via memmap so chunked passes never materialise the
whole data set.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import DataError, RecordFileError

_MAGIC = b"PMAF"
_VERSION = 1
#: header: magic, version, dtype code, n_records, n_dims
_HEADER = struct.Struct("<4sHHqq")
_DTYPES = {0: np.dtype("<f4"), 1: np.dtype("<f8")}
_DTYPE_CODES = {v: k for k, v in _DTYPES.items()}


@dataclass(frozen=True)
class RecordFileInfo:
    """Metadata decoded from a record file header."""

    path: Path
    n_records: int
    n_dims: int
    dtype: np.dtype

    @property
    def record_nbyteses(self) -> int:
        return self.n_dims * self.dtype.itemsize

    @property
    def data_nbytes(self) -> int:
        return self.n_records * self.n_dims * self.dtype.itemsize


class RecordFile:
    """A read-only handle on one binary record file."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.info = read_header(self.path)

    @property
    def n_records(self) -> int:
        return self.info.n_records

    @property
    def n_dims(self) -> int:
        return self.info.n_dims

    @property
    def dtype(self) -> np.dtype:
        return self.info.dtype

    def memmap(self) -> np.ndarray:
        """Memory-map the records as an ``(n_records, n_dims)`` array."""
        return np.memmap(self.path, mode="r", dtype=self.dtype,
                         offset=_HEADER.size,
                         shape=(self.n_records, self.n_dims))

    def read_block(self, start: int, stop: int) -> np.ndarray:
        """Read records ``[start, stop)`` into a fresh in-memory array."""
        if not 0 <= start <= stop <= self.n_records:
            raise DataError(
                f"block [{start}, {stop}) out of range for {self.n_records} records")
        return np.array(self.memmap()[start:stop], copy=True)

    def read_all(self) -> np.ndarray:
        """Read the whole file into memory."""
        return self.read_block(0, self.n_records)

    def iter_chunks(self, chunk_records: int,
                    start: int = 0, stop: int | None = None
                    ) -> Iterator[np.ndarray]:
        """Yield in-memory blocks of at most ``chunk_records`` records
        covering ``[start, stop)`` — the out-of-core pass of Algorithm 2."""
        if chunk_records <= 0:
            raise DataError(f"chunk_records must be positive, got {chunk_records}")
        stop = self.n_records if stop is None else stop
        if not 0 <= start <= stop <= self.n_records:
            raise DataError(
                f"range [{start}, {stop}) out of bounds for {self.n_records} records")
        for lo in range(start, stop, chunk_records):
            yield self.read_block(lo, min(lo + chunk_records, stop))


class RecordFileWriter:
    """Incremental record-file writer for data too large to build in
    memory.  Append ``(n, d)`` blocks, then ``close()`` (or use as a
    context manager) to finalise the header.

    >>> with RecordFileWriter(path, n_dims=8) as w:
    ...     for block in blocks:
    ...         w.append(block)
    """

    def __init__(self, path: str | os.PathLike, n_dims: int,
                 dtype: str = "<f8") -> None:
        if n_dims <= 0:
            raise DataError(f"n_dims must be positive, got {n_dims}")
        self.path = Path(path)
        self.n_dims = n_dims
        self.dtype = np.dtype(dtype)
        if self.dtype not in _DTYPE_CODES:
            raise DataError(f"unsupported dtype {dtype!r}")
        self._n_records = 0
        self._tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self._fh = open(self._tmp, "wb")
        # placeholder header, patched on close
        self._fh.write(_HEADER.pack(_MAGIC, _VERSION,
                                    _DTYPE_CODES[self.dtype], 0, n_dims))

    @property
    def n_records(self) -> int:
        return self._n_records

    def append(self, block: np.ndarray) -> None:
        """Append a block of records (converted to the file dtype)."""
        if self._fh is None:
            raise RecordFileError(f"{self.path}: writer already closed")
        block = np.asarray(block)
        if block.ndim != 2 or block.shape[1] != self.n_dims:
            raise DataError(
                f"block shape {block.shape} does not match {self.n_dims} dims")
        if not np.isfinite(block).all():
            raise DataError("block contains NaN or infinite values")
        self._fh.write(np.ascontiguousarray(
            block.astype(self.dtype)).tobytes(order="C"))
        self._n_records += block.shape[0]

    def close(self) -> RecordFile:
        """Finalise the header and atomically publish the file."""
        if self._fh is None:
            return RecordFile(self.path)
        self._fh.seek(0)
        self._fh.write(_HEADER.pack(_MAGIC, _VERSION,
                                    _DTYPE_CODES[self.dtype],
                                    self._n_records, self.n_dims))
        self._fh.close()
        self._fh = None
        os.replace(self._tmp, self.path)
        return RecordFile(self.path)

    def abort(self) -> None:
        """Discard everything written so far."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._tmp.unlink(missing_ok=True)

    def __enter__(self) -> "RecordFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_records(path: str | os.PathLike, records: np.ndarray) -> RecordFile:
    """Write an ``(n, d)`` float array as a record file and return a
    handle on it.  float32/float64 inputs keep their precision; anything
    else is converted to float64."""
    records = np.asarray(records)
    if records.ndim != 2:
        raise DataError(f"records must be 2-D, got shape {records.shape}")
    if records.dtype not in (np.dtype("<f4"), np.dtype("<f8")):
        records = records.astype("<f8")
    records = np.ascontiguousarray(records)
    if not np.isfinite(records).all():
        raise DataError("records contain NaN or infinite values")
    path = Path(path)
    header = _HEADER.pack(_MAGIC, _VERSION, _DTYPE_CODES[records.dtype],
                          records.shape[0], records.shape[1])
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(records.tobytes(order="C"))
    os.replace(tmp, path)
    return RecordFile(path)


def read_header(path: str | os.PathLike) -> RecordFileInfo:
    """Decode and validate a record file's header."""
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            raw = fh.read(_HEADER.size)
    except OSError as exc:
        raise RecordFileError(f"cannot open record file {path}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise RecordFileError(f"{path}: truncated header")
    magic, version, dtype_code, n_records, n_dims = _HEADER.unpack(raw)
    if magic != _MAGIC:
        raise RecordFileError(f"{path}: bad magic {magic!r}")
    if version != _VERSION:
        raise RecordFileError(f"{path}: unsupported version {version}")
    if dtype_code not in _DTYPES:
        raise RecordFileError(f"{path}: unknown dtype code {dtype_code}")
    if n_records < 0 or n_dims <= 0:
        raise RecordFileError(f"{path}: bad shape ({n_records}, {n_dims})")
    dtype = _DTYPES[dtype_code]
    expected = _HEADER.size + n_records * n_dims * dtype.itemsize
    if size != expected:
        raise RecordFileError(
            f"{path}: file is {size} bytes, header implies {expected}")
    return RecordFileInfo(path=path, n_records=n_records, n_dims=n_dims,
                          dtype=dtype)
