"""Binary record files.

pMAFIA is "a disk-based parallel and scalable algorithm" (§4): each
processor stages its share of the data onto local disk and re-reads it in
chunks of ``B`` records on every pass.  :class:`RecordFile` is that
on-disk format — a tiny self-describing header followed by C-order raw
records — readable via memmap so chunked passes never materialise the
whole data set.

Two on-disk versions coexist (see ``docs/ROBUSTNESS.md``):

* **v1** — 24-byte header (magic, version, dtype, shape) + raw records.
* **v2** (default for new files) — 32-byte header that additionally
  records ``crc_chunk_records``, raw records, then a footer table with
  one CRC32 per chunk of that many records.  Reads verify the CRCs of
  the chunks they touch (cached per handle) and raise
  :class:`~repro.errors.ChecksumError` on the first mismatch — silent
  bit rot on a multi-hour disk-based run is not recoverable, so it must
  fail fast.  v1 files remain fully readable (no checksums, no
  verification).
"""

from __future__ import annotations

import os
import struct
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import ChecksumError, DataError, RecordFileError

_MAGIC = b"PMAF"
_V1 = 1
_V2 = 2
#: version written by default
_VERSION = _V2
#: v1 header: magic, version, dtype code, n_records, n_dims
_HEADER_V1 = struct.Struct("<4sHHqq")
#: v2 header: v1 fields + crc_chunk_records; CRC32 footer after the data
_HEADER_V2 = struct.Struct("<4sHHqqq")
_CRC_ITEM = struct.Struct("<I")
_DTYPES = {0: np.dtype("<f4"), 1: np.dtype("<f8")}
_DTYPE_CODES = {v: k for k, v in _DTYPES.items()}

#: records covered by one footer CRC32 in a v2 file
DEFAULT_CRC_CHUNK_RECORDS = 4096


def _crc_chunk_count(n_records: int, crc_chunk_records: int) -> int:
    if crc_chunk_records <= 0 or n_records <= 0:
        return 0
    return -(-n_records // crc_chunk_records)


@dataclass(frozen=True)
class RecordFileInfo:
    """Metadata decoded from a record file header."""

    path: Path
    n_records: int
    n_dims: int
    dtype: np.dtype
    version: int = _V1
    data_offset: int = _HEADER_V1.size
    #: records per footer CRC32 (0: no checksums, v1 file)
    crc_chunk_records: int = 0
    #: one CRC32 per chunk of ``crc_chunk_records`` records (v2 only)
    crcs: tuple[int, ...] = field(default=())

    @property
    def record_nbytes(self) -> int:
        return self.n_dims * self.dtype.itemsize

    @property
    def record_nbyteses(self) -> int:
        """Deprecated alias of :attr:`record_nbytes` (typo'd name kept
        for one release)."""
        warnings.warn("RecordFileInfo.record_nbyteses is deprecated; "
                      "use record_nbytes", DeprecationWarning, stacklevel=2)
        return self.record_nbytes

    @property
    def data_nbytes(self) -> int:
        return self.n_records * self.n_dims * self.dtype.itemsize

    @property
    def n_crc_chunks(self) -> int:
        return len(self.crcs)


class RecordFile:
    """A read-only handle on one binary record file."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.info = read_header(self.path)
        #: CRC chunks already verified through this handle
        self._verified: set[int] = set()
        self._mm: np.ndarray | None = None

    @property
    def n_records(self) -> int:
        return self.info.n_records

    @property
    def n_dims(self) -> int:
        return self.info.n_dims

    @property
    def dtype(self) -> np.dtype:
        return self.info.dtype

    def memmap(self) -> np.ndarray:
        """Memory-map the records as an ``(n_records, n_dims)`` array.

        The mapping is created once and cached on the handle: a chunked
        pass that verifies and reads every block reuses one mapping
        instead of opening the file anew per call, so a read that raises
        mid-pass (fault injection, corruption) never strands freshly
        opened descriptors.
        """
        if self._mm is None:
            self._mm = np.memmap(self.path, mode="r", dtype=self.dtype,
                                 offset=self.info.data_offset,
                                 shape=(self.n_records, self.n_dims))
        return self._mm

    def verify_chunk(self, index: int) -> None:
        """Check one CRC chunk against its stored checksum; raises
        :class:`~repro.errors.ChecksumError` on mismatch.  No-op for v1
        files and for chunks this handle already verified."""
        if index in self._verified or not self.info.crcs:
            return
        ccr = self.info.crc_chunk_records
        if not 0 <= index < self.info.n_crc_chunks:
            raise DataError(f"CRC chunk {index} out of range for "
                            f"{self.info.n_crc_chunks} chunks")
        lo = index * ccr
        hi = min(lo + ccr, self.n_records)
        raw = np.ascontiguousarray(self.memmap()[lo:hi])
        computed = zlib.crc32(raw.tobytes(order="C"))
        stored = self.info.crcs[index]
        if computed != stored:
            raise ChecksumError(
                f"{self.path}: CRC mismatch in chunk {index} (records "
                f"[{lo}, {hi})): stored {stored:#010x}, "
                f"computed {computed:#010x}")
        self._verified.add(index)

    def _verify_range(self, start: int, stop: int) -> None:
        ccr = self.info.crc_chunk_records
        if not self.info.crcs or stop <= start:
            return
        for index in range(start // ccr, (stop - 1) // ccr + 1):
            self.verify_chunk(index)

    def read_block(self, start: int, stop: int,
                   verify: bool | None = None) -> np.ndarray:
        """Read records ``[start, stop)`` into a fresh in-memory array.

        ``verify`` controls checksum validation of the touched CRC
        chunks: ``None`` (default) verifies when the file carries
        checksums, ``False`` skips, ``True`` insists (a no-op on v1
        files, which have none).
        """
        if not 0 <= start <= stop <= self.n_records:
            raise DataError(
                f"block [{start}, {stop}) out of range for {self.n_records} records")
        if verify or verify is None:
            self._verify_range(start, stop)
        return np.array(self.memmap()[start:stop], copy=True)

    def read_all(self) -> np.ndarray:
        """Read the whole file into memory."""
        return self.read_block(0, self.n_records)

    def iter_chunks(self, chunk_records: int,
                    start: int = 0, stop: int | None = None
                    ) -> Iterator[np.ndarray]:
        """Yield in-memory blocks of at most ``chunk_records`` records
        covering ``[start, stop)`` — the out-of-core pass of Algorithm 2."""
        if chunk_records <= 0:
            raise DataError(f"chunk_records must be positive, got {chunk_records}")
        stop = self.n_records if stop is None else stop
        if not 0 <= start <= stop <= self.n_records:
            raise DataError(
                f"range [{start}, {stop}) out of bounds for {self.n_records} records")
        for lo in range(start, stop, chunk_records):
            yield self.read_block(lo, min(lo + chunk_records, stop))


class _ChunkCrcs:
    """Incremental per-chunk CRC32 accumulator for streamed writes."""

    def __init__(self, chunk_nbytes: int) -> None:
        self.chunk_nbytes = chunk_nbytes
        self.crcs: list[int] = []
        self._current = 0
        self._fill = 0

    def feed(self, data: bytes) -> None:
        view = memoryview(data)
        while view:
            take = min(len(view), self.chunk_nbytes - self._fill)
            self._current = zlib.crc32(view[:take], self._current)
            self._fill += take
            view = view[take:]
            if self._fill == self.chunk_nbytes:
                self.crcs.append(self._current)
                self._current = 0
                self._fill = 0

    def finish(self) -> list[int]:
        if self._fill:
            self.crcs.append(self._current)
            self._current = 0
            self._fill = 0
        return self.crcs


class RecordFileWriter:
    """Incremental record-file writer for data too large to build in
    memory.  Append ``(n, d)`` blocks, then ``close()`` (or use as a
    context manager) to finalise the header.

    >>> with RecordFileWriter(path, n_dims=8) as w:
    ...     for block in blocks:
    ...         w.append(block)
    """

    def __init__(self, path: str | os.PathLike, n_dims: int,
                 dtype: str = "<f8", version: int = _VERSION,
                 crc_chunk_records: int = DEFAULT_CRC_CHUNK_RECORDS) -> None:
        if n_dims <= 0:
            raise DataError(f"n_dims must be positive, got {n_dims}")
        if version not in (_V1, _V2):
            raise DataError(f"unsupported record-file version {version}")
        self.path = Path(path)
        self.n_dims = n_dims
        self.dtype = np.dtype(dtype)
        if self.dtype not in _DTYPE_CODES:
            raise DataError(f"unsupported dtype {dtype!r}")
        self.version = version
        self._n_records = 0
        self._crcs: _ChunkCrcs | None = None
        self.crc_chunk_records = 0
        if version == _V2:
            if crc_chunk_records <= 0:
                raise DataError(f"crc_chunk_records must be positive, "
                                f"got {crc_chunk_records}")
            self.crc_chunk_records = crc_chunk_records
            self._crcs = _ChunkCrcs(
                crc_chunk_records * n_dims * self.dtype.itemsize)
        self._tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self._fh = open(self._tmp, "wb")
        try:
            # placeholder header, patched on close
            self._fh.write(self._header(0))
        except BaseException:
            # don't strand the descriptor or the temp file if the very
            # first write fails (full disk, injected fault)
            self.abort()
            raise

    def _header(self, n_records: int) -> bytes:
        if self.version == _V1:
            return _HEADER_V1.pack(_MAGIC, _V1, _DTYPE_CODES[self.dtype],
                                   n_records, self.n_dims)
        return _HEADER_V2.pack(_MAGIC, _V2, _DTYPE_CODES[self.dtype],
                               n_records, self.n_dims,
                               self.crc_chunk_records)

    @property
    def n_records(self) -> int:
        return self._n_records

    def append(self, block: np.ndarray) -> None:
        """Append a block of records (converted to the file dtype)."""
        if self._fh is None:
            raise RecordFileError(f"{self.path}: writer already closed")
        block = np.asarray(block)
        if block.ndim != 2 or block.shape[1] != self.n_dims:
            raise DataError(
                f"block shape {block.shape} does not match {self.n_dims} dims")
        if not np.isfinite(block).all():
            raise DataError("block contains NaN or infinite values")
        raw = np.ascontiguousarray(
            block.astype(self.dtype, copy=False)).tobytes(order="C")
        self._fh.write(raw)
        if self._crcs is not None:
            self._crcs.feed(raw)
        self._n_records += block.shape[0]

    def close(self) -> RecordFile:
        """Finalise the header and atomically publish the file."""
        if self._fh is None:
            return RecordFile(self.path)
        if self._crcs is not None:
            for crc in self._crcs.finish():
                self._fh.write(_CRC_ITEM.pack(crc))
        self._fh.seek(0)
        self._fh.write(self._header(self._n_records))
        self._fh.close()
        self._fh = None
        os.replace(self._tmp, self.path)
        return RecordFile(self.path)

    def abort(self) -> None:
        """Discard everything written so far."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._tmp.unlink(missing_ok=True)

    def __enter__(self) -> "RecordFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_records(path: str | os.PathLike, records: np.ndarray,
                  version: int = _VERSION,
                  crc_chunk_records: int = DEFAULT_CRC_CHUNK_RECORDS
                  ) -> RecordFile:
    """Write an ``(n, d)`` float array as a record file and return a
    handle on it.  float32/float64 inputs keep their precision; anything
    else is converted to float64.  New files are checksummed v2 by
    default; pass ``version=1`` for the legacy format."""
    records = np.asarray(records)
    if records.ndim != 2:
        raise DataError(f"records must be 2-D, got shape {records.shape}")
    if records.dtype not in (np.dtype("<f4"), np.dtype("<f8")):
        records = records.astype("<f8")
    records = np.ascontiguousarray(records)
    if not np.isfinite(records).all():
        raise DataError("records contain NaN or infinite values")
    with RecordFileWriter(path, n_dims=records.shape[1],
                          dtype=records.dtype, version=version,
                          crc_chunk_records=crc_chunk_records) as writer:
        writer.append(records)
    return RecordFile(path)


def read_header(path: str | os.PathLike) -> RecordFileInfo:
    """Decode and validate a record file's header (v1 or v2); for v2
    files the footer CRC table is loaded as well."""
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            raw = fh.read(_HEADER_V2.size)
            if len(raw) < _HEADER_V1.size:
                raise RecordFileError(f"{path}: truncated header")
            magic, version = struct.unpack_from("<4sH", raw)
            if magic != _MAGIC:
                raise RecordFileError(f"{path}: bad magic {magic!r}")
            crcs: tuple[int, ...] = ()
            if version == _V1:
                _, _, dtype_code, n_records, n_dims = _HEADER_V1.unpack(
                    raw[:_HEADER_V1.size])
                data_offset = _HEADER_V1.size
                crc_chunk_records = 0
            elif version == _V2:
                if len(raw) < _HEADER_V2.size:
                    raise RecordFileError(f"{path}: truncated header")
                (_, _, dtype_code, n_records, n_dims,
                 crc_chunk_records) = _HEADER_V2.unpack(raw)
                data_offset = _HEADER_V2.size
                if crc_chunk_records <= 0:
                    raise RecordFileError(
                        f"{path}: bad crc_chunk_records {crc_chunk_records}")
            else:
                raise RecordFileError(f"{path}: unsupported version {version}")
            if dtype_code not in _DTYPES:
                raise RecordFileError(f"{path}: unknown dtype code {dtype_code}")
            if n_records < 0 or n_dims <= 0:
                raise RecordFileError(f"{path}: bad shape ({n_records}, {n_dims})")
            dtype = _DTYPES[dtype_code]
            data_nbytes = n_records * n_dims * dtype.itemsize
            n_chunks = (_crc_chunk_count(n_records, crc_chunk_records)
                        if version == _V2 else 0)
            expected = data_offset + data_nbytes + n_chunks * _CRC_ITEM.size
            if size != expected:
                raise RecordFileError(
                    f"{path}: file is {size} bytes, header implies {expected}")
            if n_chunks:
                fh.seek(data_offset + data_nbytes)
                table = fh.read(n_chunks * _CRC_ITEM.size)
                if len(table) != n_chunks * _CRC_ITEM.size:
                    raise RecordFileError(f"{path}: truncated CRC table")
                crcs = tuple(
                    int(v) for v in np.frombuffer(table, dtype="<u4"))
    except RecordFileError:
        raise
    except OSError as exc:
        raise RecordFileError(f"cannot open record file {path}: {exc}") from exc
    return RecordFileInfo(path=path, n_records=n_records, n_dims=n_dims,
                          dtype=dtype, version=version,
                          data_offset=data_offset,
                          crc_chunk_records=crc_chunk_records, crcs=crcs)
