"""Block partitioning of N records over p processors.

Rank ``i`` owns the contiguous block ``[offsets[i], offsets[i+1])``;
blocks differ in size by at most one record, the classic near-equal
split ("each processor reads N/p data from its local disk", §4.1).
"""

from __future__ import annotations

from ..errors import ParameterError


def block_offsets(n_records: int, n_ranks: int) -> list[int]:
    """The ``n_ranks + 1`` fence-post offsets of the block partition."""
    if n_records < 0:
        raise ParameterError(f"n_records must be >= 0, got {n_records}")
    if n_ranks <= 0:
        raise ParameterError(f"n_ranks must be positive, got {n_ranks}")
    base, extra = divmod(n_records, n_ranks)
    offsets = [0]
    for r in range(n_ranks):
        offsets.append(offsets[-1] + base + (1 if r < extra else 0))
    return offsets


def block_range(n_records: int, n_ranks: int, rank: int) -> tuple[int, int]:
    """The ``[start, stop)`` record range owned by ``rank``."""
    if not 0 <= rank < n_ranks:
        raise ParameterError(f"rank {rank} out of range for {n_ranks} ranks")
    offsets = block_offsets(n_records, n_ranks)
    return offsets[rank], offsets[rank + 1]
