"""Single-process communicator.

Running pMAFIA on one processor "can simply be obtained by substituting
p = 1" (§4.5): every collective degenerates to the identity and
point-to-point self-sends become a one-slot mailbox.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np

from ..errors import CommError
from .comm import Comm, _observed, resolve_op


class SerialComm(Comm):
    """A communicator of size 1.  All collectives are identities; a rank
    may still ``send`` to itself and ``recv`` it back (FIFO per tag)."""

    rank = 0
    size = 1

    def __init__(self) -> None:
        self._mailbox: dict[int, deque[Any]] = {}

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if dest != 0:
            raise CommError(f"SerialComm has a single rank; cannot send to {dest}")
        self._mailbox.setdefault(tag, deque()).append(obj)

    def recv(self, source: int, tag: int = 0) -> Any:
        if source != 0:
            raise CommError(f"SerialComm has a single rank; cannot recv from {source}")
        box = self._mailbox.get(tag)
        if not box:
            raise CommError(f"SerialComm deadlock: no message queued for tag {tag}")
        return box.popleft()

    @_observed
    def barrier(self) -> None:
        pass

    @_observed
    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_rank(root)
        return obj

    @_observed
    def gather(self, obj: Any, root: int = 0) -> list[Any]:
        self._check_rank(root)
        return [obj]

    @_observed
    def allgather(self, obj: Any) -> list[Any]:
        return [obj]

    @_observed
    def scatter(self, objs, root: int = 0) -> Any:
        self._check_rank(root)
        if objs is None or len(objs) != 1:
            raise CommError("scatter needs exactly 1 object on SerialComm")
        return objs[0]

    @_observed
    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        resolve_op(op)  # validate the op even though it is unused
        return np.asarray(array).copy()

    @_observed
    def reduce(self, array: np.ndarray, op: str = "sum", root: int = 0):
        self._check_rank(root)
        resolve_op(op)
        return np.asarray(array).copy()
