"""SPMD launcher: run the same function on every rank of a communicator.

This is the mpiexec of the in-process world.  ``fn(comm, *args)`` runs
once per rank; ranks communicate through the :class:`Comm` they are
given.  Three backends:

``serial``
    Size-1 world, direct call on the caller's thread.
``thread``
    One Python thread per rank with real queue-based message passing.
``sim``
    The thread backend with every communicator wrapped in
    :class:`~repro.parallel.simtime.TimedComm`, producing deterministic
    per-rank virtual runtimes on a chosen machine model.
``process``
    One OS process per rank (GIL-free real parallelism); the rank
    function and args must be picklable.  See
    :mod:`repro.parallel.process`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import CommAborted, CommError
from .comm import Comm
from .faults import FaultPlan
from .machine import MachineSpec, WorkCounters
from .serial import SerialComm
from .simtime import TimedComm
from .threads import ThreadWorld

BACKENDS = ("serial", "thread", "sim", "process")


@dataclass
class RankResult:
    """Outcome of one rank's execution."""

    rank: int
    value: Any
    #: virtual seconds on the simulated machine (0.0 for untimed backends)
    time: float = 0.0
    #: per-category work tally (sim backend only)
    counters: WorkCounters | None = None


def run_spmd(
    fn: Callable[..., Any],
    nprocs: int,
    *,
    backend: str = "thread",
    machine: MachineSpec | None = None,
    collectives: str = "flat",
    recv_timeout: float | None = None,
    faults: FaultPlan | None = None,
    supervise: Any = None,
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
) -> list[RankResult]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks.

    ``collectives`` picks the collective wire pattern: ``"flat"`` (the
    paper's O(p) root-centred model) or ``"tree"`` (binomial, O(log p)
    as in real MPI).  ``recv_timeout`` sets the per-rank recv deadline
    in seconds (``None`` keeps each backend's default); a rank blocked
    past it raises :class:`~repro.errors.CommTimeoutError` instead of
    hanging on a lost peer.  ``faults`` threads a deterministic
    :class:`~repro.parallel.faults.FaultPlan` through every rank's
    communicator for failure rehearsal.

    ``supervise`` (a :class:`~repro.parallel.supervisor.SupervisePolicy`)
    runs the program under the rank-recovery supervisor — process
    backend only, since only OS processes can die independently and be
    respawned.  The recovery report is discarded here; call
    :func:`~repro.parallel.supervisor.run_supervised` (or
    :func:`repro.core.mafia.pmafia_supervised`) directly to inspect it.

    Returns one :class:`RankResult` per rank, in rank order.  If any
    rank raises, the program is aborted on all ranks and the root-cause
    exception is re-raised on the caller's thread.
    """
    if nprocs < 1:
        raise CommError(f"nprocs must be >= 1, got {nprocs}")
    if backend not in BACKENDS:
        raise CommError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if machine is not None and backend != "sim":
        raise CommError("a MachineSpec is only meaningful with backend='sim'")
    if collectives not in ("flat", "tree"):
        raise CommError(
            f"collectives must be 'flat' or 'tree', got {collectives!r}")
    if supervise is not None and backend != "process":
        raise CommError("supervise requires backend='process' — threads "
                        "cannot be killed and respawned independently")
    kwargs = dict(kwargs or {})

    if backend == "serial":
        if nprocs != 1:
            raise CommError("backend='serial' supports exactly 1 rank; "
                            "use 'thread' or 'sim' for more")
        comm: Comm = SerialComm()
        if faults is not None:
            comm = faults.wrap(comm)
        comm.strategy = collectives
        value = fn(comm, *args, **kwargs)
        return [RankResult(rank=0, value=value)]

    if backend == "process":
        if supervise is not None:
            from .supervisor import run_supervised
            values, _report = run_supervised(
                fn, nprocs, collectives=collectives,
                recv_timeout=recv_timeout, faults=faults,
                policy=supervise, args=args, kwargs=kwargs)
        else:
            from .process import run_processes
            values = run_processes(fn, nprocs, collectives=collectives,
                                   recv_timeout=recv_timeout, faults=faults,
                                   args=args, kwargs=kwargs)
        return [RankResult(rank=r, value=v) for r, v in enumerate(values)]

    if backend == "sim" and machine is None:
        machine = MachineSpec.ibm_sp2()

    world = ThreadWorld(nprocs)
    results: list[RankResult | None] = [None] * nprocs
    errors: list[BaseException | None] = [None] * nprocs

    def target(rank: int) -> None:
        comm: Comm = world.comm(rank)
        if recv_timeout is not None:
            comm.recv_timeout = recv_timeout
        if backend == "sim":
            assert machine is not None
            comm = TimedComm(comm, machine)
        if faults is not None:
            comm = faults.wrap(comm)
        comm.strategy = collectives
        try:
            value = fn(comm, *args, **kwargs)
        except CommAborted as exc:
            errors[rank] = exc
        except BaseException as exc:  # noqa: BLE001 - re-raised on caller
            errors[rank] = exc
            world.abort.set()
        else:
            results[rank] = RankResult(
                rank=rank,
                value=value,
                time=comm.time(),
                counters=getattr(comm, "counters", None),
            )

    threads = [threading.Thread(target=target, args=(r,), name=f"spmd-rank-{r}")
               for r in range(nprocs)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # Re-raise the root cause: the first (in rank order) exception that
    # is not a CommAborted echo; when every failure is a CommAborted —
    # i.e. the ranks aborted cooperatively — re-raise the first echo.
    first_abort: BaseException | None = None
    for exc in errors:
        if exc is None:
            continue
        if not isinstance(exc, CommAborted):
            raise exc
        if first_abort is None:
            first_abort = exc
    if first_abort is not None:
        raise first_abort
    return [r for r in results if r is not None]
