"""Rank supervision and shard-level recovery for the process backend.

:func:`~repro.parallel.process.run_processes` has all-or-nothing
failure semantics: one dead rank aborts the world and a restart replays
from the last level checkpoint on *every* rank.  This module keeps the
world alive instead.  :func:`run_supervised` runs each rank under a
parent-side supervisor that

1. **detects** a dead or hung rank — from its error report, its process
   exit, or (optionally) a stale heartbeat — while the survivors are
   still mid-collective;
2. **parks** the survivors: a ``park`` directive delivered through a
   per-rank control queue makes each survivor unwind to its last level
   snapshot (a :class:`RecoveryInterrupt` raised at the next safe
   point) and acknowledge with the highest level it can restore;
3. **rebuilds only the lost shard**: a replacement process is spawned
   with a :class:`RecoveryBoot` telling it to restore the agreed level
   directly from the checkpoint directory and restage its own block
   from the record file and the staged PMBS/PMBI artifacts — no
   collective participation until it reaches the restore point;
4. **re-admits** the replacement: survivors resume from the same level
   under a new *epoch*, and because every pass is a deterministic
   function of the per-level state, the finished run is bit-identical
   to a fault-free one.

Epochs make mid-run membership change safe on a FIFO message substrate:
every wire tag is offset by ``epoch * _TAG_STRIDE``, so messages from
an abandoned attempt are recognised and discarded (shared-memory
segments unlinked) instead of corrupting the resumed collectives.

The protocol is deliberately conservative: anything outside the
single-failure happy path — a second rank dying while one recovery is
in flight, a failure before the program armed its recovery client, a
deterministic (fatal) error, the recovery budget running out — aborts
the world exactly like :func:`~repro.parallel.process.run_processes`
would.  See ``docs/ROBUSTNESS.md`` ("Shard recovery & gamedays").
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import CommError, CommTimeoutError, ParameterError
from .comm import Comm
from .process import (RESULT_TIMEOUT, ProcessComm, _discard_refs,
                      _shm_resolve)

#: wire tags live in per-epoch bands of this width
_TAG_STRIDE = 4096
#: shifts the negative internal collective tags (>= -3) into the band
_TAG_OFFSET = 8

#: child error types that recovery can never fix: deterministic
#: re-execution would fail identically, so the world aborts at once
FATAL_ERRORS = frozenset({
    "DataError", "ParameterError", "CheckpointError", "GridError",
    "RecordFileError", "ChecksumError", "RecoveryUnsupported",
})


class RecoveryInterrupt(BaseException):
    """Raised inside a surviving rank when the supervisor parks the
    world for a recovery round.  Derives from ``BaseException`` so the
    driver's ordinary ``except Exception`` error handling cannot
    swallow it; only the recovery loop in the driver catches it."""

    def __init__(self, epoch: int) -> None:
        super().__init__(f"parked for recovery round (epoch {epoch})")
        self.epoch = epoch


@dataclass(frozen=True)
class RecoveryBoot:
    """Spawn-time instructions for a replacement rank: join the world
    at ``epoch`` and restore ``level`` directly from the checkpoint
    directory, without using any collective before the restore point."""

    epoch: int
    level: int


@dataclass(frozen=True)
class SupervisePolicy:
    """Supervision knobs for one :func:`run_supervised` call."""

    #: seconds between a busy rank's heartbeats (rate limit)
    heartbeat_interval: float = 1.0
    #: declare a rank hung after this many seconds without a heartbeat;
    #: ``None`` disables stall detection (liveness + error reports only)
    stall_timeout: float | None = None
    #: seconds the parent waits for all survivors to acknowledge a park
    park_timeout: float = 120.0
    #: recovery rounds before the supervisor gives up and aborts
    max_recoveries: int = 2

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ParameterError(
                f"heartbeat_interval must be > 0, "
                f"got {self.heartbeat_interval}")
        if self.stall_timeout is not None \
                and self.stall_timeout <= self.heartbeat_interval:
            raise ParameterError(
                "stall_timeout must exceed heartbeat_interval, else "
                "every busy rank is declared hung between beats")
        if self.park_timeout <= 0:
            raise ParameterError(
                f"park_timeout must be > 0, got {self.park_timeout}")
        if self.max_recoveries < 0:
            raise ParameterError(
                f"max_recoveries must be >= 0, got {self.max_recoveries}")


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed recovery round, with its timeline."""

    rank: int
    epoch: int
    reason: str
    restore_level: int
    survivors: tuple[int, ...]
    detected: float
    parked: float
    respawned: float
    resumed: float

    @property
    def rto(self) -> float:
        """Recovery time objective actually achieved: seconds from
        detection to the survivors' resume directive."""
        return self.resumed - self.detected

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of this event (for recovery traces)."""
        return {
            "rank": self.rank,
            "epoch": self.epoch,
            "reason": self.reason,
            "restore_level": self.restore_level,
            "survivors": list(self.survivors),
            "rto_seconds": self.rto,
            "park_seconds": self.parked - self.detected,
            "respawn_seconds": self.respawned - self.parked,
        }


@dataclass(frozen=True)
class RecoveryReport:
    """Everything the supervisor did across one run."""

    events: tuple[RecoveryEvent, ...] = ()
    nprocs: int = 0

    @property
    def replacements(self) -> int:
        """Processes spawned beyond the initial world — survivors are
        never respawned, so this equals the number of recovery rounds."""
        return len(self.events)

    @property
    def worst_rto(self) -> float:
        return max((e.rto for e in self.events), default=0.0)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the whole report."""
        return {"nprocs": self.nprocs,
                "replacements": self.replacements,
                "worst_rto_seconds": self.worst_rto,
                "events": [e.to_dict() for e in self.events]}


class RecoveryClient:
    """The rank-side half of the recovery protocol, exposed to the
    driver as ``comm.recovery``.

    The driver *snapshots* its level frontier after every completed
    level, *arms* the client once its shard is staged (before that a
    park is refused — there is no snapshot to unwind to), *polls* at
    safe points, and on :class:`RecoveryInterrupt` calls
    :meth:`park_and_await` to trade its current position for the
    restore level the whole world agreed on.
    """

    def __init__(self, comm: "SupervisedComm",
                 boot: RecoveryBoot | None) -> None:
        self._comm = comm
        self.boot = boot
        self.armed = False
        self._snaps: dict[int, tuple[tuple, tuple]] = {}

    def snapshot(self, level: int, trace: Sequence[Any],
                 registered: Sequence[Any]) -> None:
        """Record the post-``level`` frontier as a restore candidate."""
        self._snaps[level] = (tuple(trace), tuple(registered))

    def arm(self) -> None:
        """Allow parking from here on (at least one snapshot exists)."""
        if not self._snaps:
            raise CommError("cannot arm recovery without a snapshot")
        self.armed = True

    def poll(self) -> None:
        """A safe point: heartbeat and act on any pending directive
        (may raise :class:`RecoveryInterrupt` when armed)."""
        self._comm.heartbeat()
        self._comm._poll_control()

    def park_and_await(self, intr: RecoveryInterrupt
                       ) -> tuple[int, tuple, tuple]:
        """Acknowledge the park and block until the supervisor resumes
        the world; returns ``(restore_level, trace, registered)``.

        While parked the rank keeps heartbeating so a long shard
        rebuild elsewhere is not mistaken for this rank stalling.  A
        newer park directive supersedes the current round (re-ack); the
        resume directive carries the agreed restore level, which by
        construction is one of this rank's snapshots.
        """
        comm = self._comm
        epoch = intr.epoch
        comm.heartbeat(force=True)
        comm._sup.put(("parked", comm.rank, epoch, max(self._snaps)))
        deadline = time.monotonic() + comm.park_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CommTimeoutError(
                    f"rank {comm.rank} parked for recovery but no resume "
                    f"arrived within {comm.park_timeout:.1f}s")
            try:
                msg = comm._control.get(timeout=min(remaining, 0.5))
            except queue_mod.Empty:
                comm.heartbeat(force=True)
                continue
            if msg[0] == "park":
                epoch = msg[1]
                comm._sup.put(("parked", comm.rank, epoch,
                               max(self._snaps)))
                continue
            if msg[0] == "resume":
                _, new_epoch, restore_level = msg
                comm.set_epoch(new_epoch)
                for lvl in [l for l in self._snaps if l > restore_level]:
                    del self._snaps[lvl]
                trace, registered = self._snaps[restore_level]
                return restore_level, trace, registered


class SupervisedComm(ProcessComm):
    """A :class:`ProcessComm` that heartbeats to the supervisor,
    reacts to park directives, and speaks the epoch-tagged wire
    protocol so stale messages from abandoned attempts are discarded
    instead of delivered."""

    def __init__(self, rank: int, size: int, inboxes: Sequence[Any],
                 strategy: str = "flat",
                 recv_timeout: float | None = None, *,
                 sup: Any, control: Any, epoch: int = 0,
                 heartbeat_interval: float = 1.0,
                 park_timeout: float = 120.0,
                 boot: RecoveryBoot | None = None) -> None:
        super().__init__(rank, size, inboxes, strategy, recv_timeout)
        self._sup = sup
        self._control = control
        self.epoch = epoch
        self.heartbeat_interval = heartbeat_interval
        self.park_timeout = park_timeout
        self._last_hb = 0.0
        self.recovery = RecoveryClient(self, boot)

    # -- epoch-tagged wire protocol ------------------------------------
    def _wire(self, tag: int) -> int:
        base = tag + _TAG_OFFSET
        if not 0 <= base < _TAG_STRIDE:
            raise CommError(
                f"tag {tag} outside the supervised wire-tag band")
        return self.epoch * _TAG_STRIDE + base

    def set_epoch(self, epoch: int) -> None:
        """Enter a new epoch; stashed messages from older epochs are
        dropped (their arrays were already materialised — no segments
        to unlink)."""
        self.epoch = epoch
        for key in [k for k in self._stash
                    if k[1] // _TAG_STRIDE < epoch]:
            del self._stash[key]

    # -- supervisor link -----------------------------------------------
    def heartbeat(self, force: bool = False) -> None:
        """Tell the supervisor this rank is alive (rate-limited)."""
        now = time.monotonic()
        if not force and now - self._last_hb < self.heartbeat_interval:
            return
        self._last_hb = now
        try:
            self._sup.put_nowait(("hb", self.rank, self.epoch, now))
        except Exception:  # noqa: BLE001 - a full queue must not kill work
            pass

    def _poll_control(self) -> None:
        """Act on pending supervisor directives without blocking."""
        while True:
            try:
                msg = self._control.get_nowait()
            except queue_mod.Empty:
                return
            if msg[0] == "park":
                target = msg[1]
                if target <= self.epoch:
                    continue  # directive from a round already completed
                if self.recovery.armed:
                    raise RecoveryInterrupt(target)
                # no snapshot to unwind to (still staging): the world
                # cannot be rebuilt around this rank — supervisor aborts
                self._sup.put(("refused", self.rank, target))
            # a stray "resume" outside park_and_await is unreachable by
            # construction (resume follows this rank's own ack); drop it

    # -- point to point -------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self.heartbeat()
        super().send(obj, dest, self._wire(tag))

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_rank(source)
        self.heartbeat()
        key = (source, self._wire(tag))
        stash = self._stash.get(key)
        if stash:
            return stash.popleft()
        waited = 0.0
        step = min(0.05, max(self.recv_timeout, 1e-3))
        while waited < self.recv_timeout:
            self._poll_control()
            self.heartbeat()
            try:
                got_source, got_tag, obj = self._inboxes[self.rank].get(
                    timeout=step)
            except queue_mod.Empty:
                waited += step
                continue
            if got_tag // _TAG_STRIDE < self.epoch:
                # a message from an abandoned attempt: unlink any
                # shared-memory segments it carries and move on
                _discard_refs(obj)
                continue
            obj = _shm_resolve(obj)
            if (got_source, got_tag) == key:
                return obj
            self._stash.setdefault((got_source, got_tag),
                                   deque()).append(obj)
        raise CommTimeoutError(
            f"rank {self.rank} timed out receiving from {source} "
            f"(tag {tag}) after {self.recv_timeout:.1f}s; "
            f"peer lost or deadlocked")

    # -- heartbeats from compute hot loops -------------------------------
    # the charge hooks are called once per chunk / pass from every
    # engine, so a rank deep in local numpy work still looks alive
    def charge_cells(self, ops: float) -> None:
        self.heartbeat()

    def charge_pairs(self, pairs: float) -> None:
        self.heartbeat()

    def charge_io(self, nbytes: float, chunks: int = 1) -> None:
        self.heartbeat()


def _supervised_worker(fn: Callable, rank: int, size: int, inboxes,
                       result_queue, sup_queue, control_queue,
                       strategy: str, recv_timeout, faults,
                       policy: SupervisePolicy, epoch: int,
                       boot: RecoveryBoot | None, args: tuple,
                       kwargs: dict) -> None:
    """Child-process entry for one supervised rank."""
    comm: Comm = SupervisedComm(
        rank, size, inboxes, strategy, recv_timeout,
        sup=sup_queue, control=control_queue, epoch=epoch,
        heartbeat_interval=policy.heartbeat_interval,
        park_timeout=policy.park_timeout, boot=boot)
    if faults is not None:
        comm = faults.wrap(comm)
    try:
        value = fn(comm, *args, **kwargs)
    except RecoveryInterrupt as exc:
        # the program let the interrupt escape: it is not recovery-aware
        result_queue.put((rank, "error", (
            "RecoveryUnsupported",
            f"rank {rank} was parked for recovery (epoch {exc.epoch}) "
            f"but the program does not handle RecoveryInterrupt")))
        return
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        result_queue.put((rank, "error",
                          (type(exc).__name__,
                           f"{type(exc).__name__}: {exc}\n"
                           f"{traceback.format_exc()}")))
        return
    result_queue.put((rank, "ok", value))


@dataclass
class _World:
    """Parent-side mutable supervision state."""

    values: list
    done: list
    last_hb: dict[int, float]
    events: list = field(default_factory=list)
    errors: deque = field(default_factory=deque)   # (rank, name, message)
    acks: dict[int, int] = field(default_factory=dict)
    refused: tuple | None = None
    epoch: int = 0


def _pump(world: _World, sup_q, result_q) -> None:
    """Drain both parent-facing queues into the world state."""
    while True:
        try:
            msg = sup_q.get_nowait()
        except queue_mod.Empty:
            break
        if msg[0] == "hb":
            _, rank, _epoch, _t = msg
            world.last_hb[rank] = time.monotonic()
        elif msg[0] == "parked":
            _, rank, epoch, high = msg
            world.last_hb[rank] = time.monotonic()
            if epoch == world.epoch:
                world.acks[rank] = high
        elif msg[0] == "refused":
            world.refused = (msg[1], msg[2])
    while True:
        try:
            rank, status, payload = result_q.get_nowait()
        except queue_mod.Empty:
            break
        if status == "ok":
            world.values[rank] = payload
            world.done[rank] = True
        else:
            world.errors.append((rank, payload[0], payload[1]))


def run_supervised(fn: Callable, nprocs: int, *,
                   collectives: str = "flat",
                   recv_timeout: float | None = None, faults=None,
                   policy: SupervisePolicy | None = None,
                   args: Sequence[Any] = (),
                   kwargs: dict[str, Any] | None = None
                   ) -> tuple[list[Any], RecoveryReport]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` supervised OS
    processes; returns the per-rank values plus a
    :class:`RecoveryReport` of every recovery round performed.

    ``fn`` must be recovery-aware (snapshot / arm / park through
    ``comm.recovery``, as :func:`repro.core.pmafia.pmafia_rank` is) for
    recovery to engage; a program that is not simply aborts on failure,
    like :func:`~repro.parallel.process.run_processes`.  ``faults``
    applies to the initial world only — a replacement rank is always
    spawned clean, so a deterministic kill-at-site plan cannot re-kill
    its own replacement.
    """
    if nprocs < 1:
        raise CommError(f"nprocs must be >= 1, got {nprocs}")
    policy = policy or SupervisePolicy()
    ctx = mp.get_context()
    inboxes = [ctx.Queue() for _ in range(nprocs)]
    result_q = ctx.Queue()
    sup_q = ctx.Queue()
    controls = [ctx.Queue() for _ in range(nprocs)]

    def spawn(rank: int, epoch: int, boot: RecoveryBoot | None,
              rank_faults) -> Any:
        proc = ctx.Process(
            target=_supervised_worker,
            args=(fn, rank, nprocs, inboxes, result_q, sup_q,
                  controls[rank], collectives, recv_timeout, rank_faults,
                  policy, epoch, boot, tuple(args), dict(kwargs or {})),
            name=f"spmd-rank-{rank}", daemon=True)
        proc.start()
        return proc

    now = time.monotonic()
    world = _World(values=[None] * nprocs, done=[False] * nprocs,
                   last_hb={r: now for r in range(nprocs)})
    procs = [spawn(r, 0, None, faults) for r in range(nprocs)]
    retired: list[Any] = []
    failure: tuple[int, str, str] | None = None
    deadline = time.monotonic() + RESULT_TIMEOUT

    def fail(rank: int, name: str, message: str) -> None:
        nonlocal failure
        if failure is None:
            failure = (rank, name, message)

    def recover(dead_rank: int, reason: str, detail: str) -> None:
        """One recovery round; sets ``failure`` instead of raising."""
        detected = time.monotonic()
        if len(world.events) >= policy.max_recoveries:
            fail(dead_rank, "CommError",
                 f"recovery budget exhausted "
                 f"({policy.max_recoveries} rounds): {detail}")
            return
        if any(world.done):
            fail(dead_rank, "CommError",
                 f"rank {dead_rank} was lost after another rank finished; "
                 f"the world cannot be rebuilt: {detail}")
            return
        proc = procs[dead_rank]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=10)
        retired.append(proc)
        world.epoch += 1
        world.acks = {}
        survivors = [r for r in range(nprocs) if r != dead_rank]
        for r in survivors:
            controls[r].put(("park", world.epoch))
        park_deadline = time.monotonic() + policy.park_timeout
        while len(world.acks) < len(survivors):
            _pump(world, sup_q, result_q)
            if world.refused is not None:
                r, _e = world.refused
                fail(dead_rank, "CommError",
                     f"rank {r} refused to park (not yet recoverable); "
                     f"aborting: {detail}")
                return
            if world.errors:
                r, name, message = world.errors.popleft()
                fail(r, name,
                     f"rank {r} failed during recovery round "
                     f"{world.epoch}:\n{message}")
                return
            if any(world.done[r] for r in survivors):
                fail(dead_rank, "CommError",
                     f"a survivor finished mid-recovery; the world "
                     f"cannot be rebuilt: {detail}")
                return
            if time.monotonic() > park_deadline:
                missing = sorted(set(survivors) - set(world.acks))
                fail(dead_rank, "CommTimeoutError",
                     f"survivors {missing} did not park within "
                     f"{policy.park_timeout:.1f}s: {detail}")
                return
            time.sleep(0.01)
        parked_t = time.monotonic()
        restore_level = min(world.acks.values())
        boot = RecoveryBoot(epoch=world.epoch, level=restore_level)
        procs[dead_rank] = spawn(dead_rank, world.epoch, boot, None)
        world.last_hb[dead_rank] = time.monotonic()
        respawned_t = time.monotonic()
        for r in survivors:
            controls[r].put(("resume", world.epoch, restore_level))
        resumed_t = time.monotonic()
        world.events.append(RecoveryEvent(
            rank=dead_rank, epoch=world.epoch, reason=reason,
            restore_level=restore_level, survivors=tuple(survivors),
            detected=detected, parked=parked_t, respawned=respawned_t,
            resumed=resumed_t))

    try:
        while not all(world.done) and failure is None:
            if time.monotonic() > deadline:
                fail(-1, "", "timed out waiting for rank results")
                break
            _pump(world, sup_q, result_q)
            if world.refused is not None:
                r, _e = world.refused
                fail(r, "CommError", f"rank {r} refused a stale park "
                                     f"directive; aborting")
                break
            if world.errors:
                rank, name, message = world.errors.popleft()
                if name in FATAL_ERRORS:
                    fail(rank, name, message)
                else:
                    recover(rank, name, message.splitlines()[0])
                continue
            # a rank whose process vanished without reporting anything
            # (hard kill, OOM): give the result queue a short grace
            # first — exit races the final "ok" put
            for r in range(nprocs):
                if world.done[r] or procs[r].is_alive():
                    continue
                time.sleep(0.05)
                _pump(world, sup_q, result_q)
                if not world.done[r] and not world.errors:
                    recover(r, "exit",
                            f"rank {r} exited with code "
                            f"{procs[r].exitcode} without reporting")
                break
            if policy.stall_timeout is not None:
                now = time.monotonic()
                for r in range(nprocs):
                    if world.done[r]:
                        continue
                    if now - world.last_hb[r] > policy.stall_timeout:
                        recover(r, "stall",
                                f"rank {r} sent no heartbeat for "
                                f"{policy.stall_timeout:.1f}s")
                        break
            time.sleep(0.01)
    finally:
        if failure is not None:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
        for proc in procs + retired:
            proc.join(timeout=30)
        for q in inboxes:
            try:
                while True:
                    _, _, payload = q.get_nowait()
                    _discard_refs(payload)
            except (queue_mod.Empty, OSError, ValueError):
                pass
            q.cancel_join_thread()
        for q in controls:
            q.cancel_join_thread()
        result_q.cancel_join_thread()
        sup_q.cancel_join_thread()

    report = RecoveryReport(events=tuple(world.events), nprocs=nprocs)
    if failure is not None:
        rank, exc_name, message = failure
        if exc_name == "CommTimeoutError":
            raise CommTimeoutError(f"rank {rank} failed:\n{message}")
        raise CommError(f"rank {rank} failed:\n{message}")
    return world.values, report
