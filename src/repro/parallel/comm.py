"""Abstract MPI-like communicator.

The pMAFIA paper runs SPMD over MPI on an IBM SP2.  This module defines
the communicator interface the algorithms are written against; concrete
backends live in :mod:`repro.parallel.serial`, :mod:`.threads` and
:mod:`.simtime`.  The interface follows mpi4py conventions: generic
Python objects for ``send``/``bcast``/``gather`` and numpy arrays for
``allreduce`` (the paper's Reduce stores the combined vector *on every
processor*, i.e. an all-reduce).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import CommError

#: Binary associative reduction operators usable with :meth:`Comm.allreduce`.
REDUCE_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
    "land": np.logical_and,
    "lor": np.logical_or,
}


def resolve_op(op: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Look up a reduction operator by name."""
    try:
        return REDUCE_OPS[op]
    except KeyError:
        raise CommError(
            f"unknown reduce op {op!r}; expected one of {sorted(REDUCE_OPS)}"
        ) from None


def _observed(fn):
    """Report a public collective to the rank's observer, when one is
    attached (``comm.obs``, set by the driver for instrumented runs).

    Disabled cost: one attribute load and ``None`` check per call.
    Collectives compose — ``allreduce`` runs ``allgather`` runs
    ``gather`` + ``bcast`` — so the observer keeps a nesting depth and
    records only the outermost call; the payload reported is this
    rank's local contribution (first positional argument).  Observing
    never sends, never charges the cost model and only *reads* the
    virtual clock, so results and simulated times are unchanged.
    """
    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        obs = self.obs
        if obs is None:
            return fn(self, *args, **kwargs)
        with obs.collective(fn.__name__, args[0] if args else None):
            return fn(self, *args, **kwargs)
    return wrapper


class Comm:
    """Communicator interface (one instance per SPMD rank).

    Subclasses must implement the point-to-point primitives ``send`` /
    ``recv``; the collectives here are written on top of them and come
    in two wire patterns selected by :attr:`strategy`:

    ``"flat"``
        Root-centred stars: the root exchanges one message per peer —
        O(p) messages on the root's critical path.  This is the cost
        model the paper's analysis assumes (communication O(α·S·p) per
        pass, §4.5).
    ``"tree"``
        Binomial trees, as real MPI implementations use — O(log p)
        latency on the critical path.

    Both produce identical results; the simulated-time backend makes
    their cost difference measurable (see the collectives ablation).
    """

    #: this process's rank in ``[0, size)``
    rank: int
    #: number of ranks in the communicator
    size: int
    #: collective wire pattern: "flat" (paper's model) or "tree"
    strategy: str = "flat"
    #: True when the backend's charges model the paper's measured SP2
    #: (the simulated-time backend): policy code keyed off this — e.g.
    #: ``join_strategy="auto"`` — must preserve the paper's cost model
    #: instead of optimising wall clock
    models_paper_costs: bool = False
    #: the rank's observer (:class:`repro.obs.RankObs`) while a traced
    #: or metered run is active; ``None`` keeps collectives on the
    #: zero-cost path
    obs: Any = None

    # -- point to point ------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest`` (FIFO per (source, tag))."""
        raise NotImplementedError

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive the next object from rank ``source`` with ``tag``."""
        raise NotImplementedError

    # -- collectives ---------------------------------------------------
    @_observed
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        self.allgather(None)

    @_observed
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank; returns it."""
        self._check_rank(root)
        if self.size == 1:
            return obj
        if self.strategy == "tree":
            return self._bcast_tree(obj, root)
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(obj, r, tag=_TAG_BCAST)
            return obj
        return self.recv(root, tag=_TAG_BCAST)

    def _bcast_tree(self, obj: Any, root: int) -> Any:
        """Binomial-tree broadcast: each rank receives once from its
        parent, then forwards to exponentially spaced children."""
        p = self.size
        vrank = (self.rank - root) % p          # virtual rank, root at 0
        mask = 1
        while mask < p:
            if vrank & mask:
                obj = self.recv((self.rank - mask) % p, tag=_TAG_BCAST)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < p:
                self.send(obj, (self.rank + mask) % p, tag=_TAG_BCAST)
            mask >>= 1
        return obj

    @_observed
    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank on ``root`` (rank order);
        returns ``None`` on non-root ranks."""
        self._check_rank(root)
        if self.size == 1:
            return [obj]
        if self.strategy == "tree":
            return self._gather_tree(obj, root)
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for r in range(self.size):
                if r != root:
                    out[r] = self.recv(r, tag=_TAG_GATHER)
            return out
        self.send(obj, root, tag=_TAG_GATHER)
        return None

    def _gather_tree(self, obj: Any, root: int) -> list[Any] | None:
        """Binomial-tree gather: each rank folds its children's
        ``(vrank, obj)`` lists into its own, then ships the merged list
        to its parent."""
        p = self.size
        vrank = (self.rank - root) % p
        collected: list[tuple[int, Any]] = [(vrank, obj)]
        mask = 1
        while mask < p:
            if vrank & mask:
                self.send(collected, (self.rank - mask) % p,
                          tag=_TAG_GATHER)
                return None
            if vrank + mask < p:
                collected.extend(
                    self.recv((self.rank + mask) % p, tag=_TAG_GATHER))
            mask <<= 1
        out: list[Any] = [None] * p
        for child_vrank, value in collected:
            out[(child_vrank + root) % p] = value
        return out

    @_observed
    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object per rank onto every rank (rank order)."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    @_observed
    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one object per rank from ``root``."""
        self._check_rank(root)
        if self.rank == root and (objs is None or len(objs) != self.size):
            raise CommError(
                f"scatter needs exactly {self.size} objects on root")
        if self.size == 1:
            return objs[0]
        if self.strategy == "tree":
            return self._scatter_tree(objs, root)
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(objs[r], r, tag=_TAG_SCATTER)
            return objs[root]
        return self.recv(root, tag=_TAG_SCATTER)

    def _scatter_tree(self, objs: Sequence[Any] | None, root: int) -> Any:
        """Binomial-tree scatter (the mirror of :meth:`_bcast_tree`):
        each parent forwards to a child only the per-rank payloads the
        child's subtree will consume, keyed by virtual rank."""
        p = self.size
        vrank = (self.rank - root) % p
        if vrank == 0:
            payload = {v: objs[(v + root) % p] for v in range(p)}
        mask = 1
        while mask < p:
            if vrank & mask:
                payload = self.recv((self.rank - mask) % p,
                                    tag=_TAG_SCATTER)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < p:
                child = {v: payload[v]
                         for v in range(vrank + mask,
                                        min(vrank + 2 * mask, p))}
                self.send(child, (self.rank + mask) % p, tag=_TAG_SCATTER)
            mask >>= 1
        return payload[vrank]

    @_observed
    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Element-wise combine an equal-shaped array from every rank and
        return the combined vector on *all* ranks (the paper's Reduce).

        The wire pattern is the underlying allgather (unchanged by any
        backend fast path); the fold accumulates in place when the
        operator's output dtype matches, so combining p large histograms
        allocates one result buffer instead of p.
        """
        fn = resolve_op(op)
        array = np.asarray(array)
        contributions = self.allgather(array)
        result = contributions[0].copy()
        inplace = _can_fold_inplace(fn, result)
        for contrib in contributions[1:]:
            if contrib.shape != result.shape:
                raise CommError(
                    f"allreduce shape mismatch: {contrib.shape} vs {result.shape}")
            if inplace and contrib.dtype == result.dtype:
                fn(result, contrib, out=result)
            else:
                result = fn(result, contrib)
        return result

    @_observed
    def reduce(self, array: np.ndarray, op: str = "sum",
               root: int = 0) -> np.ndarray | None:
        """Like :meth:`allreduce` but the result lands only on ``root``."""
        fn = resolve_op(op)
        contributions = self.gather(np.asarray(array), root=root)
        if contributions is None:
            return None
        result = contributions[0].copy()
        inplace = _can_fold_inplace(fn, result)
        for contrib in contributions[1:]:
            if inplace and contrib.dtype == result.dtype:
                fn(result, contrib, out=result)
            else:
                result = fn(result, contrib)
        return result

    # -- cost accounting hooks (overridden by the sim backend) ----------
    def charge_cells(self, ops: float) -> None:
        """Charge ``ops`` record x cell updates (histogram build or CDU
        population) to this rank's virtual clock.  No-op outside the
        simulated-time backend."""

    def charge_pairs(self, pairs: float) -> None:
        """Charge ``pairs`` unit-pair comparisons (CDU join / repeat
        elimination) to this rank's virtual clock.  No-op outside the
        simulated-time backend."""

    def charge_io(self, nbytes: float, chunks: int = 1) -> None:
        """Charge a local-disk read of ``nbytes`` in ``chunks`` chunk
        accesses to this rank's virtual clock.  No-op outside the
        simulated-time backend."""

    def charge_wait(self, seconds: float) -> None:
        """Charge ``seconds`` of idle waiting (an injected message delay,
        a stalled device) to this rank's virtual clock.  No-op outside
        the simulated-time backend, where wall sleeps stand in."""

    def time(self) -> float:
        """This rank's virtual time in seconds (0.0 when untimed)."""
        return 0.0

    # -- helpers ---------------------------------------------------------
    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.size:
            raise CommError(f"rank {r} out of range for size {self.size}")


def _can_fold_inplace(fn, result: np.ndarray) -> bool:
    """Whether folding with ``out=result`` preserves the out-of-place
    dtype (``np.logical_or`` on int arrays yields bool out-of-place but
    would stay int with ``out=``, so it must take the copying path)."""
    if not isinstance(fn, np.ufunc) or result.size == 0:
        return False
    empty = result[:0]
    return fn(empty, empty).dtype == result.dtype


_TAG_BCAST = -1
_TAG_GATHER = -2
_TAG_SCATTER = -3
