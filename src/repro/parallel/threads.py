"""Thread-backed SPMD communicator.

Each SPMD rank runs on its own Python thread; ranks exchange messages
through per-``(dest, source, tag)`` FIFO queues.  This executes the
*identical* message-passing control flow an MPI build would (flat
root-centred collectives built on send/recv), so "parallel result equals
serial result" is a genuine test of the parallel algorithm rather than of
a mock.

A shared abort flag turns a crash on one rank into a prompt
:class:`~repro.errors.CommAborted` on every rank blocked in ``recv``,
instead of a deadlocked test suite.
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from ..errors import CommAborted, CommError, CommTimeoutError
from .comm import Comm


class ThreadWorld:
    """Shared state for one SPMD program: mailboxes plus the abort flag."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise CommError(f"world size must be >= 1, got {size}")
        self.size = size
        self.abort = threading.Event()
        self._boxes: dict[tuple[int, int, int], queue.Queue] = {}
        self._boxes_lock = threading.Lock()

    def mailbox(self, dest: int, source: int, tag: int) -> queue.Queue:
        """The FIFO queue carrying (source, tag) messages to ``dest``."""
        key = (dest, source, tag)
        with self._boxes_lock:
            box = self._boxes.get(key)
            if box is None:
                box = self._boxes[key] = queue.Queue()
            return box

    def comm(self, rank: int) -> "ThreadComm":
        """The communicator endpoint of ``rank`` in this world."""
        return ThreadComm(self, rank)


class ThreadComm(Comm):
    """One rank's endpoint into a :class:`ThreadWorld`."""

    #: seconds between abort-flag checks while blocked in recv
    POLL_INTERVAL = 0.05
    #: default recv deadline (override per-comm via ``recv_timeout``)
    RECV_TIMEOUT = 120.0

    def __init__(self, world: ThreadWorld, rank: int,
                 recv_timeout: float | None = None) -> None:
        if not 0 <= rank < world.size:
            raise CommError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self.rank = rank
        self.size = world.size
        #: seconds a blocked recv waits before declaring the peer lost
        self.recv_timeout = (self.RECV_TIMEOUT if recv_timeout is None
                             else recv_timeout)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest)
        if self._world.abort.is_set():
            raise CommAborted("SPMD program aborted by a peer rank")
        self._world.mailbox(dest, self.rank, tag).put(obj)

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_rank(source)
        box = self._world.mailbox(self.rank, source, tag)
        step = min(self.POLL_INTERVAL, max(self.recv_timeout, 1e-3))
        waited = 0.0
        while True:
            if self._world.abort.is_set():
                raise CommAborted("SPMD program aborted by a peer rank")
            try:
                return box.get(timeout=step)
            except queue.Empty:
                waited += step
                if waited >= self.recv_timeout:
                    raise CommTimeoutError(
                        f"rank {self.rank} timed out receiving from "
                        f"{source} (tag {tag}) after {waited:.1f}s; "
                        f"peer lost or deadlocked") from None
