"""Deterministic, seeded fault injection for the SPMD substrate.

A :class:`FaultPlan` describes *what goes wrong and where*: rank crashes
at chosen (site, level) trigger points, message drops/delays on the
wire, and transient ``OSError``\\ s on chunk reads at chosen
(level, chunk) trigger points.  :func:`~repro.parallel.spmd.run_spmd`
threads a plan through every backend by wrapping each rank's
communicator in a :class:`FaultyComm`; the pMAFIA driver announces its
progress through :func:`fault_site` so triggers fire at well-defined
points of the algorithm, and the resilient chunk reader
(:func:`repro.io.chunks.charged_chunks`) consults the same per-rank
state before every block read.

Everything is deterministic: explicit triggers fire exactly where they
say, and the optional chaos knobs (``drop_rate`` / ``delay_rate``) draw
from a per-rank ``numpy`` generator seeded from ``(seed, rank)`` — the
same plan replays the same faults every run.  Plans are picklable, so
the process backend injects the identical schedule in its children.

See ``docs/ROBUSTNESS.md`` for a cookbook.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from .comm import Comm

#: driver sites a :class:`CrashPoint` or :class:`ReadFault` can name
SITES = ("start", "domains", "histogram", "populate", "join", "dedup")


class InjectedFailure(RuntimeError):
    """Raised on a rank the fault plan kills.  Deliberately *not* a
    :class:`~repro.errors.ReproError`: an injected crash stands in for
    an arbitrary failure (OOM, segfault surrogate, power loss) that the
    library did not raise itself."""


@dataclass(frozen=True)
class CrashPoint:
    """Kill ``rank`` when it enters ``site`` at ``level``.

    ``None`` fields are wildcards; ``CrashPoint(rank=1)`` kills rank 1
    at the first site it announces.  ``hard=True`` exits the process
    with ``os._exit`` instead of raising — a SIGKILL / OOM-killer
    surrogate that leaves no chance to report an error, so only the
    supervisor's liveness checks can notice it (process backend only;
    on in-process backends a hard crash degrades to the raised form).
    """

    rank: int
    site: str | None = None
    level: int | None = None
    hard: bool = False

    def matches(self, rank: int, site: str, level: int | None) -> bool:
        """True when this crash fires for ``rank`` at ``site``/``level``."""
        return (self.rank == rank
                and (self.site is None or self.site == site)
                and (self.level is None or self.level == level))


@dataclass(frozen=True)
class ReadFault:
    """Fail chunk reads at a (rank, level, chunk) trigger point.

    The first ``errors`` matching read attempts raise a transient
    ``OSError`` (retried by the resilient reader); with
    ``permanent=True`` every attempt fails, exhausting the retry budget.
    ``None`` fields are wildcards.
    """

    rank: int | None = None
    site: str | None = None
    level: int | None = None
    chunk: int | None = None
    errors: int = 1
    permanent: bool = False

    def matches(self, rank: int, site: str | None, level: int | None,
                chunk: int) -> bool:
        """True when this fault covers the given chunk-read attempt."""
        return ((self.rank is None or self.rank == rank)
                and (self.site is None or self.site == site)
                and (self.level is None or self.level == level)
                and (self.chunk is None or self.chunk == chunk))


@dataclass(frozen=True)
class MessageFault:
    """Drop or delay the ``nth`` message sent by ``rank`` (0-based,
    counted over all of that rank's sends, optionally filtered by
    ``dest`` / ``tag``)."""

    rank: int
    action: str = "drop"            # "drop" | "delay"
    nth: int = 0
    dest: int | None = None
    tag: int | None = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ("drop", "delay"):
            raise ValueError(f"action must be 'drop' or 'delay', "
                             f"got {self.action!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, replayable fault schedule for one SPMD program."""

    seed: int = 0
    crashes: tuple[CrashPoint, ...] = ()
    read_faults: tuple[ReadFault, ...] = ()
    message_faults: tuple[MessageFault, ...] = ()
    #: chaos mode: per-message drop / extra-delay probabilities
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    chaos_delay: float = 0.01

    def state_for(self, rank: int) -> "RankFaults":
        """The mutable per-rank runtime state of this plan."""
        return RankFaults(self, rank)

    def wrap(self, comm: Comm) -> "FaultyComm":
        """Wrap a communicator so this plan's faults fire on its rank."""
        return FaultyComm(comm, self.state_for(comm.rank))

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable description of this plan (the scenario
        file format — see ``benchmarks/scenarios/``)."""
        return {
            "seed": self.seed,
            "crashes": [vars(c).copy() for c in self.crashes],
            "read_faults": [vars(r).copy() for r in self.read_faults],
            "message_faults": [vars(m).copy() for m in self.message_faults],
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "chaos_delay": self.chaos_delay,
        }

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output / a scenario file."""
        known = {"seed", "crashes", "read_faults", "message_faults",
                 "drop_rate", "delay_rate", "chaos_delay"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan fields {sorted(unknown)}")
        return cls(
            seed=int(spec.get("seed", 0)),
            crashes=tuple(CrashPoint(**c)
                          for c in spec.get("crashes", ())),
            read_faults=tuple(ReadFault(**r)
                              for r in spec.get("read_faults", ())),
            message_faults=tuple(MessageFault(**m)
                                 for m in spec.get("message_faults", ())),
            drop_rate=float(spec.get("drop_rate", 0.0)),
            delay_rate=float(spec.get("delay_rate", 0.0)),
            chaos_delay=float(spec.get("chaos_delay", 0.01)),
        )


class RankFaults:
    """One rank's runtime view of a :class:`FaultPlan`: tracks the
    current (site, level) position, counts messages and served read
    errors, and owns the rank's chaos generator."""

    def __init__(self, plan: FaultPlan, rank: int) -> None:
        self.plan = plan
        self.rank = rank
        self.site: str | None = None
        self.level: int | None = None
        self._sent = 0
        self._read_served: dict[int, int] = {}
        self._rng = np.random.default_rng([plan.seed, rank])
        #: the rank's :class:`repro.obs.RankObs` during instrumented
        #: runs — injected faults then land in the same trace/metrics
        #: as real work (attached by ``RankObs.activate``)
        self.observer: Any = None

    def _record(self, kind: str, **attrs: Any) -> None:
        if self.observer is not None:
            self.observer.fault_event(kind, **attrs)

    # -- driver progress + crash triggers ------------------------------
    def enter(self, site: str, level: int | None = None) -> None:
        """Record that the rank entered ``site`` at ``level``; raises
        :class:`InjectedFailure` if the plan kills it here."""
        self.site = site
        self.level = level
        for point in self.plan.crashes:
            if point.matches(self.rank, site, level):
                self._record("crash", site=site, level=level,
                             hard=point.hard)
                if point.hard:
                    # SIGKILL surrogate: no exception, no error report,
                    # no cleanup — the process is simply gone
                    os._exit(137)
                raise InjectedFailure(
                    f"injected crash on rank {self.rank} at site "
                    f"{site!r}, level {level}")

    # -- chunk-read faults ---------------------------------------------
    def on_chunk_read(self, chunk: int) -> None:
        """Raise an injected ``OSError`` if a read fault triggers for
        the current (site, level) position and this chunk index."""
        for i, rf in enumerate(self.plan.read_faults):
            if not rf.matches(self.rank, self.site, self.level, chunk):
                continue
            detail = (f"rank {self.rank}, site {self.site!r}, "
                      f"level {self.level}, chunk {chunk}")
            if rf.permanent:
                self._record("read_error", chunk=chunk, permanent=True)
                raise OSError(errno.EIO, f"injected permanent read "
                                         f"error ({detail})")
            served = self._read_served.get(i, 0)
            if served < rf.errors:
                self._read_served[i] = served + 1
                self._record("read_error", chunk=chunk, permanent=False)
                raise OSError(errno.EIO,
                              f"injected transient read error "
                              f"{served + 1}/{rf.errors} ({detail})")

    # -- message faults -------------------------------------------------
    def on_send(self, dest: int, tag: int) -> tuple[bool, float]:
        """Decide the fate of the next outgoing message.  Returns
        ``(deliver, extra_delay_seconds)``."""
        index = self._sent
        self._sent += 1
        for mf in self.plan.message_faults:
            if (mf.rank == self.rank and mf.nth == index
                    and (mf.dest is None or mf.dest == dest)
                    and (mf.tag is None or mf.tag == tag)):
                if mf.action == "drop":
                    self._record("message_drop", dest=dest, tag=tag,
                                 nth=index)
                    return False, 0.0
                self._record("message_delay", dest=dest, tag=tag,
                             nth=index, delay=mf.delay)
                return True, mf.delay
        if self.plan.drop_rate or self.plan.delay_rate:
            draw = float(self._rng.random())
            if draw < self.plan.drop_rate:
                self._record("message_drop", dest=dest, tag=tag,
                             nth=index)
                return False, 0.0
            if draw < self.plan.drop_rate + self.plan.delay_rate:
                self._record("message_delay", dest=dest, tag=tag,
                             nth=index, delay=self.plan.chaos_delay)
                return True, self.plan.chaos_delay
        return True, 0.0


class FaultyComm(Comm):
    """A communicator wrapper that injects the plan's message faults and
    exposes the rank's fault state to the driver and the I/O layer.

    Collectives run through the :class:`Comm` base implementations on
    top of the wrapped ``send`` / ``recv``, so a dropped point-to-point
    message inside a collective strands the receiver exactly as a lost
    MPI message would.
    """

    def __init__(self, inner: Comm, state: RankFaults) -> None:
        self._inner = inner
        self.fault_state = state
        self.rank = inner.rank
        self.size = inner.size
        self.strategy = inner.strategy
        # class attributes shadow __getattr__ delegation, so the flag
        # must be copied for policy code keyed off it (join strategy,
        # delay charging) to see the wrapped backend's value
        self.models_paper_costs = inner.models_paper_costs

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        deliver, delay = self.fault_state.on_send(dest, tag)
        if delay > 0:
            # On the simulated-time backend an injected delay is charged
            # to the sender's *virtual* clock only; it reaches other
            # ranks solely through the arrival stamps of this rank's
            # subsequent sends — under a tree collective that means the
            # delayed rank's subtree path, never the whole world.  Wall
            # backends sleep for real.
            if getattr(self._inner, "models_paper_costs", False):
                self._inner.charge_wait(delay)
            else:
                time.sleep(delay)
        if deliver:
            self._inner.send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        return self._inner.recv(source, tag)

    # -- cost accounting passes straight through ------------------------
    def charge_cells(self, ops: float) -> None:
        self._inner.charge_cells(ops)

    def charge_pairs(self, pairs: float) -> None:
        self._inner.charge_pairs(pairs)

    def charge_io(self, nbytes: float, chunks: int = 1) -> None:
        self._inner.charge_io(nbytes, chunks)

    def charge_wait(self, seconds: float) -> None:
        self._inner.charge_wait(seconds)

    def time(self) -> float:
        return self._inner.time()

    def __getattr__(self, name: str) -> Any:
        try:
            inner = self.__dict__["_inner"]
        except KeyError:
            raise AttributeError(name) from None
        return getattr(inner, name)


def fault_site(comm: Comm, site: str, level: int | None = None) -> None:
    """Announce that this rank entered ``site`` at ``level``.

    No-op unless the communicator carries a fault state — the production
    driver calls this unconditionally at a cost of one ``getattr``.
    """
    state = getattr(comm, "fault_state", None)
    if state is not None:
        state.enter(site, level)
