"""Delta distribution primitives for the streaming engine.

A streaming session running SPMD feeds every rank the same delta: the
root broadcasts the record block, each rank slices out its
:func:`~repro.io.partition.block_range` share, and the global fine
histogram is maintained by summing the per-rank *delta* histograms —
an incremental allreduce instead of a full repass.  Both primitives
ride the ordinary :class:`~repro.parallel.comm.Comm` collectives, so
they work (and are charged) identically on the serial, thread, process
and simulated backends.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from .comm import Comm


def broadcast_block(comm: Comm, block: np.ndarray | None,
                    root: int = 0) -> np.ndarray:
    """Broadcast one delta's record block from ``root`` to every rank.

    The root passes the ``(n, d)`` float64 block; other ranks pass
    ``None``.  Returns the (C-contiguous float64) block on every rank.
    """
    if comm.rank == root:
        if block is None:
            raise DataError("root rank must supply the delta block")
        block = np.ascontiguousarray(block, dtype=np.float64)
        if block.ndim != 2:
            raise DataError(
                f"delta block must be 2-D, got {block.ndim}-D")
    if comm.size == 1:
        return block
    return comm.bcast(block, root=root)


def incremental_allreduce(comm: Comm, delta: np.ndarray,
                          into: np.ndarray | None = None) -> np.ndarray:
    """Sum-allreduce one delta's local histogram and fold it into the
    maintained global accumulator.

    ``delta`` is this rank's integer contribution (any shape, same on
    every rank's dtype); ``into`` is the running global histogram the
    summed delta is added to in place.  Integer addition is exact, so
    the accumulator after any delta sequence equals a cold global
    histogram over the same records.
    """
    total = comm.allreduce(np.ascontiguousarray(delta), op="sum")
    if into is None:
        return total
    if into.shape != total.shape:
        raise DataError(
            f"accumulator shape {into.shape} != delta shape {total.shape}")
    into += total
    return into
