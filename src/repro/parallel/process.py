"""Multi-process SPMD backend.

The thread backend shares one GIL, so on a multi-core machine it cannot
give real wall-clock speedup for the numpy-heavy passes.  This backend
runs each rank in its own OS process — genuine parallelism — with the
same :class:`~repro.parallel.comm.Comm` semantics: per-destination
multiprocessing queues carry ``(source, tag, payload)`` messages, and a
receiver-side stash re-orders them per (source, tag) stream.

The rank function and its arguments must be picklable (module-level
functions like :func:`repro.core.pmafia.pmafia_rank` are); for large
data sets pass a record-file *path* rather than an array so each rank
stages its own block from disk instead of pickling N×d floats through
the queue.

Large numeric ndarrays (CDU histograms, flag vectors) take a buffer
fast path instead of the pickler: the sender copies the raw bytes into
a POSIX shared-memory segment and ships only a tiny
:class:`_ShmRef` descriptor through the queue; the receiver attaches,
copies out and unlinks.  The payload therefore crosses the queue
without ever being pickled, at any nesting depth the collectives use
(gather lists, tree ``(vrank, obj)`` tuples, scatter dicts — the same
path serves flat and tree strategies).  ``Comm.serialized_arrays``
counts ndarrays that still went through the pickler, as a test hook.

Failure semantics: a rank blocked in ``recv`` past its deadline raises
:class:`~repro.errors.CommTimeoutError` (re-raised as such on the
parent), so a dead or partitioned peer surfaces as a prompt abort
instead of a hang; any child failure makes the parent terminate the
surviving processes.  A :class:`~repro.parallel.faults.FaultPlan` can
be threaded through to rehearse exactly these scenarios.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import traceback
from collections import deque
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import CommError, CommTimeoutError
from .comm import Comm

#: default seconds a blocked recv waits before declaring the peer lost
RECV_TIMEOUT = 300.0
#: seconds the parent waits for each rank's result
RESULT_TIMEOUT = 3600.0

#: ndarrays at least this large ship as shared-memory segments instead
#: of pickles; below it the segment setup costs more than the pickle
SHM_MIN_BYTES = 1 << 16

#: containers are rewritten this deep looking for shippable arrays —
#: enough for every collective payload shape (gather list of tree
#: (vrank, obj) tuples, scatter dict of per-rank values)
_SHM_DEPTH = 3


class _ShmRef:
    """Wire descriptor for an ndarray shipped out-of-band: the pickled
    message carries only segment name, dtype and shape."""

    __slots__ = ("name", "dtype", "shape")

    def __init__(self, name: str, dtype: str, shape: tuple) -> None:
        self.name = name
        self.dtype = dtype
        self.shape = shape

    def __reduce__(self):
        return (_ShmRef, (self.name, self.dtype, self.shape))


def _untrack(seg) -> None:
    """Hand segment ownership to the receiver: the creating process must
    not let its resource tracker unlink (or warn about) a segment whose
    lifetime now belongs to the other end.  The tracker keys segments by
    the raw POSIX name (leading slash included), which ``seg.name``
    strips — use the internal name when present."""
    raw = getattr(seg, "_name", None) or "/" + seg.name
    try:
        resource_tracker.unregister(raw, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker internals vary
        pass


def _shm_export(obj: Any, stats: list, depth: int = 0) -> Any:
    """Replace large numeric ndarrays in a payload with shared-memory
    references; ``stats[0]`` counts ndarrays left to the pickler."""
    if isinstance(obj, np.ndarray):
        if obj.dtype != object and obj.nbytes >= SHM_MIN_BYTES:
            seg = shared_memory.SharedMemory(create=True, size=obj.nbytes)
            try:
                view = np.ndarray(obj.shape, dtype=obj.dtype, buffer=seg.buf)
                view[...] = obj
                del view
                ref = _ShmRef(seg.name, obj.dtype.str, obj.shape)
            finally:
                seg.close()
            _untrack(seg)
            return ref
        stats[0] += 1
        return obj
    if depth < _SHM_DEPTH:
        if isinstance(obj, tuple):
            return tuple(_shm_export(x, stats, depth + 1) for x in obj)
        if isinstance(obj, list):
            return [_shm_export(x, stats, depth + 1) for x in obj]
        if isinstance(obj, dict):
            return {k: _shm_export(v, stats, depth + 1)
                    for k, v in obj.items()}
    return obj


def _shm_resolve(obj: Any, depth: int = 0) -> Any:
    """Materialise any :class:`_ShmRef` in a received payload and unlink
    the segment (receipt transfers ownership to this process)."""
    if isinstance(obj, _ShmRef):
        seg = shared_memory.SharedMemory(name=obj.name)
        try:
            src = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                             buffer=seg.buf)
            out = src.copy()
            del src
        finally:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        return out
    if depth < _SHM_DEPTH:
        if isinstance(obj, tuple):
            return tuple(_shm_resolve(x, depth + 1) for x in obj)
        if isinstance(obj, list):
            return [_shm_resolve(x, depth + 1) for x in obj]
        if isinstance(obj, dict):
            return {k: _shm_resolve(v, depth + 1) for k, v in obj.items()}
    return obj


def _discard_refs(obj: Any, depth: int = 0) -> None:
    """Unlink any segments referenced by an undelivered payload (used by
    the parent when draining queues after a failed run)."""
    if isinstance(obj, _ShmRef):
        try:
            seg = shared_memory.SharedMemory(name=obj.name)
            seg.close()
            seg.unlink()
        except Exception:  # noqa: BLE001 - best-effort cleanup
            pass
        return
    if depth < _SHM_DEPTH and isinstance(obj, (tuple, list)):
        for x in obj:
            _discard_refs(x, depth + 1)
    elif depth < _SHM_DEPTH and isinstance(obj, dict):
        for x in obj.values():
            _discard_refs(x, depth + 1)


class ProcessComm(Comm):
    """One rank's endpoint: an inbox queue plus every rank's outbox."""

    def __init__(self, rank: int, size: int, inboxes: Sequence[Any],
                 strategy: str = "flat",
                 recv_timeout: float | None = None) -> None:
        if not 0 <= rank < size:
            raise CommError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size
        self.strategy = strategy
        self.recv_timeout = (RECV_TIMEOUT if recv_timeout is None
                             else recv_timeout)
        self._inboxes = list(inboxes)
        self._stash: dict[tuple[int, int], deque] = {}
        #: ndarrays this rank pickled through the queue instead of the
        #: shared-memory fast path (test hook; stays 0 for large payloads)
        self.serialized_arrays = 0

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest`` (FIFO per (source, tag))."""
        self._check_rank(dest)
        stats = [0]
        payload = _shm_export(obj, stats)
        self.serialized_arrays += stats[0]
        self._inboxes[dest].put((self.rank, tag, payload))

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive the next object from rank ``source`` with ``tag``."""
        self._check_rank(source)
        key = (source, tag)
        stash = self._stash.get(key)
        if stash:
            return stash.popleft()
        waited = 0.0
        step = min(0.1, max(self.recv_timeout, 1e-3))
        while waited < self.recv_timeout:
            try:
                got_source, got_tag, obj = self._inboxes[self.rank].get(
                    timeout=step)
            except queue_mod.Empty:
                waited += step
                continue
            # resolve refs immediately: stashed messages must not hold
            # shared segments open longer than necessary
            obj = _shm_resolve(obj)
            if (got_source, got_tag) == key:
                return obj
            self._stash.setdefault((got_source, got_tag),
                                   deque()).append(obj)
        raise CommTimeoutError(
            f"rank {self.rank} timed out receiving from {source} "
            f"(tag {tag}) after {self.recv_timeout:.1f}s; "
            f"peer lost or deadlocked")


def _worker(fn: Callable, rank: int, size: int, inboxes, result_queue,
            strategy: str, recv_timeout, faults, args: tuple,
            kwargs: dict) -> None:
    """Child-process entry: run the rank function, ship the outcome."""
    comm: Comm = ProcessComm(rank, size, inboxes, strategy, recv_timeout)
    if faults is not None:
        comm = faults.wrap(comm)
    try:
        value = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        result_queue.put((rank, "error",
                          (type(exc).__name__,
                           f"{type(exc).__name__}: {exc}\n"
                           f"{traceback.format_exc()}")))
        return
    result_queue.put((rank, "ok", value))


def run_processes(fn: Callable, nprocs: int, *, collectives: str = "flat",
                  recv_timeout: float | None = None, faults=None,
                  args: Sequence[Any] = (),
                  kwargs: dict[str, Any] | None = None) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` OS processes and
    return the per-rank values in rank order.

    The first failing rank's error is re-raised after every process has
    been terminated — as :class:`~repro.errors.CommTimeoutError` when
    the child hit its recv deadline, otherwise as
    :class:`~repro.errors.CommError` carrying the child traceback.
    ``faults`` (a picklable :class:`~repro.parallel.faults.FaultPlan`)
    is re-instantiated per rank inside each child.
    """
    if nprocs < 1:
        raise CommError(f"nprocs must be >= 1, got {nprocs}")
    ctx = mp.get_context()
    inboxes = [ctx.Queue() for _ in range(nprocs)]
    result_queue = ctx.Queue()
    processes = [
        ctx.Process(target=_worker,
                    args=(fn, rank, nprocs, inboxes, result_queue,
                          collectives, recv_timeout, faults,
                          tuple(args), dict(kwargs or {})),
                    name=f"spmd-rank-{rank}", daemon=True)
        for rank in range(nprocs)
    ]
    for proc in processes:
        proc.start()

    values: list[Any] = [None] * nprocs
    failure: tuple[int, str, str] | None = None
    try:
        for _ in range(nprocs):
            try:
                rank, status, payload = result_queue.get(
                    timeout=RESULT_TIMEOUT)
            except queue_mod.Empty:
                failure = (-1, "", "timed out waiting for rank results")
                break
            if status == "error":
                exc_name, message = payload
                failure = (rank, exc_name, message)
                break
            values[rank] = payload
    finally:
        if failure is not None:
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
        for proc in processes:
            proc.join(timeout=30)
        for q in inboxes:
            # a failed run can leave undelivered messages whose shm
            # segments nobody will ever attach; unlink them here
            try:
                while True:
                    _, _, payload = q.get_nowait()
                    _discard_refs(payload)
            except (queue_mod.Empty, OSError, ValueError):
                pass
            q.cancel_join_thread()
        result_queue.cancel_join_thread()

    if failure is not None:
        rank, exc_name, message = failure
        if exc_name == "CommTimeoutError":
            raise CommTimeoutError(f"rank {rank} failed:\n{message}")
        raise CommError(f"rank {rank} failed:\n{message}")
    return values
