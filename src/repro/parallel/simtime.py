"""Deterministic simulated-time communicator.

:class:`TimedComm` wraps any real communicator (in practice the thread
backend) and maintains a per-rank *virtual clock*:

* ``charge_cells`` / ``charge_pairs`` / ``charge_io`` advance the clock
  by the :class:`~repro.parallel.machine.MachineSpec` cost of the work a
  rank actually performed;
* every ``send`` stamps the message with its arrival time — the sender's
  clock after paying latency + size/bandwidth — and ``recv`` advances the
  receiver's clock to at least that arrival;
* because the base-class collectives are composed from send/recv, clock
  *synchronisation at collectives falls out for free*: a gather leaves the
  root at the max of all participants' clocks plus the message costs, and
  the following bcast propagates that time back out — exactly the flat
  Reduce pattern whose cost the paper models as O(αSp) per pass.

The result: run the real algorithm on real data at any scale, and read
off deterministic "IBM SP2 seconds" per rank for speedup curves.

Charging policy for engine variants
-----------------------------------
The virtual machine models the *paper's* implementation: per-record
scans that re-read 8-byte records on every pass.  Faster engines in
this codebase (the staged bin-index store, the persistent bitmap
index, chunk prefetching, hash joins on the sim backend staying
pairwise) must therefore **charge what the modelled machine would have
paid, not what they actually did**: level passes charge float-width
I/O per chunk and the naive per-CDU cell cost in the same order and
amounts regardless of engine — the bitmap-index engine performs zero
reads yet *replays* the identical ``charge_io``/``charge_cells``
sequence over the same chunk boundaries.  Charges are plain float
additions, so an identical call sequence yields bit-identical clocks:
virtual SP2 times are invariant under every engine knob
(``bin_cache``, ``bitmap_index``, ``compute_threads``, ``prefetch``)
while wall clock drops.  Staging passes (bin store, bitmap index,
shared-to-local copy) charge nothing, as §5.2 excludes them.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

from .comm import Comm
from .machine import MachineSpec, WorkCounters


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of a message payload in bytes.

    Numpy arrays and byte strings are counted exactly; containers are
    summed recursively with a small per-element framing overhead; any
    other object falls back to its pickled size.
    """
    if obj is None:
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 64
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj) + 16
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 16
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace")) + 16
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 16 + sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return 16 + sum(payload_nbytes(k) + payload_nbytes(v)
                        for k, v in obj.items())
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class TimedComm(Comm):
    """A communicator that also runs a virtual clock for its rank."""

    models_paper_costs = True

    def __init__(self, inner: Comm, machine: MachineSpec) -> None:
        self._inner = inner
        self.machine = machine
        self.rank = inner.rank
        self.size = inner.size
        self.clock = 0.0
        self.counters = WorkCounters()

    # -- point to point, with time stamps --------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        nbytes = payload_nbytes(obj)
        self.clock += self.machine.message_seconds(nbytes)
        self.counters.messages += 1
        self.counters.message_bytes += nbytes
        self._inner.send((self.clock, obj), dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        arrival, obj = self._inner.recv(source, tag)
        self.clock = max(self.clock, arrival)
        return obj

    # -- work charging ----------------------------------------------------
    def charge_cells(self, ops: float) -> None:
        self.clock += self.machine.cell_seconds(ops)
        self.counters.record_cell_ops += ops

    def charge_pairs(self, pairs: float) -> None:
        self.clock += self.machine.pair_seconds(pairs)
        self.counters.unit_pair_ops += pairs

    def charge_io(self, nbytes: float, chunks: int = 1) -> None:
        self.clock += self.machine.io_seconds(nbytes, chunks)
        self.counters.io_bytes += nbytes
        self.counters.io_chunks += chunks

    def charge_wait(self, seconds: float) -> None:
        # idle waiting (e.g. an injected message delay) advances only
        # this rank's clock; downstream ranks feel it solely through the
        # arrival stamps of messages this rank sends afterwards
        self.clock += seconds

    def time(self) -> float:
        return self.clock
