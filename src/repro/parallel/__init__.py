"""In-process SPMD substrate: MPI-like communicators, a thread backend
with real message passing, and a deterministic simulated-time backend
with an IBM SP2 machine model (see DESIGN.md §2 for the substitution
rationale)."""

from .comm import Comm, REDUCE_OPS
from .faults import (CrashPoint, FaultPlan, FaultyComm, InjectedFailure,
                     MessageFault, RankFaults, ReadFault, fault_site)
from .machine import MachineSpec, WorkCounters
from .process import ProcessComm, run_processes
from .serial import SerialComm
from .simtime import TimedComm, payload_nbytes
from .spmd import BACKENDS, RankResult, run_spmd
from .supervisor import (RecoveryBoot, RecoveryEvent, RecoveryInterrupt,
                         RecoveryReport, SupervisePolicy, SupervisedComm,
                         run_supervised)
from .threads import ThreadComm, ThreadWorld

__all__ = [
    "BACKENDS",
    "Comm",
    "CrashPoint",
    "FaultPlan",
    "FaultyComm",
    "InjectedFailure",
    "MachineSpec",
    "MessageFault",
    "ProcessComm",
    "RankFaults",
    "RankResult",
    "RecoveryBoot",
    "RecoveryEvent",
    "RecoveryInterrupt",
    "RecoveryReport",
    "REDUCE_OPS",
    "ReadFault",
    "SerialComm",
    "SupervisePolicy",
    "SupervisedComm",
    "ThreadComm",
    "ThreadWorld",
    "TimedComm",
    "WorkCounters",
    "fault_site",
    "payload_nbytes",
    "run_processes",
    "run_spmd",
    "run_supervised",
]
