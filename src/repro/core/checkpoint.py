"""Per-level checkpointing of the bottom-up search.

The level-wise loop of Algorithm 2 has naturally small inter-level
state: the adaptive grid, the per-level frontier (dense unit tables and
their counts) and the registered potential clusters.  After each
completed level, rank 0 serialises exactly that state; a killed run is
then restarted from the last completed level by
:func:`repro.core.mafia.pmafia_resumable` and — because every later
pass is a deterministic function of this state — produces a
bit-identical :class:`~repro.core.result.ClusteringResult`.

File format (versioned, see ``docs/ROBUSTNESS.md``): a 18-byte header
``magic "PMCK" | u16 version | u32 crc32(payload) | i64 payload-length``
followed by a pickled state dict.  Files are written atomically
(temp + rename) so a crash mid-checkpoint leaves the previous level's
file intact; the CRC makes a torn or bit-rotten checkpoint fail with
:class:`~repro.errors.CheckpointError` instead of resuming from
garbage.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import struct
import zlib
from pathlib import Path
from typing import Any

from ..errors import CheckpointError

_MAGIC = b"PMCK"
#: bump when the state dict's schema changes incompatibly
CHECKPOINT_VERSION = 1
_HEADER = struct.Struct("<4sHIq")
_LEVEL_RE = re.compile(r"^level(\d{4})\.ckpt$")
#: bump when the shard-manifest schema changes incompatibly
SHARD_MANIFEST_VERSION = 1


def checkpoint_path(directory: str | os.PathLike, level: int) -> Path:
    """The checkpoint file recording the state after ``level``."""
    return Path(directory) / f"level{level:04d}.ckpt"


def save_checkpoint(directory: str | os.PathLike, level: int,
                    state: dict[str, Any]) -> Path:
    """Atomically write the post-``level`` state; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    path = checkpoint_path(directory, level)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, CHECKPOINT_VERSION,
                              zlib.crc32(payload), len(payload)))
        fh.write(payload)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | os.PathLike) -> dict[str, Any]:
    """Read, validate and unpickle one checkpoint file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise CheckpointError(f"{path}: truncated checkpoint header")
    magic, version, crc, length = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        raise CheckpointError(f"{path}: bad checkpoint magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})")
    payload = raw[_HEADER.size:]
    if len(payload) != length:
        raise CheckpointError(
            f"{path}: checkpoint payload is {len(payload)} bytes, "
            f"header says {length}")
    if zlib.crc32(payload) != crc:
        raise CheckpointError(f"{path}: checkpoint CRC mismatch "
                              f"(corrupt or torn write)")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure
        raise CheckpointError(
            f"{path}: cannot unpickle checkpoint state: {exc}") from exc
    if not isinstance(state, dict) or "level" not in state:
        raise CheckpointError(f"{path}: malformed checkpoint state")
    return state


def latest_checkpoint(directory: str | os.PathLike) -> Path | None:
    """The highest-level checkpoint file in ``directory`` (or None)."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: tuple[int, Path] | None = None
    for entry in directory.iterdir():
        match = _LEVEL_RE.match(entry.name)
        if match is None:
            continue
        level = int(match.group(1))
        if best is None or level > best[0]:
            best = (level, entry)
    return best[1] if best else None


def quarantine_checkpoint(path: str | os.PathLike) -> Path:
    """Move a bad checkpoint aside as ``<name>.corrupt`` so the next
    :func:`latest_checkpoint` scan no longer offers it; returns the new
    path.  An existing quarantine file for the same level is replaced —
    only the newest corpse is worth keeping for post-mortems."""
    path = Path(path)
    target = path.with_suffix(path.suffix + ".corrupt")
    os.replace(path, target)
    return target


def load_latest_checkpoint(directory: str | os.PathLike
                           ) -> dict[str, Any] | None:
    """Load the newest *readable* checkpoint in ``directory``.

    A truncated or corrupt newest file — the expected debris of a crash
    or disk fault mid-run — is quarantined (renamed ``.corrupt``) and
    the scan falls back to the previous level instead of aborting the
    resume; losing one level of progress beats losing all of it.
    Returns ``None`` when no readable checkpoint remains.
    """
    while True:
        newest = latest_checkpoint(directory)
        if newest is None:
            return None
        try:
            return load_checkpoint(newest)
        except CheckpointError:
            quarantine_checkpoint(newest)


def clear_checkpoints(directory: str | os.PathLike) -> int:
    """Delete every checkpoint file in ``directory``; returns the count.

    Called when a checkpointed run starts *fresh* so that stale files
    from an earlier run can never be picked up by a later resume.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for entry in directory.iterdir():
        if _LEVEL_RE.match(entry.name):
            entry.unlink(missing_ok=True)
            removed += 1
    return removed


def shard_manifest_path(directory: str | os.PathLike, rank: int) -> Path:
    """The manifest describing rank ``rank``'s shard of the run."""
    return Path(directory) / f"shard{rank:04d}.json"


def save_shard_manifest(directory: str | os.PathLike, rank: int,
                        manifest: dict[str, Any]) -> Path:
    """Atomically write one rank's shard manifest next to the level
    checkpoints.

    The manifest records what a *replacement* for this rank needs in
    order to rebuild only the lost shard: the record range the rank
    owns, the staged artifact paths (local record copy, PMBS bin store,
    PMBI ``.bmx`` bitmap index) and the grid fingerprint those artifacts
    were staged under.  Every rank writes its own file (distinct names,
    no contention); the supervisor hands the file to the replacement so
    it can reuse the on-disk caches instead of re-deriving them, after
    verifying the fingerprint still matches the checkpointed grid.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = shard_manifest_path(directory, rank)
    tmp = path.with_suffix(path.suffix + ".tmp")
    payload = dict(manifest)
    payload.setdefault("version", SHARD_MANIFEST_VERSION)
    payload.setdefault("rank", rank)
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)
    return path


def load_shard_manifest(directory: str | os.PathLike,
                        rank: int) -> dict[str, Any] | None:
    """Read one rank's shard manifest; ``None`` when absent or
    unreadable (the replacement then re-stages from scratch — manifests
    are an optimisation witness, never load-bearing state)."""
    path = shard_manifest_path(directory, rank)
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if (not isinstance(manifest, dict)
            or manifest.get("version") != SHARD_MANIFEST_VERSION):
        return None
    return manifest


def check_compatible(state: dict[str, Any], params: Any,
                     n_records: int) -> None:
    """Refuse to resume from a checkpoint written under different
    parameters or data — the replayed passes would silently diverge.

    ``bin_cache`` is excluded from the comparison: the bin-index store
    is a transparent encoding of the same pass (bit-identical counts),
    so a run may legitimately resume under a different cache policy —
    the store is restaged from the checkpointed grid either way.  The
    bitmap-index knobs (``bitmap_index``, ``bitmap_budget``,
    ``compute_threads``) are excluded for the same reason: the index
    engine is bit-identical to the streaming engines and rebuilt from
    the checkpointed grid on resume.  ``trace`` and ``metrics`` are
    likewise excluded: observability is read-only with respect to the
    algorithm, so a crashed untraced run may be resumed under tracing
    (and vice versa) without divergence.  ``rebalance`` is excluded for
    the same reason — straggler re-fencing moves work between ranks
    without changing any pass's output.
    """
    stored = state.get("params")
    if stored is not None:
        try:
            stored = stored.with_(bin_cache=params.bin_cache,
                                  bitmap_index=params.bitmap_index,
                                  bitmap_budget=params.bitmap_budget,
                                  compute_threads=params.compute_threads,
                                  trace=params.trace,
                                  metrics=params.metrics,
                                  rebalance=params.rebalance)
        except (AttributeError, TypeError):
            pass
    if stored != params:
        raise CheckpointError(
            "checkpoint was written with different parameters "
            f"({state.get('params')!r} != {params!r}); "
            "resume with the original parameters or start fresh")
    if state.get("n_records") != n_records:
        raise CheckpointError(
            f"checkpoint covers {state.get('n_records')} records but the "
            f"data set has {n_records}; resume with the original data")
