"""Minimal DNF cluster descriptions and subset elimination (§3.2, §4.4).

Because pMAFIA's bins already hug the data distribution, a cluster's
description is simply a union of maximal grid rectangles over its own
bin boundaries — "minimal DNF expressions ... report the boundaries of
clusters far more accurately" than CLIQUE's fixed grid.  The greedy
cover below grows each rectangle as far as the cluster's cells allow,
then covers the next uncovered cell, yielding a small (not provably
minimum — minimum rectangle cover is NP-hard, which is why CLIQUE also
uses a greedy heuristic) DNF.

Subset elimination: "Clusters which are a proper subset of a higher
dimension cluster are eliminated and only unique clusters of the highest
dimensionality are presented."  At the unit level: a dense unit of level
k−1 is *maximal* iff it is not the projection of any dense unit of level
k; only maximal units seed clusters.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Sequence

import numpy as np

from ..errors import DataError
from ..types import Cluster, DNFTerm, Grid, Subspace
from .units import UnitTable


def grow_box(cells: set[tuple[int, ...]], seed: tuple[int, ...]
             ) -> tuple[tuple[int, int], ...]:
    """Grow a maximal axis-aligned box of cells around ``seed``.

    Returns inclusive ``(lo, hi)`` bin ranges per coordinate.  Growth
    alternates over coordinates, extending one layer at a time while the
    whole layer is present in ``cells``.
    """
    if seed not in cells:
        raise DataError(f"seed {seed} not among the cluster cells")
    k = len(seed)
    lo = list(seed)
    hi = list(seed)

    def layer_present(axis: int, value: int) -> bool:
        ranges = [range(lo[j], hi[j] + 1) if j != axis else (value,)
                  for j in range(k)]
        return all(cell in cells for cell in iter_product(*ranges))

    grew = True
    while grew:
        grew = False
        for axis in range(k):
            if layer_present(axis, hi[axis] + 1):
                hi[axis] += 1
                grew = True
            if layer_present(axis, lo[axis] - 1):
                lo[axis] -= 1
                grew = True
    return tuple(zip(lo, hi))


def greedy_cover(bins: np.ndarray) -> list[tuple[tuple[int, int], ...]]:
    """Cover a set of cells (rows of bin indices) by maximal boxes.

    Boxes may overlap (a cell can belong to several maximal rectangles);
    each box is emitted once and covers at least one previously uncovered
    cell, so the cover has at most as many boxes as cells.
    """
    bins = np.asarray(bins, dtype=np.int64)
    if bins.ndim != 2:
        raise DataError(f"bins must be 2-D, got {bins.shape}")
    cells = {tuple(row) for row in bins.tolist()}
    uncovered = set(cells)
    boxes: list[tuple[tuple[int, int], ...]] = []
    while uncovered:
        seed = min(uncovered)
        box = grow_box(cells, seed)
        boxes.append(box)
        ranges = [range(lo, hi + 1) for lo, hi in box]
        uncovered.difference_update(iter_product(*ranges))
    return boxes


def dnf_terms(grid: Grid, subspace: Subspace,
              bins: np.ndarray) -> tuple[DNFTerm, ...]:
    """The DNF description of one cluster: its greedy box cover with bin
    ranges mapped to attribute intervals through the adaptive grid."""
    terms = []
    for box in greedy_cover(bins):
        intervals = []
        for dim, (lo, hi) in zip(subspace.dims, box):
            dg = grid[dim]
            intervals.append((dg.edges[lo], dg.edges[hi + 1]))
        terms.append(DNFTerm(subspace=subspace, intervals=tuple(intervals)))
    return tuple(terms)


def term_arrays(clusters: Sequence[Cluster]) -> "TermArrays":
    """Flatten the clusters' DNF terms into parallel condition arrays —
    the array form the serving compiler (:mod:`repro.serve.compile`)
    consumes instead of walking ``DNFTerm`` objects term by term.

    Term ``t`` of the flattened table contributes one *condition* row
    per dimension of its subspace; conditions of one term are emitted
    contiguously, and terms of one cluster are emitted contiguously in
    cluster order — the layout that lets the compiler give every
    cluster a contiguous bit range in the packed term mask.
    """
    term_cluster: list[int] = []
    cond_term: list[int] = []
    cond_dim: list[int] = []
    cond_lo: list[float] = []
    cond_hi: list[float] = []
    for ci, cluster in enumerate(clusters):
        for term in cluster.dnf:
            t = len(term_cluster)
            term_cluster.append(ci)
            for dim, (lo, hi) in zip(term.subspace.dims, term.intervals):
                cond_term.append(t)
                cond_dim.append(dim)
                cond_lo.append(lo)
                cond_hi.append(hi)
    return TermArrays(
        n_clusters=len(clusters),
        term_cluster=np.asarray(term_cluster, dtype=np.int64),
        cond_term=np.asarray(cond_term, dtype=np.int64),
        cond_dim=np.asarray(cond_dim, dtype=np.int64),
        cond_lo=np.asarray(cond_lo, dtype=np.float64),
        cond_hi=np.asarray(cond_hi, dtype=np.float64))


class TermArrays:
    """The DNF terms of a cluster set as five parallel flat arrays.

    ``term_cluster[t]`` is the cluster index of term ``t``; condition
    row ``c`` says term ``cond_term[c]`` requires
    ``cond_lo[c] <= record[cond_dim[c]] < cond_hi[c]``.  A record
    matches a cluster iff it satisfies *every* condition of at least
    one of the cluster's terms (plain DNF semantics).
    """

    __slots__ = ("n_clusters", "term_cluster", "cond_term", "cond_dim",
                 "cond_lo", "cond_hi")

    def __init__(self, n_clusters: int, term_cluster: np.ndarray,
                 cond_term: np.ndarray, cond_dim: np.ndarray,
                 cond_lo: np.ndarray, cond_hi: np.ndarray) -> None:
        if not (len(cond_term) == len(cond_dim) == len(cond_lo)
                == len(cond_hi)):
            raise DataError("condition arrays must have equal length")
        if len(cond_term) and int(cond_term.max()) >= len(term_cluster):
            raise DataError("cond_term references a term out of range")
        if len(term_cluster) and int(term_cluster.max()) >= n_clusters:
            raise DataError("term_cluster references a cluster out of range")
        self.n_clusters = int(n_clusters)
        self.term_cluster = term_cluster
        self.cond_term = cond_term
        self.cond_dim = cond_dim
        self.cond_lo = cond_lo
        self.cond_hi = cond_hi

    @property
    def n_terms(self) -> int:
        return int(len(self.term_cluster))

    @property
    def n_conditions(self) -> int:
        return int(len(self.cond_term))


def projections(units: UnitTable) -> UnitTable:
    """All level-(k−1) projections of a level-k table (drop one dimension
    per unit, k projections each)."""
    k = units.level
    if k < 2:
        raise DataError("cannot project level-1 units")
    if units.n_units == 0:
        return UnitTable.empty(k - 1)
    dims_parts = []
    bins_parts = []
    for drop in range(k):
        keep = [j for j in range(k) if j != drop]
        dims_parts.append(units.dims[:, keep])
        bins_parts.append(units.bins[:, keep])
    return UnitTable(dims=np.concatenate(dims_parts),
                     bins=np.concatenate(bins_parts))


def maximal_mask(lower: UnitTable, higher: UnitTable | None) -> np.ndarray:
    """True for each unit of ``lower`` (level k−1) that is *not* a
    projection of any unit of ``higher`` (level k)."""
    if higher is None or higher.n_units == 0:
        return np.ones(lower.n_units, dtype=bool)
    if higher.level != lower.level + 1:
        raise DataError(
            f"level mismatch: lower {lower.level}, higher {higher.level}")
    proj = projections(higher).unique()
    return ~proj.contains_rows(lower)


#: give up on the exact Chebyshev ball beyond this many expanded rows
#: and fall back to axis-only neighbours
_NEIGHBOUR_LIMIT = 2_000_000


def _with_neighbours(units: UnitTable) -> UnitTable:
    """Every unit plus its Chebyshev-distance-1 neighbourhood (each bin
    index independently shifted by -1/0/+1, clipped at byte range).

    Built by expanding one coordinate at a time with dedup in between,
    so the blow-up is bounded by the real neighbourhood size rather than
    3^k.  Beyond ``_NEIGHBOUR_LIMIT`` rows the expansion degrades to the
    already-accumulated set (axis-partial), which only makes suppression
    more conservative.
    """
    current = units
    k = units.level
    for j in range(k):
        tables = [current]
        bins16 = current.bins.astype(np.int16)
        for delta in (-1, 1):
            shifted = bins16.copy()
            shifted[:, j] += delta
            keep = (shifted[:, j] >= 0) & (shifted[:, j] <= 255)
            if keep.any():
                tables.append(UnitTable(dims=current.dims[keep],
                                        bins=shifted[keep].astype(np.uint8)))
        expanded = UnitTable.concat_all(tables).unique()
        if expanded.n_units > _NEIGHBOUR_LIMIT:
            break
        current = expanded
    return current


def merged_mask(lower: UnitTable, higher: UnitTable | None) -> np.ndarray:
    """The ``report='merged'`` policy: True for lower-level units that
    are neither projections of a higher dense unit *nor face-adjacent to
    one* in their subspace.

    Adjacent leftovers are boundary slivers of the higher-dimensional
    cluster (an adaptive bin that overhangs the cluster edge); reporting
    them as separate clusters would contradict the paper's Table 3/4
    outputs, while genuinely separate lower-dimensional clusters share
    no boundary with anything above and survive.
    """
    if higher is None or higher.n_units == 0:
        return np.ones(lower.n_units, dtype=bool)
    if higher.level != lower.level + 1:
        raise DataError(
            f"level mismatch: lower {lower.level}, higher {higher.level}")
    proj = projections(higher).unique()
    return ~_with_neighbours(proj).contains_rows(lower)
