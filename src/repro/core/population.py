"""CDU population: the data pass that counts records per candidate unit.

"The algorithm spends most of its time in making a pass over the data
and finding out the dense units among the candidate dense units" (§4) —
this is the data-parallel heart of pMAFIA: every rank streams its N/p
local records in chunks of B and increments the histogram count of each
CDU a record falls in; a sum-Reduce yields global counts.

Two engines share this module, selected by whether the caller staged a
:class:`~repro.io.binned.BinnedStore` (the ``bin_cache`` policy):

* **Float path** (``binned=None``): records are mapped to per-dimension
  bin indices (one ``searchsorted`` per column), then CDUs are grouped
  by subspace and records matched by mixed-radix subspace keys —
  O(B·k) per subspace instead of O(B·Ncdu·k) naive masking.  Matchers
  are visited in lexicographic subspace order so Horner key folds are
  shared between subspaces with a common dim prefix: the level-k fold
  for ``(d0..dk)`` reuses the cached level-(k-1) fold for ``(d0..dk-1)``
  instead of restarting from column 0.

* **Bitmap path** (``binned`` given): the staged uint8/uint16 columns
  are turned into packed per-(dim, bin) membership bitmaps once per
  chunk (``np.packbits`` of ``col == b``, built only for pairs some CDU
  references) and each CDU's count is the popcount of the AND of its k
  bitmaps, batched across CDUs.  Per chunk this is one byte-wide AND +
  popcount per CDU — no per-record keys at all — and skips
  ``locate_records`` because the store did it once at staging time.

Both engines produce bit-identical counts.  The simulated-time backend
is charged the naive per-CDU cost (what the paper's per-record scan on
the SP2 paid) and float-width I/O either way, keeping virtual runtimes
faithful to the measured system and independent of the engine.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from ..errors import DataError
from ..io.binned import BinnedStore
from ..io.chunks import DataSource, charged_chunks
from ..io.resilient import RetryPolicy
from ..parallel.comm import Comm
from ..types import Grid
from .units import UnitTable

#: keys are int64; fall back to row-matching when the radix product
#: would overflow
_KEY_LIMIT = 2**62

#: CDUs ANDed per batched bitmap gather — bounds the (batch, k, n/8)
#: gather scratch while keeping the popcount loop out of Python
_UNIT_BATCH = 512

#: past this many bitmap bytes per chunk the bitmap engine would thrash
#: cache for sparse unit tables; fall back to keyed matching instead
_BITMAP_BYTE_CAP = 1 << 27

_POPCOUNT8 = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(axis=1)


def _popcount_rows(acc: np.ndarray) -> np.ndarray:
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(acc).sum(axis=1, dtype=np.int64)
    return _POPCOUNT8[acc].sum(axis=1, dtype=np.int64)


class _SubspaceMatcher:
    """Pre-computed matching state for the units of one subspace."""

    def __init__(self, dims: tuple[int, ...], rows: np.ndarray,
                 units: UnitTable, grid: Grid) -> None:
        self.dims = np.asarray(dims, dtype=np.int64)
        self.dims_t = tuple(int(d) for d in dims)
        self.rows = rows                      # indices into the CDU table
        bins = units.bins[rows][:, :].astype(np.int64)
        self.radices = np.array([grid[d].nbins for d in dims], dtype=np.int64)
        product = 1
        for r in self.radices:
            product *= int(r)
            if product >= _KEY_LIMIT:
                break
        self.overflow = product >= _KEY_LIMIT
        if self.overflow:
            # rare: fall back to per-unit column matching
            self.unit_bins = bins
            return
        keys = self._keys(bins)
        order = np.argsort(keys)
        self.sorted_keys = keys[order]
        self.order = order
        # counts[mapped_rows] += hist is a permutation (unit keys are
        # unique within a subspace), so plain fancy-index assignment
        # replaces the unbuffered np.add.at scatter
        self.mapped_rows = rows[order]

    def _keys(self, idx: np.ndarray) -> np.ndarray:
        key = idx[:, 0].astype(np.int64)
        for j in range(1, idx.shape[1]):
            key = key * self.radices[j] + idx[:, j]
        return key

    def _subspace_columns(self, bin_idx: np.ndarray) -> np.ndarray:
        if bin_idx.shape[1] == len(self.dims_t):
            # dims are strictly increasing, so covering every column
            # means the identity selection — skip the fancy-index copy
            return bin_idx
        return bin_idx[:, self.dims]

    def count_chunk(self, bin_idx: np.ndarray, counts: np.ndarray) -> None:
        """Add this chunk's matches into ``counts`` (full CDU-table length)."""
        sub = self._subspace_columns(bin_idx)
        if self.overflow:
            self._count_overflow(sub, counts)
            return
        self.count_keys(self._keys(sub), counts)

    def _count_overflow(self, sub: np.ndarray, counts: np.ndarray) -> None:
        # narrow the candidate set column by column and stop at the
        # first empty intersection instead of building a full
        # (rows, k) equality mask per unit
        for local, row in enumerate(self.rows):
            target = self.unit_bins[local]
            cand = np.flatnonzero(sub[:, 0] == target[0])
            for j in range(1, sub.shape[1]):
                if cand.size == 0:
                    break
                cand = cand[sub[cand, j] == target[j]]
            counts[row] += int(cand.size)

    def count_keys(self, rec_keys: np.ndarray, counts: np.ndarray) -> None:
        """Match pre-folded record keys against this subspace's units."""
        pos = np.searchsorted(self.sorted_keys, rec_keys)
        np.minimum(pos, len(self.sorted_keys) - 1, out=pos)
        hit = self.sorted_keys[pos] == rec_keys
        if hit.any():
            local_counts = np.bincount(pos[hit],
                                       minlength=len(self.sorted_keys))
            counts[self.mapped_rows] += local_counts


def build_matchers(units: UnitTable, grid: Grid) -> list[_SubspaceMatcher]:
    """One matcher per distinct subspace, in lexicographic dim order so
    consecutive matchers share key-fold prefixes."""
    if units.n_units and int(units.dims.max()) >= grid.ndim:
        raise DataError("unit table references dimensions beyond the grid")
    return [
        _SubspaceMatcher(dims, rows, units, grid)
        for dims, rows in sorted(units.group_by_subspace().items())
    ]


def _count_with_matchers(matchers: list[_SubspaceMatcher],
                         bin_idx: np.ndarray,
                         counts: np.ndarray) -> None:
    """Run one chunk through every matcher, reusing Horner fold
    prefixes between consecutive (lexicographically sorted) subspaces.

    The stack holds at most k live key arrays — the folds along the
    current subspace's dim prefix — so sharing costs O(k·B) transient
    memory, never one cached array per subspace.
    """
    stack_dims: list[int] = []
    stack_keys: list[np.ndarray] = []
    for m in matchers:
        if m.overflow:
            m.count_chunk(bin_idx, counts)
            continue
        dims_t = m.dims_t
        keep = 0
        limit = min(len(stack_dims), len(dims_t))
        while keep < limit and stack_dims[keep] == dims_t[keep]:
            keep += 1
        del stack_dims[keep:], stack_keys[keep:]
        for j in range(keep, len(dims_t)):
            col = bin_idx[:, dims_t[j]]
            if j == 0:
                key = col.astype(np.int64)
            else:
                key = stack_keys[j - 1] * m.radices[j] + col
            stack_dims.append(dims_t[j])
            stack_keys.append(key)
        m.count_keys(stack_keys[-1], counts)


class _BitmapCounter:
    """Batched bitmap-AND population over staged bin-index columns.

    For each (dim, bin) pair some CDU references, one packed membership
    bitmap is built per chunk; a CDU's count is then the popcount of
    the AND of its k bitmaps.  ``np.packbits`` pads the last byte with
    zero bits, which AND/popcount ignore, so partial chunks need no
    special casing.
    """

    def __init__(self, units: UnitTable, grid: Grid) -> None:
        nbins = np.array([grid[d].nbins for d in range(grid.ndim)],
                         dtype=np.int64)
        offsets = np.zeros(grid.ndim + 1, dtype=np.int64)
        np.cumsum(nbins, out=offsets[1:])
        flat = offsets[units.dims.astype(np.int64)] \
            + units.bins.astype(np.int64)
        self.used = np.unique(flat)           # referenced (dim, bin) pairs
        self.unit_rows = np.searchsorted(self.used, flat)  # (n_units, k)
        self.used_dims = np.searchsorted(offsets, self.used,
                                         side="right") - 1
        self.used_bins = self.used - offsets[self.used_dims]

    def bitmap_nbytes(self, rows: int) -> int:
        return len(self.used) * (-(-rows // 8))

    def count_columns(self, cols: np.ndarray, counts: np.ndarray) -> None:
        """Add one ``(n_dims, rows)`` column block's matches to ``counts``."""
        bitmaps = np.empty((len(self.used), -(-cols.shape[1] // 8)),
                           dtype=np.uint8)
        for i in range(len(self.used)):
            bitmaps[i] = np.packbits(
                cols[self.used_dims[i]] == self.used_bins[i])
        n_units = self.unit_rows.shape[0]
        for lo in range(0, n_units, _UNIT_BATCH):
            gathered = bitmaps[self.unit_rows[lo:lo + _UNIT_BATCH]]
            acc = np.bitwise_and.reduce(gathered, axis=1)
            counts[lo:lo + _UNIT_BATCH] += _popcount_rows(acc)


def _populate_binned(binned: BinnedStore, comm: Comm, grid: Grid,
                     units: UnitTable, chunk_records: int,
                     counts: np.ndarray,
                     retry: RetryPolicy | None,
                     prefetch: bool = False) -> np.ndarray:
    if binned.n_dims != grid.ndim:
        raise DataError(
            f"binned store has {binned.n_dims} dimensions, grid has "
            f"{grid.ndim}")
    per_record_cost = units.n_units * units.level
    counter = _BitmapCounter(units, grid)
    rows = min(chunk_records, binned.n_records)
    use_bitmaps = counter.bitmap_nbytes(rows) <= _BITMAP_BYTE_CAP
    matchers = None if use_bitmaps else build_matchers(units, grid)
    for cols in binned.charged_chunks(comm, chunk_records, retry=retry,
                                      prefetch=prefetch):
        comm.charge_cells(cols.shape[1] * per_record_cost)
        if use_bitmaps:
            counter.count_columns(cols, counts)
        else:
            bin_idx = np.ascontiguousarray(cols.T).astype(np.int64)
            _count_with_matchers(matchers, bin_idx, counts)
    return counts


def populate_local(source: DataSource | None, comm: Comm, grid: Grid,
                   units: UnitTable, chunk_records: int,
                   start: int = 0, stop: int | None = None,
                   retry: RetryPolicy | None = None, *,
                   binned: BinnedStore | None = None,
                   prefetch: bool = False) -> np.ndarray:
    """Counts of this rank's local records per CDU (one data pass).

    ``start``/``stop`` select the rank's block when the source holds the
    full data set (in-memory SPMD); a staged local file is passed whole.
    With ``binned`` given the pass streams the staged bin-index store
    (which must cover exactly this rank's ``[start, stop)`` block)
    through the bitmap engine instead of re-reading and re-locating the
    float records; counts and simulated-time charges are identical.
    With ``prefetch`` the next chunk is read ahead on a background
    thread while the current chunk is counted (double buffering); counts
    and charges are again identical.
    """
    counts = np.zeros(units.n_units, dtype=np.int64)
    if units.n_units == 0:
        return counts
    if binned is not None:
        if source is not None:
            expected = (source.n_records if stop is None else stop) - start
            if binned.n_records != expected:
                raise DataError(
                    f"binned store holds {binned.n_records} records but the "
                    f"rank's block has {expected}")
        return _populate_binned(binned, comm, grid, units, chunk_records,
                                counts, retry, prefetch)
    matchers = build_matchers(units, grid)
    per_record_cost = units.n_units * units.level
    for chunk in charged_chunks(source, comm, chunk_records, start, stop,
                                retry=retry, prefetch=prefetch):
        comm.charge_cells(chunk.shape[0] * per_record_cost)
        bin_idx = grid.locate_records(chunk)
        _count_with_matchers(matchers, bin_idx, counts)
    return counts


def populate_global(source: DataSource | None, comm: Comm, grid: Grid,
                    units: UnitTable, chunk_records: int,
                    start: int = 0, stop: int | None = None,
                    retry: RetryPolicy | None = None, *,
                    binned: BinnedStore | None = None,
                    prefetch: bool = False,
                    overlap: "Callable[[], None] | None" = None
                    ) -> np.ndarray:
    """Global CDU counts: local pass + sum Reduce (§4.1).

    ``overlap``, when given, is run on a background thread concurrently
    with the counts reduce and joined before this returns — the driver
    uses it to pack the level's join key material while the collective
    drains.  It must touch neither the communicator nor the source (pure
    compute); any exception it raises propagates here.
    """
    local = populate_local(source, comm, grid, units, chunk_records,
                           start, stop, retry, binned=binned,
                           prefetch=prefetch)
    if overlap is None:
        return comm.allreduce(local, op="sum")
    with ThreadPoolExecutor(max_workers=1,
                            thread_name_prefix="repro-overlap") as pool:
        background = pool.submit(overlap)
        try:
            total = comm.allreduce(local, op="sum")
        finally:
            background.result()  # join; surface overlap failures
    return total
