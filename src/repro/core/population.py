"""CDU population: the data pass that counts records per candidate unit.

"The algorithm spends most of its time in making a pass over the data
and finding out the dense units among the candidate dense units" (§4) —
this is the data-parallel heart of pMAFIA: every rank streams its N/p
local records in chunks of B and increments the histogram count of each
CDU a record falls in; a sum-Reduce yields global counts.

Implementation: records are first mapped to per-dimension bin indices
(one ``searchsorted`` per column), then CDUs are grouped by subspace and
records matched by mixed-radix subspace keys — O(B·k) per subspace
instead of O(B·Ncdu·k) naive masking.  The simulated-time backend is
charged the naive per-CDU cost (what the paper's per-record scan on the
SP2 paid), keeping virtual runtimes faithful to the measured system.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..io.chunks import DataSource, charged_chunks
from ..io.resilient import RetryPolicy
from ..parallel.comm import Comm
from ..types import Grid
from .units import UnitTable

#: keys are int64; fall back to row-matching when the radix product
#: would overflow
_KEY_LIMIT = 2**62


class _SubspaceMatcher:
    """Pre-computed matching state for the units of one subspace."""

    def __init__(self, dims: tuple[int, ...], rows: np.ndarray,
                 units: UnitTable, grid: Grid) -> None:
        self.dims = np.asarray(dims, dtype=np.int64)
        self.rows = rows                      # indices into the CDU table
        bins = units.bins[rows][:, :].astype(np.int64)
        radices = np.array([grid[d].nbins for d in dims], dtype=np.int64)
        product = 1
        for r in radices:
            product *= int(r)
            if product >= _KEY_LIMIT:
                break
        self.overflow = product >= _KEY_LIMIT
        if self.overflow:
            # rare: fall back to per-unit column masks
            self.unit_bins = bins
            return
        self.radices = radices
        keys = self._keys(bins)
        order = np.argsort(keys)
        self.sorted_keys = keys[order]
        self.order = order

    def _keys(self, idx: np.ndarray) -> np.ndarray:
        key = idx[:, 0].astype(np.int64)
        for j in range(1, idx.shape[1]):
            key = key * self.radices[j] + idx[:, j]
        return key

    def count_chunk(self, bin_idx: np.ndarray, counts: np.ndarray) -> None:
        """Add this chunk's matches into ``counts`` (full CDU-table length)."""
        sub = bin_idx[:, self.dims]
        if self.overflow:
            for local, row in enumerate(self.rows):
                mask = np.all(sub == self.unit_bins[local], axis=1)
                counts[row] += int(mask.sum())
            return
        rec_keys = self._keys(sub)
        pos = np.searchsorted(self.sorted_keys, rec_keys)
        pos_clipped = np.minimum(pos, len(self.sorted_keys) - 1)
        hit = self.sorted_keys[pos_clipped] == rec_keys
        if hit.any():
            local_counts = np.bincount(pos_clipped[hit],
                                       minlength=len(self.sorted_keys))
            np.add.at(counts, self.rows[self.order], local_counts)


def build_matchers(units: UnitTable, grid: Grid) -> list[_SubspaceMatcher]:
    """One matcher per distinct subspace of the unit table."""
    if units.n_units and int(units.dims.max()) >= grid.ndim:
        raise DataError("unit table references dimensions beyond the grid")
    return [
        _SubspaceMatcher(dims, rows, units, grid)
        for dims, rows in units.group_by_subspace().items()
    ]


def populate_local(source: DataSource, comm: Comm, grid: Grid,
                   units: UnitTable, chunk_records: int,
                   start: int = 0, stop: int | None = None,
                   retry: RetryPolicy | None = None) -> np.ndarray:
    """Counts of this rank's local records per CDU (one data pass).

    ``start``/``stop`` select the rank's block when the source holds the
    full data set (in-memory SPMD); a staged local file is passed whole.
    """
    counts = np.zeros(units.n_units, dtype=np.int64)
    if units.n_units == 0:
        return counts
    matchers = build_matchers(units, grid)
    per_record_cost = units.n_units * units.level
    for chunk in charged_chunks(source, comm, chunk_records, start, stop,
                                retry=retry):
        comm.charge_cells(chunk.shape[0] * per_record_cost)
        bin_idx = grid.locate_records(chunk)
        for matcher in matchers:
            matcher.count_chunk(bin_idx, counts)
    return counts


def populate_global(source: DataSource, comm: Comm, grid: Grid,
                    units: UnitTable, chunk_records: int,
                    start: int = 0, stop: int | None = None,
                    retry: RetryPolicy | None = None) -> np.ndarray:
    """Global CDU counts: local pass + sum Reduce (§4.1)."""
    local = populate_local(source, comm, grid, units, chunk_records,
                           start, stop, retry)
    return comm.allreduce(local, op="sum")
