"""CDU population: the data pass that counts records per candidate unit.

"The algorithm spends most of its time in making a pass over the data
and finding out the dense units among the candidate dense units" (§4) —
this is the data-parallel heart of pMAFIA: every rank streams its N/p
local records in chunks of B and increments the histogram count of each
CDU a record falls in; a sum-Reduce yields global counts.

Three engines share this module, selected by what the caller staged:

* **Float path** (``binned=None``, ``indexed=None``): records are
  mapped to per-dimension bin indices (one ``searchsorted`` per
  column), then CDUs are grouped by subspace and records matched by
  mixed-radix subspace keys — O(B·k) per subspace instead of
  O(B·Ncdu·k) naive masking.  Matchers are visited in lexicographic
  subspace order so Horner key folds are shared between subspaces with
  a common dim prefix: the level-k fold for ``(d0..dk)`` reuses the
  cached level-(k-1) fold for ``(d0..dk-1)`` instead of restarting
  from column 0.

* **Bitmap path** (``binned`` given): the staged uint8/uint16 columns
  are turned into packed per-(dim, bin) membership bitmaps once per
  chunk (``np.packbits`` of ``col == b``, built only for pairs some CDU
  references) and each CDU's count is the popcount of the AND of its k
  bitmaps, batched across CDUs.  Per chunk this is one byte-wide AND +
  popcount per CDU — no per-record keys at all — and skips
  ``locate_records`` because the store did it once at staging time.

* **Indexed path** (``indexed`` given): the per-chunk ``packbits`` of
  the bitmap path is itself redundant across levels — the same
  (dim, bin) memberships are re-packed at every level.  An
  :class:`IndexedPopulator` wraps the persistent
  :class:`~repro.io.bitmap_index.BitmapIndex` staged once after grid
  construction and serves every pass as pure AND + popcount over the
  cached full-length bitmaps, with **zero data reads**.  CDUs are
  visited in lexicographic subspace order so the level-k accumulator
  for ``(d0..dk)`` reuses the AND for ``(d0..dk-1)`` (a stack within
  the pass, an LRU prefix memo across passes — level-(k+1) CDUs extend
  level-k dense units, so the previous pass's leaves are this pass's
  prefixes).  The AND/popcount loop optionally tiles across an
  intra-rank thread pool (numpy releases the GIL); counts are exact
  integers, so threading never changes results.

All engines produce bit-identical counts.  The simulated-time backend
is charged the naive per-CDU cost (what the paper's per-record scan on
the SP2 paid) and float-width I/O either way — the indexed engine
*replays* the exact per-chunk charge sequence of the streaming engines
without performing the reads — keeping virtual runtimes faithful to
the measured system and independent of the engine.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

import numpy as np

from ..errors import DataError
from ..io.binned import RECORD_ITEMSIZE, BinnedStore, grid_fingerprint
from ..io.bitmap_index import DEFAULT_BITMAP_BUDGET, BitmapIndex
from ..io.chunks import DataSource, charged_chunks
from ..io.resilient import RetryPolicy
from ..parallel.comm import Comm
from ..types import Grid
from .units import UnitTable

#: keys are int64; fall back to row-matching when the radix product
#: would overflow
_KEY_LIMIT = 2**62

#: CDUs ANDed per batched bitmap gather — bounds the (batch, k, n/8)
#: gather scratch while keeping the popcount loop out of Python
_UNIT_BATCH = 512

#: past this many bitmap bytes per chunk the bitmap engine would thrash
#: cache for sparse unit tables; fall back to keyed matching instead
_BITMAP_BYTE_CAP = 1 << 27

_POPCOUNT8 = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(axis=1)

# numpy >= 2.0 has a native popcount ufunc; resolve the dispatch once
# at import instead of per AND/popcount batch
if hasattr(np, "bitwise_count"):
    def _popcount_rows(acc: np.ndarray) -> np.ndarray:
        """Per-row popcounts of a ``(rows, nbytes)`` packed matrix."""
        nbytes = acc.shape[-1]
        if nbytes and nbytes % 8 == 0 and acc.flags.c_contiguous:
            # 8x fewer elements for the sum's uint->int64 promotion
            return np.bitwise_count(acc.view(np.uint64)) \
                .sum(axis=1, dtype=np.int64)
        return np.bitwise_count(acc).sum(axis=1, dtype=np.int64)

    def _popcount_row(acc: np.ndarray) -> int:
        """Popcount of one packed bitmap row."""
        head = acc.nbytes & ~7
        if head and acc.flags.c_contiguous:
            total = int(np.bitwise_count(
                acc[:head].view(np.uint64)).sum(dtype=np.int64))
            if acc.nbytes != head:
                total += int(np.bitwise_count(
                    acc[head:]).sum(dtype=np.int64))
            return total
        return int(np.bitwise_count(acc).sum(dtype=np.int64))
else:
    def _popcount_rows(acc: np.ndarray) -> np.ndarray:
        """Per-row popcounts of a ``(rows, nbytes)`` packed matrix."""
        return _POPCOUNT8[acc].sum(axis=1, dtype=np.int64)

    def _popcount_row(acc: np.ndarray) -> int:
        """Popcount of one packed bitmap row."""
        return int(_POPCOUNT8[acc].sum(dtype=np.int64))


class _SubspaceMatcher:
    """Pre-computed matching state for the units of one subspace."""

    def __init__(self, dims: tuple[int, ...], rows: np.ndarray,
                 units: UnitTable, grid: Grid) -> None:
        self.dims = np.asarray(dims, dtype=np.int64)
        self.dims_t = tuple(int(d) for d in dims)
        self.rows = rows                      # indices into the CDU table
        bins = units.bins[rows][:, :].astype(np.int64)
        self.radices = np.array([grid[d].nbins for d in dims], dtype=np.int64)
        product = 1
        for r in self.radices:
            product *= int(r)
            if product >= _KEY_LIMIT:
                break
        self.overflow = product >= _KEY_LIMIT
        if self.overflow:
            # rare: fall back to per-unit column matching
            self.unit_bins = bins
            return
        keys = self._keys(bins)
        order = np.argsort(keys)
        self.sorted_keys = keys[order]
        self.order = order
        # counts[mapped_rows] += hist is a permutation (unit keys are
        # unique within a subspace), so plain fancy-index assignment
        # replaces the unbuffered np.add.at scatter
        self.mapped_rows = rows[order]

    def _keys(self, idx: np.ndarray) -> np.ndarray:
        key = idx[:, 0].astype(np.int64)
        for j in range(1, idx.shape[1]):
            key = key * self.radices[j] + idx[:, j]
        return key

    def _subspace_columns(self, bin_idx: np.ndarray) -> np.ndarray:
        if bin_idx.shape[1] == len(self.dims_t):
            # dims are strictly increasing, so covering every column
            # means the identity selection — skip the fancy-index copy
            return bin_idx
        return bin_idx[:, self.dims]

    def count_chunk(self, bin_idx: np.ndarray, counts: np.ndarray) -> None:
        """Add this chunk's matches into ``counts`` (full CDU-table length)."""
        sub = self._subspace_columns(bin_idx)
        if self.overflow:
            self._count_overflow(sub, counts)
            return
        self.count_keys(self._keys(sub), counts)

    def _count_overflow(self, sub: np.ndarray, counts: np.ndarray) -> None:
        # narrow the candidate set column by column and stop at the
        # first empty intersection instead of building a full
        # (rows, k) equality mask per unit
        for local, row in enumerate(self.rows):
            target = self.unit_bins[local]
            cand = np.flatnonzero(sub[:, 0] == target[0])
            for j in range(1, sub.shape[1]):
                if cand.size == 0:
                    break
                cand = cand[sub[cand, j] == target[j]]
            counts[row] += int(cand.size)

    def count_keys(self, rec_keys: np.ndarray, counts: np.ndarray) -> None:
        """Match pre-folded record keys against this subspace's units."""
        pos = np.searchsorted(self.sorted_keys, rec_keys)
        np.minimum(pos, len(self.sorted_keys) - 1, out=pos)
        hit = self.sorted_keys[pos] == rec_keys
        if hit.any():
            local_counts = np.bincount(pos[hit],
                                       minlength=len(self.sorted_keys))
            counts[self.mapped_rows] += local_counts


def build_matchers(units: UnitTable, grid: Grid) -> list[_SubspaceMatcher]:
    """One matcher per distinct subspace, in lexicographic dim order so
    consecutive matchers share key-fold prefixes."""
    if units.n_units and int(units.dims.max()) >= grid.ndim:
        raise DataError("unit table references dimensions beyond the grid")
    return [
        _SubspaceMatcher(dims, rows, units, grid)
        for dims, rows in sorted(units.group_by_subspace().items())
    ]


def _count_with_matchers(matchers: list[_SubspaceMatcher],
                         bin_idx: np.ndarray,
                         counts: np.ndarray) -> None:
    """Run one chunk through every matcher, reusing Horner fold
    prefixes between consecutive (lexicographically sorted) subspaces.

    The stack holds at most k live key arrays — the folds along the
    current subspace's dim prefix — so sharing costs O(k·B) transient
    memory, never one cached array per subspace.
    """
    stack_dims: list[int] = []
    stack_keys: list[np.ndarray] = []
    for m in matchers:
        if m.overflow:
            m.count_chunk(bin_idx, counts)
            continue
        dims_t = m.dims_t
        keep = 0
        limit = min(len(stack_dims), len(dims_t))
        while keep < limit and stack_dims[keep] == dims_t[keep]:
            keep += 1
        del stack_dims[keep:], stack_keys[keep:]
        for j in range(keep, len(dims_t)):
            col = bin_idx[:, dims_t[j]]
            if j == 0:
                key = col.astype(np.int64)
            else:
                key = stack_keys[j - 1] * m.radices[j] + col
            stack_dims.append(dims_t[j])
            stack_keys.append(key)
        m.count_keys(stack_keys[-1], counts)


class _BitmapCounter:
    """Batched bitmap-AND population over staged bin-index columns.

    For each (dim, bin) pair some CDU references, one packed membership
    bitmap is built per chunk; a CDU's count is then the popcount of
    the AND of its k bitmaps.  ``np.packbits`` pads the last byte with
    zero bits, which AND/popcount ignore, so partial chunks need no
    special casing.

    The bitmap matrix and the (batch, k, nbytes) gather / (batch,
    nbytes) accumulator scratch persist across chunks and batches —
    every chunk of a level pass has the same width except the last, so
    the counter allocates once per pass instead of once per
    ``count_columns`` call (and once more per unit batch).
    """

    def __init__(self, units: UnitTable, grid: Grid) -> None:
        nbins = np.array([grid[d].nbins for d in range(grid.ndim)],
                         dtype=np.int64)
        offsets = np.zeros(grid.ndim + 1, dtype=np.int64)
        np.cumsum(nbins, out=offsets[1:])
        flat = offsets[units.dims.astype(np.int64)] \
            + units.bins.astype(np.int64)
        self.used = np.unique(flat)           # referenced (dim, bin) pairs
        self.unit_rows = np.searchsorted(self.used, flat)  # (n_units, k)
        self.used_dims = np.searchsorted(offsets, self.used,
                                         side="right") - 1
        self.used_bins = self.used - offsets[self.used_dims]
        self._bitmaps: np.ndarray | None = None
        self._gather: np.ndarray | None = None
        self._acc: np.ndarray | None = None

    def bitmap_nbytes(self, rows: int) -> int:
        return len(self.used) * (-(-rows // 8))

    def _scratch(self, row_bytes: int) -> np.ndarray:
        """The persistent per-pass scratch, (re)sized for this chunk
        width (only the final partial chunk ever differs)."""
        if self._bitmaps is None or self._bitmaps.shape[1] != row_bytes:
            self._bitmaps = np.empty((len(self.used), row_bytes),
                                     dtype=np.uint8)
            batch = max(1, min(_UNIT_BATCH, self.unit_rows.shape[0]))
            self._gather = np.empty(
                (batch, self.unit_rows.shape[1], row_bytes), dtype=np.uint8)
            self._acc = np.empty((batch, row_bytes), dtype=np.uint8)
        return self._bitmaps

    def count_columns(self, cols: np.ndarray, counts: np.ndarray) -> None:
        """Add one ``(n_dims, rows)`` column block's matches to ``counts``."""
        bitmaps = self._scratch(-(-cols.shape[1] // 8))
        for i in range(len(self.used)):
            bitmaps[i] = np.packbits(
                cols[self.used_dims[i]] == self.used_bins[i])
        n_units = self.unit_rows.shape[0]
        for lo in range(0, n_units, _UNIT_BATCH):
            n = min(_UNIT_BATCH, n_units - lo)
            gathered = self._gather[:n]
            np.take(bitmaps, self.unit_rows[lo:lo + n], axis=0,
                    out=gathered)
            acc = self._acc[:n]
            np.bitwise_and.reduce(gathered, axis=1, out=acc)
            counts[lo:lo + n] += _popcount_rows(acc)


class _PrefixMemo:
    """Byte-bounded LRU of prefix AND accumulators, keyed by the tuple
    of flat (dim, bin) pair ids along a lexicographic subspace prefix.

    Shared by all compute threads of an :class:`IndexedPopulator` and
    kept across level passes — a level-(k+1) CDU's k-prefix is a
    level-k dense unit whose accumulator the previous pass cached.
    Entries are immutable (readers AND them into fresh arrays), so a
    cheap lock around the bookkeeping is the only synchronisation.
    """

    def __init__(self, byte_budget: int) -> None:
        self.byte_budget = max(0, int(byte_budget))
        self._entries: OrderedDict[tuple[int, ...], np.ndarray] = \
            OrderedDict()
        self._nbytes = 0
        self._lock = threading.Lock()

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple[int, ...]) -> np.ndarray | None:
        with self._lock:
            acc = self._entries.get(key)
            if acc is not None:
                self._entries.move_to_end(key)
            return acc

    def put(self, key: tuple[int, ...], acc: np.ndarray) -> None:
        if acc.nbytes > self.byte_budget:
            return
        acc.setflags(write=False)
        with self._lock:
            prev = self._entries.pop(key, None)
            if prev is not None:
                self._nbytes -= prev.nbytes
            self._entries[key] = acc
            self._nbytes += acc.nbytes
            while self._nbytes > self.byte_budget:
                _, old = self._entries.popitem(last=False)
                self._nbytes -= old.nbytes


class _PassStats:
    """Mutable per-segment tally, merged on the main thread."""

    __slots__ = ("hits", "misses", "and_ops")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.and_ops = 0


class IndexedPopulator:
    """Population served from a persistent bitmap index: every pass is
    AND + popcount over cached bitmaps, no data reads at all.

    One instance lives for the whole run (the memo spans level passes);
    the driver closes it when the lattice loop ends.  ``counts`` are
    exact integer popcounts of deterministic AND chains, so they are
    bit-identical to the streaming engines' for any thread count and
    any memo state.
    """

    def __init__(self, index: BitmapIndex, *,
                 budget: int = DEFAULT_BITMAP_BUDGET,
                 compute_threads: int = 1) -> None:
        self.index = index
        # the resident index and the memo share one byte budget; a
        # spilled (mmap) index leaves the whole budget to the memo
        memo_budget = budget - (index.nbytes if index.resident else 0)
        self.memo = _PrefixMemo(memo_budget)
        self.compute_threads = max(1, int(compute_threads))
        self._pool: ThreadPoolExecutor | None = None
        self._grid_ok: bool = False

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "IndexedPopulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the pass ---------------------------------------------------------
    def _check_grid(self, grid: Grid) -> None:
        if self._grid_ok:
            return
        if grid.ndim != self.index.n_dims or \
                grid_fingerprint(grid) != self.index.grid_hash:
            raise DataError(
                "bitmap index was built for a different grid; restage it")
        self._grid_ok = True

    def populate_local(self, comm: Comm, grid: Grid, units: UnitTable,
                       chunk_records: int, counts: np.ndarray,
                       order: np.ndarray | None = None) -> np.ndarray:
        """This rank's counts per CDU, straight off the index.

        The virtual clock is charged the streaming engines' exact
        per-chunk sequence (float-width I/O, then the naive per-CDU
        cell cost) over the same chunk boundaries — same additions in
        the same order, so simulated times are bit-identical to a pass
        that actually read the data.  ``order`` forwards a precomputed
        lexicographic unit permutation to :meth:`_count`.
        """
        if chunk_records <= 0:
            raise DataError(
                f"chunk_records must be positive, got {chunk_records}")
        self._check_grid(grid)
        index = self.index
        per_record_cost = units.n_units * units.level
        obs = getattr(comm, "obs", None)
        for lo in range(0, index.n_records, chunk_records):
            rows = min(chunk_records, index.n_records - lo)
            nbytes = rows * index.n_dims * RECORD_ITEMSIZE
            comm.charge_io(nbytes, chunks=1)
            if obs is not None:
                obs.io_chunk(rows, nbytes, kind="indexed")
            comm.charge_cells(rows * per_record_cost)
        stats = self._count(units, counts, order=order)
        if obs is not None:
            obs.indexed_pass(units.n_units, stats.hits, stats.misses,
                             stats.and_ops, self.memo.nbytes)
        return counts

    def _count(self, units: UnitTable, counts: np.ndarray,
               order: np.ndarray | None = None) -> _PassStats:
        pairs = self.index.pair_ids(units.dims, units.bins)
        k = pairs.shape[1]
        # lexicographic subspace order maximises shared prefixes; the
        # np.array_split segments stay contiguous runs of that order,
        # so each thread keeps its own intra-segment prefix stack.
        # ``order`` may pass the identical permutation precomputed from
        # the dedup phase's packed token keys (pair ids are monotone in
        # the (dim, bin) tokens, so the two sorts agree row for row) —
        # the shared-prefix walk below is the same either way.
        if order is None:
            order = np.lexsort(
                tuple(pairs[:, j] for j in range(k - 1, -1, -1)))
        total = _PassStats()
        if self.compute_threads == 1 or units.n_units < 2:
            self._count_segment(pairs, order, counts, total)
            return total
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.compute_threads,
                thread_name_prefix="repro-index")
        segments = [seg for seg in
                    np.array_split(order, self.compute_threads) if len(seg)]
        stats = [_PassStats() for _ in segments]
        futures: list[Future] = [
            self._pool.submit(self._count_segment, pairs, seg, counts, st)
            for seg, st in zip(segments, stats)]
        for future in futures:
            future.result()
        for st in stats:
            total.hits += st.hits
            total.misses += st.misses
            total.and_ops += st.and_ops
        return total

    def _count_segment(self, pairs: np.ndarray, seg: np.ndarray,
                       counts: np.ndarray, stats: _PassStats) -> None:
        """Count one contiguous run of the lexicographic unit order.

        ``stack_accs[j]`` is the AND of the bitmaps along the current
        path's first ``j + 1`` pairs — or ``None`` when a memo seed
        jumped straight to a deeper prefix and the intermediate
        accumulators were never materialised (holes are recomputed
        only if a later truncation exposes them).
        """
        index = self.index
        memo = self.memo
        k = pairs.shape[1]
        stack_pairs: list[int] = []
        stack_accs: list[np.ndarray | None] = []
        # leaf accumulators are popcounted in batches: one vectorised
        # count over (batch, row_bytes) replaces a per-unit
        # ufunc-dispatch round trip
        batch = max(1, min(_UNIT_BATCH, len(seg)))
        scratch = np.empty((batch, index.row_bytes), dtype=np.uint8)
        pend_rows = np.empty(batch, dtype=np.int64)
        n_pend = 0
        for row_i in seg:
            row = pairs[row_i].tolist()     # plain ints: one C call
            keep = 0
            limit = len(stack_pairs)
            while keep < limit and stack_pairs[keep] == row[keep]:
                keep += 1
            del stack_pairs[keep:], stack_accs[keep:]
            # deepest kept depth whose accumulator is materialised
            best = keep
            while best > 0 and stack_accs[best - 1] is None:
                best -= 1
            # probe the memo for a prefix deeper than anything on the
            # stack (depth-1 "prefixes" are raw index rows, never cached)
            for plen in range(k - 1, max(best, 1), -1):
                cached = memo.get(tuple(row[:plen]))
                if cached is None:
                    stats.misses += 1
                    continue
                stats.hits += 1
                while len(stack_pairs) < plen:
                    stack_pairs.append(row[len(stack_pairs)])
                    stack_accs.append(None)
                stack_accs[plen - 1] = cached
                best = plen
                break
            acc = stack_accs[best - 1] if best else None
            for j in range(best, k):
                pair = row[j]
                bitmap = index.bitmap(pair)
                if acc is None:
                    acc = bitmap       # depth 1: a read-only index view
                else:
                    acc = acc & bitmap
                    stats.and_ops += 1
                if j < len(stack_pairs):
                    stack_pairs[j] = pair
                    stack_accs[j] = acc
                else:
                    stack_pairs.append(pair)
                    stack_accs.append(acc)
            if n_pend == batch:
                counts[pend_rows] = _popcount_rows(scratch)
                n_pend = 0
            scratch[n_pend] = acc
            pend_rows[n_pend] = row_i
            n_pend += 1
            if k >= 2:
                # the leaf is the next level's prefix (level-(k+1) CDUs
                # extend level-k dense units)
                memo.put(tuple(row), acc)
        if n_pend:
            counts[pend_rows[:n_pend]] = _popcount_rows(scratch[:n_pend])


def count_units(index: BitmapIndex, units: UnitTable,
                out: np.ndarray | None = None) -> np.ndarray:
    """Exact per-unit record counts straight off a bitmap index.

    The standalone cousin of :class:`IndexedPopulator`: same AND chains
    in the same lexicographic order, but no communicator, no virtual
    clock charges and no cross-call memo — a pure function of
    ``(index, units)``.  The streaming engine counts each window
    segment's local index with this and sums the per-segment integers,
    which equals a single count over the concatenated records because
    popcounts are additive over any row partition.
    """
    counts = np.zeros(units.n_units, dtype=np.int64) if out is None else out
    if out is not None:
        counts[:] = 0
    if units.n_units == 0 or index.n_records == 0:
        return counts
    pairs = index.pair_ids(units.dims, units.bins)
    k = pairs.shape[1]
    order = np.lexsort(tuple(pairs[:, j] for j in range(k - 1, -1, -1)))
    stack_pairs: list[int] = []
    stack_accs: list[np.ndarray] = []
    batch = max(1, min(_UNIT_BATCH, units.n_units))
    scratch = np.empty((batch, index.row_bytes), dtype=np.uint8)
    pend_rows = np.empty(batch, dtype=np.int64)
    n_pend = 0
    for row_i in order:
        row = pairs[row_i].tolist()
        keep = 0
        limit = len(stack_pairs)
        while keep < limit and stack_pairs[keep] == row[keep]:
            keep += 1
        del stack_pairs[keep:], stack_accs[keep:]
        acc = stack_accs[keep - 1] if keep else None
        for j in range(keep, k):
            pair = row[j]
            bitmap = index.bitmap(pair)
            acc = bitmap if acc is None else acc & bitmap
            stack_pairs.append(pair)
            stack_accs.append(acc)
        if n_pend == batch:
            counts[pend_rows] = _popcount_rows(scratch)
            n_pend = 0
        scratch[n_pend] = acc
        pend_rows[n_pend] = row_i
        n_pend += 1
    if n_pend:
        counts[pend_rows[:n_pend]] = _popcount_rows(scratch[:n_pend])
    return counts


class OverlapRunner:
    """One long-lived background worker for compute/collective overlap.

    The driver keeps a single runner for the whole run instead of
    building a fresh ``ThreadPoolExecutor`` every level; the worker
    thread is started lazily on first :meth:`submit` and joined by
    :meth:`close` (or the context manager exit)."""

    def __init__(self) -> None:
        self._pool: ThreadPoolExecutor | None = None

    def submit(self, fn: Callable[[], None]) -> Future:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-overlap")
        return self._pool.submit(fn)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "OverlapRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _populate_binned(binned: BinnedStore, comm: Comm, grid: Grid,
                     units: UnitTable, chunk_records: int,
                     counts: np.ndarray,
                     retry: RetryPolicy | None,
                     prefetch: bool = False) -> np.ndarray:
    if binned.n_dims != grid.ndim:
        raise DataError(
            f"binned store has {binned.n_dims} dimensions, grid has "
            f"{grid.ndim}")
    per_record_cost = units.n_units * units.level
    counter = _BitmapCounter(units, grid)
    rows = min(chunk_records, binned.n_records)
    use_bitmaps = counter.bitmap_nbytes(rows) <= _BITMAP_BYTE_CAP
    matchers = None if use_bitmaps else build_matchers(units, grid)
    for cols in binned.charged_chunks(comm, chunk_records, retry=retry,
                                      prefetch=prefetch):
        comm.charge_cells(cols.shape[1] * per_record_cost)
        if use_bitmaps:
            counter.count_columns(cols, counts)
        else:
            bin_idx = np.ascontiguousarray(cols.T).astype(np.int64)
            _count_with_matchers(matchers, bin_idx, counts)
    return counts


def populate_local(source: DataSource | None, comm: Comm, grid: Grid,
                   units: UnitTable, chunk_records: int,
                   start: int = 0, stop: int | None = None,
                   retry: RetryPolicy | None = None, *,
                   binned: BinnedStore | None = None,
                   indexed: IndexedPopulator | None = None,
                   prefetch: bool = False,
                   order: np.ndarray | None = None) -> np.ndarray:
    """Counts of this rank's local records per CDU (one data pass).

    ``start``/``stop`` select the rank's block when the source holds the
    full data set (in-memory SPMD); a staged local file is passed whole.
    With ``binned`` given the pass streams the staged bin-index store
    (which must cover exactly this rank's ``[start, stop)`` block)
    through the bitmap engine instead of re-reading and re-locating the
    float records; counts and simulated-time charges are identical.
    With ``indexed`` given (takes precedence) the pass is served from
    the persistent bitmap index with no data reads at all, replaying
    the identical charge sequence.  With ``prefetch`` the streaming
    engines read the next chunk ahead on a background thread (double
    buffering); counts and charges are again identical.
    """
    counts = np.zeros(units.n_units, dtype=np.int64)
    if units.n_units == 0:
        return counts
    if indexed is not None:
        if source is not None:
            expected = (source.n_records if stop is None else stop) - start
            if indexed.index.n_records != expected:
                raise DataError(
                    f"bitmap index holds {indexed.index.n_records} records "
                    f"but the rank's block has {expected}")
        return indexed.populate_local(comm, grid, units, chunk_records,
                                      counts, order=order)
    if binned is not None:
        if source is not None:
            expected = (source.n_records if stop is None else stop) - start
            if binned.n_records != expected:
                raise DataError(
                    f"binned store holds {binned.n_records} records but the "
                    f"rank's block has {expected}")
        return _populate_binned(binned, comm, grid, units, chunk_records,
                                counts, retry, prefetch)
    matchers = build_matchers(units, grid)
    per_record_cost = units.n_units * units.level
    for chunk in charged_chunks(source, comm, chunk_records, start, stop,
                                retry=retry, prefetch=prefetch):
        comm.charge_cells(chunk.shape[0] * per_record_cost)
        bin_idx = grid.locate_records(chunk)
        _count_with_matchers(matchers, bin_idx, counts)
    return counts


def populate_global(source: DataSource | None, comm: Comm, grid: Grid,
                    units: UnitTable, chunk_records: int,
                    start: int = 0, stop: int | None = None,
                    retry: RetryPolicy | None = None, *,
                    binned: BinnedStore | None = None,
                    indexed: IndexedPopulator | None = None,
                    prefetch: bool = False,
                    overlap: "Callable[[], None] | None" = None,
                    runner: OverlapRunner | None = None,
                    order: np.ndarray | None = None) -> np.ndarray:
    """Global CDU counts: local pass + sum Reduce (§4.1).

    ``overlap``, when given, is run on a background thread concurrently
    with the counts reduce and joined before this returns — the driver
    uses it to pack the level's join key material while the collective
    drains.  It must touch neither the communicator nor the source (pure
    compute); any exception it raises propagates here — unless the
    collective itself fails, in which case the collective's exception
    is primary and the overlap worker is drained silently (a dying
    collective routinely takes the overlap down with it; its secondary
    error must not mask the root cause).  ``runner`` supplies the
    long-lived overlap worker; without one a temporary worker is built
    and torn down inside this call.
    """
    local = populate_local(source, comm, grid, units, chunk_records,
                           start, stop, retry, binned=binned,
                           indexed=indexed, prefetch=prefetch, order=order)
    if overlap is None:
        return comm.allreduce(local, op="sum")
    owned = OverlapRunner() if runner is None else None
    try:
        background = (owned or runner).submit(overlap)
        try:
            total = comm.allreduce(local, op="sum")
        except BaseException:
            try:
                background.result()
            except BaseException:
                pass
            raise
        background.result()  # join; surface overlap failures
        return total
    finally:
        if owned is not None:
            owned.close()
