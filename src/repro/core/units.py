"""Unit tables: the paper's flat byte arrays of candidate/dense units.

"Each candidate dense unit (CDU) and, similarly a dense unit, in the
k-th dimension is completely specified by the k dimensions of the unit
and their corresponding k bin indices.  In our implementation we store
this information in the form of an array of bytes, one array for the bin
indices of all the CDUs and one for the CDU dimensions." (§4.2)

A :class:`UnitTable` holds ``n`` units of one level ``k`` as two
``(n, k)`` uint8 arrays — ``dims`` (sorted per row) and ``bins`` — plus
helpers for canonical ordering, messaging (``tobytes``/``frombytes``)
and per-subspace grouping.

The byte layout doubles as *key material*: every (dim, bin) cell packs
into one uint16 token (``dim << 8 | bin``, :meth:`UnitTable.tokens`),
and a row of ``k`` tokens packs into ``ceil(k/4)`` uint64 words
(:func:`pack_tokens`).  Equal rows ⇔ equal words, so whole-unit
grouping (repeat elimination) and sub-signature grouping (the hash
join in :mod:`repro.core.candidates`) both reduce to one vectorised
sort over small integer keys instead of pairwise row comparisons.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import DataError

#: dims and bins are bytes, as in the paper — so at most 256 of each
MAX_DIMS = 256
MAX_BINS = 256

_HEADER = struct.Struct("<qq")  # n_units, level


@dataclass(frozen=True)
class UnitTable:
    """``n`` units of dimensionality ``k``.

    ``dims[i]`` is the sorted tuple of dimensions of unit ``i`` and
    ``bins[i, j]`` the bin index of unit ``i`` in dimension ``dims[i, j]``.
    """

    dims: np.ndarray
    bins: np.ndarray

    def __post_init__(self) -> None:
        dims = np.ascontiguousarray(np.asarray(self.dims, dtype=np.uint8))
        bins = np.ascontiguousarray(np.asarray(self.bins, dtype=np.uint8))
        if dims.ndim != 2 or bins.shape != dims.shape:
            raise DataError(
                f"dims/bins must be matching 2-D arrays, got "
                f"{dims.shape} and {bins.shape}")
        if dims.shape[1] == 0 and dims.shape[0] > 0:
            raise DataError("units must span at least one dimension")
        if dims.shape[1] > 1 and dims.shape[0] > 0:
            if not (np.diff(dims.astype(np.int16), axis=1) > 0).all():
                raise DataError("unit dimensions must be strictly increasing")
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "bins", bins)

    # -- construction ------------------------------------------------------
    @classmethod
    def empty(cls, level: int) -> "UnitTable":
        """A table of zero units at dimensionality ``level``."""
        if level < 1:
            raise DataError(f"level must be >= 1, got {level}")
        return cls(dims=np.empty((0, level), dtype=np.uint8),
                   bins=np.empty((0, level), dtype=np.uint8))

    @classmethod
    def from_pairs(cls, units: Sequence[Sequence[tuple[int, int]]]) -> "UnitTable":
        """Build from an iterable of ``[(dim, bin), ...]`` units (each is
        sorted by dimension automatically)."""
        if not units:
            raise DataError("from_pairs needs at least one unit; "
                            "use UnitTable.empty(level) for none")
        level = len(units[0])
        dims = np.empty((len(units), level), dtype=np.uint8)
        bins = np.empty((len(units), level), dtype=np.uint8)
        for i, unit in enumerate(units):
            if len(unit) != level:
                raise DataError("all units must have the same dimensionality")
            for d, b in unit:
                if not 0 <= d < MAX_DIMS or not 0 <= b < MAX_BINS:
                    raise DataError(f"(dim, bin) = ({d}, {b}) out of byte range")
            ordered = sorted(unit)
            dims[i] = [d for d, _ in ordered]
            bins[i] = [b for _, b in ordered]
        return cls(dims=dims, bins=bins)

    # -- basic properties --------------------------------------------------
    @property
    def n_units(self) -> int:
        return int(self.dims.shape[0])

    @property
    def level(self) -> int:
        """Dimensionality ``k`` of every unit in the table."""
        return int(self.dims.shape[1])

    def __len__(self) -> int:
        return self.n_units

    def unit(self, i: int) -> tuple[tuple[int, int], ...]:
        """Unit ``i`` as a tuple of ``(dim, bin)`` pairs."""
        return tuple(zip(self.dims[i].tolist(), self.bins[i].tolist()))

    def __iter__(self) -> Iterator[tuple[tuple[int, int], ...]]:
        for i in range(self.n_units):
            yield self.unit(i)

    # -- row algebra ---------------------------------------------------------
    def _rows(self) -> np.ndarray:
        """(n, 2k) combined rows (dims then bins) for lexicographic ops."""
        return np.concatenate([self.dims, self.bins], axis=1)

    def tokens(self) -> np.ndarray:
        """``(n, k)`` uint16 token matrix: cell ``(i, j)`` is
        ``dims[i, j] << 8 | bins[i, j]``.

        Tokens order like (dim, bin) pairs, so each row is strictly
        increasing (dims are), and two units share a (dim, bin) cell iff
        they share a token — the key material of the sub-signature hash
        join and of packed-key repeat grouping.
        """
        return ((self.dims.astype(np.uint16) << 8)
                | self.bins.astype(np.uint16))

    def select(self, index: np.ndarray) -> "UnitTable":
        """Sub-table of the rows selected by an index or boolean mask."""
        return UnitTable(dims=self.dims[index], bins=self.bins[index])

    def concat(self, other: "UnitTable") -> "UnitTable":
        """Row-wise concatenation (same level required)."""
        if other.n_units == 0:
            return self
        if self.n_units == 0:
            return other
        if other.level != self.level:
            raise DataError(
                f"cannot concat level {other.level} onto level {self.level}")
        return UnitTable(dims=np.concatenate([self.dims, other.dims]),
                         bins=np.concatenate([self.bins, other.bins]))

    @staticmethod
    def concat_all(tables: Sequence["UnitTable"]) -> "UnitTable":
        """Concatenate several tables in order (used by the parent rank to
        splice per-rank CDU fragments together in rank order)."""
        tables = [t for t in tables if t is not None]
        if not tables:
            raise DataError("concat_all needs at least one table")
        out = tables[0]
        for t in tables[1:]:
            out = out.concat(t)
        return out

    def canonical_order(self) -> np.ndarray:
        """Indices that sort units lexicographically by (dims, bins)."""
        rows = self._rows()
        return np.lexsort(tuple(rows[:, c] for c in range(rows.shape[1] - 1, -1, -1)))

    def sort(self) -> "UnitTable":
        """Lexicographically sorted copy (deterministic canonical form)."""
        return self.select(self.canonical_order())

    def repeat_mask(self, words: np.ndarray | None = None) -> np.ndarray:
        """Boolean mask marking every unit that duplicates an
        earlier-indexed unit (the paper's Nrepeat elements).

        Grouping runs over the packed uint64 row keys — the same key
        space the sub-signature hash join sorts — so marking costs one
        integer sort instead of a byte-string ``np.unique`` over the
        2k-wide rows.  ``words`` may pass a precomputed
        ``pack_tokens(self.tokens())`` matrix so a caller that already
        packed the keys (the dedup phase shares them with the populate
        order) pays the pack once.
        """
        if self.n_units == 0:
            return np.zeros(0, dtype=bool)
        if words is None:
            words = pack_tokens(self.tokens())
        return first_occurrence(words) != np.arange(self.n_units)

    def unique(self) -> "UnitTable":
        """Drop repeated units; result is in canonical (sorted) order."""
        if self.n_units == 0:
            return self
        rows = np.unique(self._rows(), axis=0)
        k = self.level
        return UnitTable(dims=rows[:, :k], bins=rows[:, k:])

    def contains_rows(self, other: "UnitTable") -> np.ndarray:
        """For each unit of ``other`` (same level), whether it appears in
        this table."""
        if other.level != self.level:
            raise DataError("level mismatch in contains_rows")
        if self.n_units == 0 or other.n_units == 0:
            return np.zeros(other.n_units, dtype=bool)
        # row-wise membership via searchsorted on the void-key view
        a = row_keys(self.sort()._rows())
        b = row_keys(other._rows())
        pos = np.searchsorted(a, b)
        pos = np.clip(pos, 0, len(a) - 1)
        return a[pos] == b

    # -- grouping ------------------------------------------------------------
    def group_by_subspace(self) -> dict[tuple[int, ...], np.ndarray]:
        """Map each distinct subspace (dims tuple) to the row indices of
        the units living in it."""
        groups: dict[tuple[int, ...], list[int]] = {}
        for i in range(self.n_units):
            groups.setdefault(tuple(self.dims[i].tolist()), []).append(i)
        return {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}

    def subspaces(self) -> list[tuple[int, ...]]:
        """Distinct subspaces present, in first-appearance order."""
        return list(self.group_by_subspace().keys())

    # -- messaging -------------------------------------------------------------
    def tobytes(self) -> bytes:
        """Serialise for a single-message exchange (header + dims + bins)."""
        return (_HEADER.pack(self.n_units, self.level)
                + self.dims.tobytes() + self.bins.tobytes())

    @classmethod
    def frombytes(cls, payload: bytes) -> "UnitTable":
        """Inverse of :meth:`tobytes`."""
        if len(payload) < _HEADER.size:
            raise DataError("unit table payload truncated")
        n, level = _HEADER.unpack_from(payload)
        if n < 0 or level < 1:
            raise DataError(f"bad unit table header ({n}, {level})")
        expected = _HEADER.size + 2 * n * level
        if len(payload) != expected:
            raise DataError(
                f"unit table payload is {len(payload)} bytes, expected {expected}")
        body = np.frombuffer(payload, dtype=np.uint8, offset=_HEADER.size)
        dims = body[:n * level].reshape(n, level).copy()
        bins = body[n * level:].reshape(n, level).copy()
        return cls(dims=dims, bins=bins)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnitTable):
            return NotImplemented
        return (self.dims.shape == other.dims.shape
                and bool(np.array_equal(self.dims, other.dims))
                and bool(np.array_equal(self.bins, other.bins)))

    def __hash__(self) -> int:  # frozen dataclass wants it; tables are big
        return hash((self.dims.shape, self.dims.tobytes(), self.bins.tobytes()))


# -- packed-key grouping ------------------------------------------------------

#: uint16 tokens per uint64 key word
TOKENS_PER_WORD = 4


def pack_tokens(tokens: np.ndarray) -> np.ndarray:
    """Pack ``(n, t)`` uint16 token rows into ``(n, ceil(t/4))`` uint64
    key words (tokens fill each word high-to-low, zero-padded).

    Equal rows ⇔ equal key words, and because tokens fill high-to-low
    the lexicographic order of the word rows equals the lexicographic
    order of the token rows — one integer sort replaces a byte-string
    sort.  ``t == 0`` packs to a single zero word per row, putting every
    row in one group.
    """
    tokens = np.asarray(tokens, dtype=np.uint64)
    n, t = tokens.shape
    if t == 0:
        return np.zeros((n, 1), dtype=np.uint64)
    n_words = -(-t // TOKENS_PER_WORD)
    words = np.zeros((n, n_words), dtype=np.uint64)
    for j in range(t):
        w, slot = divmod(j, TOKENS_PER_WORD)
        shift = np.uint64(16 * (TOKENS_PER_WORD - 1 - slot))
        words[:, w] |= tokens[:, j] << shift
    return words


def row_keys(rows: np.ndarray) -> np.ndarray:
    """A 1-D void view of a 2-D array's rows: one memcmp-comparable,
    hashable key per row.

    Equal rows ⇔ equal keys, so the view feeds ``np.searchsorted`` /
    ``np.unique`` grouping (as in :meth:`UnitTable.contains_rows`) and
    — via ``key.tobytes()`` — dictionary keys, which is how the serving
    cache (:mod:`repro.serve.cache`) indexes packed bin signatures.
    Void keys order by memcmp, not by integer value; use them for
    grouping and equality, not for numeric order.
    """
    rows = np.ascontiguousarray(rows)
    if rows.ndim != 2 or rows.shape[1] == 0:
        raise DataError(f"row_keys needs a non-empty 2-D array, "
                        f"got shape {rows.shape}")
    void = np.dtype((np.void, rows.shape[1] * rows.dtype.itemsize))
    return rows.view(void).ravel()


def group_sort(words: np.ndarray) -> np.ndarray:
    """Stable order grouping equal key-word rows together (ascending);
    within a group the original indices stay ascending."""
    if words.shape[1] == 1:
        return np.argsort(words[:, 0], kind="stable")
    return np.lexsort(tuple(words[:, c] for c in range(words.shape[1] - 1,
                                                       -1, -1)))


def group_starts(sorted_words: np.ndarray) -> np.ndarray:
    """Boolean mask over rows of an already-sorted key matrix, True at
    the first row of each run of equal keys."""
    n = sorted_words.shape[0]
    starts = np.ones(n, dtype=bool)
    if n > 1:
        starts[1:] = (sorted_words[1:] != sorted_words[:-1]).any(axis=1)
    return starts


def first_occurrence(words: np.ndarray) -> np.ndarray:
    """For each key-word row, the smallest index holding an equal row."""
    n = words.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = group_sort(words)
    starts = group_starts(words[order])
    run_id = np.cumsum(starts) - 1
    run_first = order[starts]      # stable sort ⇒ first of run = min index
    first = np.empty(n, dtype=np.int64)
    first[order] = run_first[run_id]
    return first
