"""Direct transaction mining — one-pass dense-unit discovery for deep
lattice levels (the arXiv 1811.02722 idea, adapted to pMAFIA's
bit-identity contract).

Once the lattice is deep and prefix-sparse (PR 7's fptree probe), the
classic per-level cycle — candidate join, repeat elimination, a full
AND/popcount population pass, identify — still pays a data pass per
level even though the surviving lattice is tiny.  This module mines the
support of *every remaining candidate at every remaining level* in one
shot instead:

1. **Project** — each rank digitises its staged bin-index columns
   (:class:`~repro.io.binned.BinnedStore`) into *dense-bin
   transactions*: per record, the set of engagement-level alphabet
   tokens (the distinct ``(dim, bin)`` cells of the current dense-unit
   table) the record falls in, packed as uint64 bitsets.  Identical
   transactions are collapsed with multiplicity weights.
2. **Filter** — the structural theorem behind the engine: every CDU at
   a level deeper than the engagement level ``L`` is, by induction over
   the join, a *union of level-``L`` dense-unit token sets*.  So a
   transaction containing no dense unit supports nothing that will ever
   be asked for, and tokens outside the union of the dense units a
   transaction contains can be masked off without changing any needed
   containment.  Both cuts are exact, not heuristic.
3. **Enumerate** — for each distinct filtered transaction, all token
   subsets of sizes ``L+1 .. max_dimensionality`` are emitted with the
   transaction's weight (conditional FP-growth unrolled over the tiny
   filtered alphabet); per-size tables are grouped on canonical
   big-endian :func:`~repro.core.units.pack_tokens` byte keys.
4. **Merge** — one ``allgather`` of the per-rank tables; every rank
   folds them in rank order into one canonically-ordered global count
   table.  Supports are partition-additive, and a key absent from the
   merged table has true global support 0, so the table answers *exact*
   global counts for every unit the remaining levels can query.

Engagement is guarded by two budgets — distinct transactions and the
enumeration size estimate — both decided by symmetric allreduces, so
every rank falls back to the classic engines together when the lattice
is not actually sparse.  Results are bit-identical to the classic path
by construction: the per-level CDU tables come from the same
:func:`~repro.core.fptree.mined_pairs` +
:func:`~repro.core.candidates.assemble_unions` kernels
(:func:`lattice_step`), and the counts are exact integers equal to what
a population pass would have counted.  Per-rank ``pairs_examined``
metrics are replayed from the same fence arithmetic the classic join
and dedup phases use (:func:`replay_join_charges` /
:func:`replay_dedup_charges`); the simulated-time backend never builds
a miner at all (the virtual SP2 models the paper's per-level sweep).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from .candidates import assemble_unions
from .fptree import mined_pairs
from .partition import (prefix_work, proportional_splits, triangular_splits,
                        weighted_splits)
from .units import UnitTable, first_occurrence, pack_tokens

__all__ = ["DirectMiner", "LatticeStep", "lattice_step",
           "replay_dedup_charges", "replay_join_charges"]

#: row-slice budget for the subset-enumeration scratch (subset rows
#: materialised per vectorised batch)
_ENUM_BATCH = 1 << 22


def _byte_keys(words: np.ndarray) -> np.ndarray:
    """One fixed-width byte-string key per packed-word row.

    Big-endian conversion makes byte order equal numeric lexicographic
    order, so the keys feed ``np.argsort`` / ``np.searchsorted`` as
    scalars while preserving :func:`~repro.core.units.group_sort`'s
    multi-word order exactly.
    """
    w = np.ascontiguousarray(words.astype(">u8"))
    return w.view(f"S{8 * w.shape[1]}").ravel()


def _dedup_weighted(rows: np.ndarray, weights: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Collapse equal ``(n, W)`` uint64 rows, summing int64 weights;
    returns rows in canonical (byte-key ascending) order."""
    if rows.shape[0] == 0:
        return rows, weights
    keys = _byte_keys(rows)
    order = np.argsort(keys, kind="stable")
    ks = keys[order]
    starts = np.ones(ks.shape[0], dtype=bool)
    starts[1:] = ks[1:] != ks[:-1]
    firsts = np.flatnonzero(starts)
    sums = np.add.reduceat(weights[order], firsts)
    return rows[order[firsts]], sums


def _popcounts(rows: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of an ``(n, W)`` uint64 bitset matrix."""
    return np.bitwise_count(rows).sum(axis=1, dtype=np.int64)


def _subset_estimate(t: int, lo: int, hi: int, cap: int) -> int:
    """``sum(C(t, k) for k in [lo, min(t, hi)])`` clamped at ``cap``."""
    total = 0
    for k in range(lo, min(t, hi) + 1):
        total += math.comb(t, k)
        if total >= cap:
            return cap
    return total


@dataclass(frozen=True)
class LatticeStep:
    """One level's join + dedup outcome, classic-order identical.

    Attributes
    ----------
    n_raw:
        Raw CDU count before repeat elimination (what the classic path
        reports as ``n_cdus_raw``).
    combined:
        Global mask over the dense units that joined at least once —
        equal to the classic lor-allreduce of per-rank block masks.
    row_pair_counts:
        ``bincount(left)`` of the mined pairs — the weights the classic
        hash/fptree fences balance; the pairs-replay helpers recompute
        the per-rank fence charges from these.
    cdus:
        The deduplicated CDU table, bit-identical (rows and order) to
        the classic raw-concat + first-occurrence elimination.
    """

    n_raw: int
    combined: np.ndarray
    row_pair_counts: np.ndarray
    cdus: UnitTable


def lattice_step(dense: UnitTable, tokens: np.ndarray | None = None,
                 keep: np.ndarray | None = None, obs=None) -> LatticeStep:
    """Join + repeat-eliminate one level entirely locally (every rank
    computes the identical full tables — no collectives).

    The pair set comes from :func:`~repro.core.fptree.mined_pairs` in
    ``(pivot, partner)`` order, union assembly from
    :func:`~repro.core.candidates.assemble_unions` — the same kernels
    the classic engines run — so the raw table equals the classic
    rank-order fragment concatenation for *any* fences, and the
    first-occurrence elimination below equals Algorithm 4's output.
    """
    n = dense.n_units
    left, right, right_token = mined_pairs(dense, tokens, obs=obs,
                                           keep=keep)
    combined = np.zeros(n, dtype=bool)
    combined[left] = True
    combined[right] = True
    row_pair_counts = np.bincount(left, minlength=n)
    n_raw = int(left.shape[0])
    if n_raw == 0:
        return LatticeStep(n_raw=0, combined=combined,
                           row_pair_counts=row_pair_counts,
                           cdus=UnitTable.empty(dense.level + 1))
    raw = assemble_unions(dense, left, right_token)
    repeats = first_occurrence(pack_tokens(raw.tokens())) \
        != np.arange(n_raw)
    return LatticeStep(n_raw=n_raw, combined=combined,
                       row_pair_counts=row_pair_counts,
                       cdus=raw.select(~repeats))


def replay_join_charges(comm, n_units: int, row_pair_counts: np.ndarray,
                        tau: int, shares: np.ndarray | None = None) -> int:
    """Charge this rank the ``pairs_examined`` the classic join phase
    would have reported for the same level — identical fence arithmetic
    (:func:`~repro.core.partition.weighted_splits` over the plan's
    realised pair counts, triangular prefix work over the fenced rows),
    no join executed."""
    if comm.size > 1 and n_units > tau:
        if shares is not None:
            offsets = proportional_splits(row_pair_counts, shares)
        else:
            offsets = weighted_splits(row_pair_counts, comm.size)
        lo, hi = offsets[comm.rank], offsets[comm.rank + 1]
        pairs = prefix_work(n_units, hi) - prefix_work(n_units, lo)
    else:
        pairs = prefix_work(n_units, n_units)
    comm.charge_pairs(pairs)
    if comm.obs is not None:
        comm.obs.add_pairs("join", pairs)
    return pairs


def replay_dedup_charges(comm, n_raw: int, tau: int,
                         shares: np.ndarray | None = None) -> int:
    """Charge this rank the dedup-phase ``pairs_examined`` of the
    classic repeat elimination over ``n_raw`` raw CDUs (Algorithm 4's
    fences), no elimination executed."""
    if comm.size > 1 and n_raw > tau:
        if shares is not None:
            offsets = proportional_splits(
                np.arange(n_raw - 1, -1, -1, dtype=np.float64), shares)
        else:
            offsets = triangular_splits(n_raw, comm.size)
        lo, hi = offsets[comm.rank], offsets[comm.rank + 1]
        pairs = prefix_work(n_raw, hi) - prefix_work(n_raw, lo)
    else:
        pairs = n_raw
    comm.charge_pairs(pairs)
    if comm.obs is not None:
        comm.obs.add_pairs("dedup", pairs)
    return pairs


class DirectMiner:
    """Per-rank direct-mining engine over the rank's staged bin-index
    store.

    Built once per run by the driver (wall-clock backends only) and
    engaged at most once: :meth:`try_engage` either builds the global
    count table — after which :meth:`counts_for` answers every deeper
    level with zero data passes and zero collectives — or declines
    symmetrically on every rank (budget overrun), leaving the classic
    engines in charge.  :meth:`reset` rewinds the engine for recovery
    replay so survivors and replacements re-engage at the same levels.
    """

    def __init__(self, binned, comm, *, chunk_records: int,
                 max_level: int, max_subsets: int = 4_000_000,
                 max_transactions: int = 262_144) -> None:
        if chunk_records <= 0:
            raise DataError(
                f"chunk_records must be positive, got {chunk_records}")
        self.binned = binned
        self.comm = comm
        self.chunk_records = int(chunk_records)
        self.max_level = int(max_level)
        self.max_subsets = int(max_subsets)
        self.max_transactions = int(max_transactions)
        self.engaged = False
        self.level = 0
        self._tables: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._attempted: set[int] = set()

    # -- lifecycle --------------------------------------------------------
    def reset(self) -> None:
        """Forget engagement state (recovery replay: every rank —
        survivor or replacement — re-runs the level loop from the
        restore level and must make the engage decisions afresh and in
        lockstep)."""
        self.engaged = False
        self.level = 0
        self._tables = {}
        self._attempted = set()

    # -- engagement -------------------------------------------------------
    def try_engage(self, tokens: np.ndarray, level: int) -> bool:
        """Attempt to take over the lattice at ``level``: project +
        filter the local transactions, check both budgets (symmetric
        allreduces), enumerate and merge the global count table.

        ``tokens`` is the *global* dense-unit token matrix (identical
        on every rank).  Returns True when engaged; a declined level is
        never re-attempted (the decision is deterministic in the level
        frontier, so the retry would decline again).
        """
        if self.engaged:
            return True
        if level in self._attempted:
            return False
        self._attempted.add(level)
        obs = self.comm.obs
        tokens = np.asarray(tokens, dtype=np.uint16)
        n_dense, m = tokens.shape
        if n_dense == 0 or m != level:
            return False

        with _span(obs, "join.direct.project", level=level):
            alphabet = np.unique(tokens.ravel())
            ubits = _token_bitsets(tokens, alphabet)
            trans, weights, over = self._project(alphabet, level)
        flag = np.array([over], dtype=bool)
        if bool(self.comm.allreduce(flag, op="lor")[0]):
            _declined(obs, level, "transactions")
            return False

        with _span(obs, "join.direct.filter", level=level):
            trans, weights = _filter_transactions(trans, weights, ubits,
                                                  level)
        est = np.array([self._estimate(trans, level)], dtype=np.int64)
        if int(self.comm.allreduce(est, op="sum")[0]) > self.max_subsets:
            _declined(obs, level, "subsets")
            return False

        with _span(obs, "join.direct.enumerate", level=level,
                   transactions=int(trans.shape[0])):
            local = self._enumerate(trans, weights, alphabet, level)
        with _span(obs, "join.direct.merge", level=level):
            self._tables = self._merge(local)

        self.engaged = True
        self.level = level
        if obs is not None:
            obs.instant("direct.engaged", cat="join", level=level,
                        transactions=int(trans.shape[0]))
            if obs.metrics is not None:
                obs.metrics.counter("direct.transactions").inc(
                    int(trans.shape[0]))
                entries = sum(k.shape[0]
                              for k, _ in self._tables.values())
                nbytes = sum(k.nbytes + c.nbytes
                             for k, c in self._tables.values())
                obs.metrics.counter("direct.itemsets").inc(entries)
                obs.metrics.gauge("direct.table_bytes").set(nbytes)
        return True

    # -- serving ----------------------------------------------------------
    def counts_for(self, cdus: UnitTable,
                   words: np.ndarray | None = None) -> np.ndarray:
        """Exact global record counts per CDU, straight off the merged
        table (absent key = true global support 0)."""
        if not self.engaged:
            raise DataError("direct miner is not engaged")
        n = cdus.n_units
        out = np.zeros(n, dtype=np.int64)
        if n == 0:
            return out
        table = self._tables.get(cdus.level)
        if table is None or table[0].shape[0] == 0:
            return out
        if words is None:
            words = pack_tokens(cdus.tokens())
        keys = _byte_keys(words)
        tk, tc = table
        pos = np.searchsorted(tk, keys)
        np.minimum(pos, tk.shape[0] - 1, out=pos)
        hit = tk[pos] == keys
        out[hit] = tc[pos[hit]]
        return out

    # -- internals --------------------------------------------------------
    def _project(self, alphabet: np.ndarray, level: int
                 ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Digitise the rank's bin-index columns into deduplicated
        alphabet-bitset transactions; ``over`` reports a local distinct
        count past the budget (the decision is still collective)."""
        n_words = -(-alphabet.shape[0] // 64)
        a_dims = (alphabet >> np.uint16(8)).astype(np.int64)
        a_bins = (alphabet & np.uint16(0xFF))
        word_of = np.arange(alphabet.shape[0]) // 64
        bit_of = np.uint64(1) << (
            np.arange(alphabet.shape[0], dtype=np.uint64) % np.uint64(64))
        acc_rows: list[np.ndarray] = []
        acc_w: list[np.ndarray] = []
        acc_n = 0
        rows = np.zeros((0, n_words), dtype=np.uint64)
        weights = np.zeros(0, dtype=np.int64)
        over = False
        n_records = 0 if self.binned is None else self.binned.n_records
        for lo in range(0, n_records, self.chunk_records):
            hi = min(lo + self.chunk_records, n_records)
            cols = self.binned.read_columns(lo, hi)
            chunk = np.zeros((hi - lo, n_words), dtype=np.uint64)
            for j in range(alphabet.shape[0]):
                member = cols[a_dims[j]] == a_bins[j]
                chunk[:, word_of[j]] |= member.astype(np.uint64) * bit_of[j]
            chunk = chunk[_popcounts(chunk) > level]
            if chunk.shape[0] == 0:
                continue
            urows, uw = _dedup_weighted(
                chunk, np.ones(chunk.shape[0], dtype=np.int64))
            acc_rows.append(urows)
            acc_w.append(uw)
            acc_n += urows.shape[0]
            if acc_n > 2 * self.max_transactions:
                rows, weights = _dedup_weighted(
                    np.concatenate([rows] + acc_rows),
                    np.concatenate([weights] + acc_w))
                acc_rows, acc_w, acc_n = [], [], 0
                if rows.shape[0] > self.max_transactions:
                    over = True
                    break
        if acc_rows:
            rows, weights = _dedup_weighted(
                np.concatenate([rows] + acc_rows),
                np.concatenate([weights] + acc_w))
        over = over or rows.shape[0] > self.max_transactions
        return rows, weights, over

    def _estimate(self, trans: np.ndarray, level: int) -> int:
        """Local enumeration size (table entries this rank would emit),
        clamped just past the budget so the sum-allreduce stays small."""
        cap = self.max_subsets + 1
        total = 0
        for t, reps in zip(*np.unique(_popcounts(trans),
                                      return_counts=True)):
            total += int(reps) * _subset_estimate(int(t), level + 1,
                                                  self.max_level, cap)
            if total >= cap:
                return cap
        return total

    def _enumerate(self, trans: np.ndarray, weights: np.ndarray,
                   alphabet: np.ndarray, level: int
                   ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Emit every subset of sizes ``level+1 .. max_level`` of every
        distinct transaction, grouped per size into weighted local
        count tables."""
        per_k: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        if trans.shape[0]:
            # flat column w*64+b is bit b of word w = alphabet id w*64+b
            flat = _bit_expand(trans)
            tvals = flat.sum(axis=1)
            for t in np.unique(tvals):
                t = int(t)
                sel = np.flatnonzero(tvals == t)
                ids = np.nonzero(flat[sel])[1].reshape(sel.shape[0], t)
                w_t = weights[sel]
                for k in range(level + 1, min(t, self.max_level) + 1):
                    comb = np.array(
                        list(itertools.combinations(range(t), k)),
                        dtype=np.int64)
                    step = max(1, _ENUM_BATCH // (comb.shape[0] * k))
                    for lo in range(0, sel.shape[0], step):
                        sub = ids[lo:lo + step][:, comb]
                        toks = alphabet[sub.reshape(-1, k)]
                        per_k.setdefault(k, []).append(
                            (pack_tokens(toks),
                             np.repeat(w_t[lo:lo + step], comb.shape[0])))
        return {k: _dedup_weighted(np.concatenate([w for w, _ in parts]),
                                   np.concatenate([c for _, c in parts]))
                for k, parts in per_k.items()}

    def _merge(self, local: dict[int, tuple[np.ndarray, np.ndarray]]
               ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """One allgather, then a deterministic rank-order fold into the
        canonically-sorted global table (supports are
        partition-additive, so summing per-rank counts per key is the
        exact global support)."""
        payload = {
            k: (words.shape[1], words.tobytes(), counts.tobytes())
            for k, (words, counts) in local.items()}
        gathered = self.comm.allgather(payload)
        merged: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for k in sorted({k for part in gathered for k in part}):
            words_l, counts_l = [], []
            for part in gathered:
                if k not in part:
                    continue
                n_words, wb, cb = part[k]
                words_l.append(np.frombuffer(wb, dtype=np.uint64)
                               .reshape(-1, n_words))
                counts_l.append(np.frombuffer(cb, dtype=np.int64))
            words, counts = _dedup_weighted(np.concatenate(words_l),
                                            np.concatenate(counts_l))
            merged[k] = (_byte_keys(words), counts)
        return merged


def _token_bitsets(tokens: np.ndarray, alphabet: np.ndarray) -> np.ndarray:
    """Pack each unit's token row into an alphabet bitset (one word
    column scattered at a time — every row has exactly one target word
    per column, so the fancy ``|=`` never collides)."""
    n, m = tokens.shape
    n_words = -(-alphabet.shape[0] // 64)
    idx = np.searchsorted(alphabet, tokens)
    bits = np.zeros((n, n_words), dtype=np.uint64)
    rows = np.arange(n)
    for j in range(m):
        bits[rows, idx[:, j] // 64] |= \
            np.uint64(1) << (idx[:, j].astype(np.uint64) % np.uint64(64))
    return bits


def _bit_expand(rows: np.ndarray) -> np.ndarray:
    """``(n, n_words)`` uint64 bitsets -> ``(n, n_words * 64)`` bool,
    alphabet id ``w * 64 + b`` at column ``w * 64 + b``."""
    n, n_words = rows.shape
    flat = np.zeros((n, n_words * 64), dtype=bool)
    for b in range(64):
        flat[:, b::64] = (rows >> np.uint64(b)) & np.uint64(1) != 0
    return flat


def _filter_transactions(trans: np.ndarray, weights: np.ndarray,
                         ubits: np.ndarray, level: int
                         ) -> tuple[np.ndarray, np.ndarray]:
    """The structural cut: drop transactions containing no dense unit,
    mask tokens outside the union of the dense units each transaction
    contains, and re-collapse.  Exact for every containment the deeper
    levels can query (their token sets are unions of dense-unit sets).

    A unit can only be contained in transactions that carry its rarest
    token, so each unit's containment scan runs over that token's
    transaction list instead of the full table — on contaminated
    inputs (noise tokens keeping most transactions distinct) this cuts
    the quadratic sweep by the token's selectivity."""
    if trans.shape[0] == 0 or ubits.shape[0] == 0:
        return trans[:0], weights[:0]
    covered = np.zeros(trans.shape[0], dtype=bool)
    union = np.zeros_like(trans)
    freq = _bit_expand(trans).sum(axis=0)
    uflat = _bit_expand(ubits)
    anchors = np.where(uflat, freq[None, :],
                       np.iinfo(np.int64).max).argmin(axis=1)
    token_rows = {int(a): np.flatnonzero(
        trans[:, a // 64] & (np.uint64(1) << np.uint64(a % 64)) != 0)
        for a in np.unique(anchors)}
    for i in range(ubits.shape[0]):
        rows = token_rows[int(anchors[i])]
        if rows.size == 0:
            continue
        ub = ubits[i]
        inside = ((trans[rows] & ub) == ub).all(axis=1)
        hit = rows[inside]
        covered[hit] = True
        union[hit] |= ub
    trans = trans[covered] & union[covered]
    weights = weights[covered]
    trans, weights = _dedup_weighted(trans, weights)
    keep = _popcounts(trans) > level
    return trans[keep], weights[keep]


def _declined(obs, level: int, reason: str) -> None:
    if obs is not None:
        obs.instant("direct.declined", cat="join", level=level,
                    reason=reason)


def _span(obs, name: str, **attrs):
    from contextlib import nullcontext
    return nullcontext(None) if obs is None \
        else obs.span(name, cat="join", **attrs)
