"""User-facing entry points: serial MAFIA and parallel pMAFIA."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

import os

from ..errors import DataError
from ..io.resilient import RetryPolicy
from ..obs import RunObs
from ..params import MafiaParams
from ..parallel.faults import FaultPlan
from ..parallel.machine import MachineSpec, WorkCounters
from ..parallel.serial import SerialComm
from ..parallel.spmd import RankResult, run_spmd
from ..parallel.supervisor import (RecoveryReport, SupervisePolicy,
                                   run_supervised)
from .pmafia import pmafia_rank
from .result import ClusteringResult


def mafia(data: Any, params: MafiaParams | None = None,
          domains: np.ndarray | None = None) -> ClusteringResult:
    """Serial MAFIA: cluster ``data`` on a single (virtual) processor.

    ``data`` may be an ``(n, d)`` array, any
    :class:`~repro.io.chunks.DataSource`, or a path to a record file.
    The algorithm is completely unsupervised — ``params`` only carries
    the α/β knobs whose defaults the paper recommends.
    """
    return pmafia_rank(SerialComm(), data, params, domains)


@dataclass(frozen=True)
class PMafiaRun:
    """Outcome of a parallel run: the clustering (identical on every
    rank, asserted) plus per-rank virtual times and work tallies.

    ``obs`` bundles every rank's observability export into a
    :class:`repro.obs.RunObs` when the run was traced or metered
    (``None`` otherwise); like ``ClusteringResult.obs`` it does not
    participate in equality.  ``recovery`` carries the supervisor's
    :class:`~repro.parallel.supervisor.RecoveryReport` on runs launched
    through :func:`pmafia_supervised` (``None`` elsewhere) and is
    likewise excluded from equality — a run that survived a rank loss
    *equals* the fault-free run, which is the whole point.
    """

    result: ClusteringResult
    nprocs: int
    backend: str
    rank_times: tuple[float, ...]
    counters: tuple[WorkCounters | None, ...]
    obs: RunObs | None = field(default=None, compare=False)
    recovery: RecoveryReport | None = field(default=None, compare=False)

    @property
    def makespan(self) -> float:
        """Virtual completion time: the slowest rank's clock (0.0 on
        untimed backends)."""
        return max(self.rank_times) if self.rank_times else 0.0


def pmafia(data: Any, nprocs: int, params: MafiaParams | None = None,
           *, backend: str = "thread", machine: MachineSpec | None = None,
           collectives: str = "flat",
           domains: np.ndarray | None = None) -> PMafiaRun:
    """Parallel pMAFIA on ``nprocs`` ranks.

    ``backend='thread'`` exercises the real SPMD message-passing path;
    ``backend='sim'`` additionally produces deterministic virtual
    runtimes on ``machine`` (default: the paper's IBM SP2).
    ``collectives`` selects flat (paper's model) or binomial-tree wire
    patterns for the Reduce/broadcast steps.
    """
    if nprocs == 1 and backend == "thread":
        backend = "serial"
    ranks = run_spmd(pmafia_rank, nprocs, backend=backend, machine=machine,
                     collectives=collectives, args=(data, params, domains))
    return _collect_run(ranks, nprocs, backend)


def _collect_run(ranks: list[RankResult], nprocs: int,
                 backend: str) -> PMafiaRun:
    """Cross-check the per-rank results and bundle them into a run."""
    results = [r.value for r in ranks]
    first = results[0]
    for other in results[1:]:
        if (other.cdus_per_level() != first.cdus_per_level()
                or other.dense_per_level() != first.dense_per_level()
                or len(other.clusters) != len(first.clusters)):
            raise DataError("ranks disagree on the clustering result")
    obs = None
    if any(r.obs is not None for r in results):
        obs = RunObs(ranks=tuple(r.obs for r in results
                                 if r.obs is not None))
    return PMafiaRun(result=first, nprocs=nprocs, backend=backend,
                     rank_times=tuple(r.time for r in ranks),
                     counters=tuple(r.counters for r in ranks),
                     obs=obs)


def pmafia_resumable(data: Any, nprocs: int,
                     params: MafiaParams | None = None, *,
                     checkpoint_dir: str | os.PathLike,
                     backend: str = "thread",
                     machine: MachineSpec | None = None,
                     collectives: str = "flat",
                     domains: np.ndarray | None = None,
                     resume: bool = True,
                     recv_timeout: float | None = None,
                     retry: RetryPolicy | None = None,
                     faults: FaultPlan | None = None,
                     max_restarts: int = 0) -> PMafiaRun:
    """Fault-tolerant pMAFIA: per-level checkpoints plus restart.

    Rank 0 serialises the level frontier into ``checkpoint_dir`` after
    every completed level.  With ``resume=True`` (default) each call
    restarts from the newest checkpoint left by a killed run — only the
    remaining levels are recomputed, and the final
    :class:`~repro.core.result.ClusteringResult` is bit-identical to an
    uninterrupted run.  ``resume=False`` clears old checkpoints and
    starts fresh.

    ``max_restarts`` > 0 additionally retries failed attempts
    in-process (each retry resumes from the last checkpoint).  A
    ``faults`` plan applies to the *first* attempt only, so an injected
    crash followed by an automatic restart rehearses the full
    kill-and-recover cycle in a single call.  ``recv_timeout`` and
    ``retry`` bound lost peers and transient chunk-read failures — see
    ``docs/ROBUSTNESS.md``.
    """
    if max_restarts < 0:
        raise DataError(f"max_restarts must be >= 0, got {max_restarts}")
    if nprocs == 1 and backend == "thread":
        backend = "serial"
    attempts = max_restarts + 1
    for attempt in range(attempts):
        try:
            ranks = run_spmd(
                pmafia_rank, nprocs, backend=backend, machine=machine,
                collectives=collectives, recv_timeout=recv_timeout,
                faults=faults if attempt == 0 else None,
                args=(data, params, domains),
                kwargs={"checkpoint_dir": os.fspath(checkpoint_dir),
                        "resume": resume or attempt > 0,
                        "retry": retry})
        except Exception:
            if attempt == attempts - 1:
                raise
        else:
            return _collect_run(ranks, nprocs, backend)
    raise AssertionError("unreachable")  # pragma: no cover


def pmafia_supervised(data: Any, nprocs: int,
                      params: MafiaParams | None = None, *,
                      checkpoint_dir: str | os.PathLike,
                      collectives: str = "flat",
                      domains: np.ndarray | None = None,
                      resume: bool = True,
                      recv_timeout: float | None = None,
                      retry: RetryPolicy | None = None,
                      faults: FaultPlan | None = None,
                      policy: SupervisePolicy | None = None) -> PMafiaRun:
    """Self-healing pMAFIA on the process backend: rank loss is repaired
    *mid-run* instead of restarting the whole program.

    A supervisor watches every rank process (heartbeats layered on the
    recv deadline plus OS-level liveness).  When a rank dies or stalls,
    the survivors are parked at their next safe point, a replacement
    process is spawned that rebuilds **only the lost shard's state** —
    from the shared record file, the staged per-rank artifacts named in
    its shard manifest and the last per-level checkpoint — and the world
    resumes from the highest level every rank can restore.  Because each
    later pass is a deterministic function of that state, the final
    clustering is **bit-identical** to a fault-free run; see
    ``docs/ROBUSTNESS.md`` for the protocol and its limits.

    ``checkpoint_dir`` is mandatory: it holds the level checkpoints and
    shard manifests a replacement boots from.  ``faults`` injects a
    deterministic failure plan for rehearsal (replacements always run
    fault-free).  ``policy`` tunes detection and recovery budgets; the
    returned run's ``recovery`` field reports every recovery round and
    its realised RTO.
    """
    values, report = run_supervised(
        pmafia_rank, nprocs, collectives=collectives,
        recv_timeout=recv_timeout, faults=faults, policy=policy,
        args=(data, params, domains),
        kwargs={"checkpoint_dir": os.fspath(checkpoint_dir),
                "resume": resume, "retry": retry})
    ranks = [RankResult(rank=r, value=v) for r, v in enumerate(values)]
    run = _collect_run(ranks, nprocs, "process")
    return replace(run, recovery=report)
