"""FP-tree candidate engine — trie-based CDU pair mining.

The sub-signature hash join (:func:`repro.core.candidates.hash_join_plan`)
materialises ``m`` drop-one sub-signatures per level-``m`` unit — an
``O(Ndu·m²)`` token copy plus a lexsort over ``(m−1)``-token keys — before
any pair is enumerated.  At high cluster dimensionality that key
factory, not the per-pair kernel, is the wall (the Fig. 7 regime).

This module mines the same pair set from a **prefix trie** (FP-tree in
the sense of arXiv 1811.02722) built over the lex-sorted ``(dim, bin)``
token rows of the dense-unit table:

* **Build** — one vectorised pass turns the sorted token matrix into a
  pooled trie: flat numpy arrays of edges keyed ``parent << 16 | token``
  plus each row's node path.  No Python objects, no per-node dicts.
* **Mine** — every unit *drops* each of its ``m`` tokens once (the
  same drop-one entries the hash join materialises), but instead of
  copying the ``m−1`` surviving tokens into a wide sort key, each entry
  *projects* them through the trie — the conditional-tree walk — until
  the path runs out.  The death point is a canonical scalar fingerprint
  of the whole deleted sequence: the death node pins its longest
  trie-realised prefix and a right-to-left suffix id
  (:func:`suffix_ids`) pins the unconsumed rest.  Two units join iff
  two of their entries share a fingerprint with differing dropped
  dimensions, so one scalar sort + segmented pair expansion finishes
  the mine.  On prefix-sparse lattices — the high-dimensional regime,
  where most units share no ``(m−1)``-token subsequence — walks die in
  a round or two and the whole mine is ``O(Ndu·m)`` scalar work, where
  the hash join always pays ``O(Ndu·m²)`` token materialisation plus a
  multi-word lexsort before it can see that the buckets are empty.

Because a bucket holds exactly the entries whose deleted sequences are
identical, repeat candidates never arise from the mining itself — the
repeats the dedup phase removes come from *distinct* pairs producing
equal unions, exactly as in the pairwise sweep.

The output is **not** a new table format: :func:`fptree_join_plan`
returns the same :class:`~repro.core.candidates.HashJoinPlan` the hash
engine builds — pairs lexsorted by ``(pivot, partner)`` with realised
per-row pair counts — so block assembly
(:func:`~repro.core.candidates.hash_join_block`), partition fencing
(:func:`~repro.core.partition.weighted_splits`), straggler shares,
repeat elimination and the sim backend's ``pairs_examined`` charges are
shared code and bit-identical by construction.  The conformance suite
(``tests/test_join_strategies.py``) asserts array-for-array plan
equality on top of that.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from .candidates import HashJoinPlan, _empty_plan
from .units import UnitTable, group_sort, pack_tokens

__all__ = ["FPTree", "fptree_join_plan", "mined_pairs", "prune_entries",
           "suffix_ids"]

#: bit layout of the flat edge keys: ``parent << 16 | token``
_TOKEN_BITS = np.int64(16)
#: bit layout of the mining bucket keys: ``node << 32 | suffix_id``
_SFX_BITS = np.int64(32)


@dataclass(frozen=True)
class FPTree:
    """A prefix trie over ``n`` lex-sorted token rows of width ``m``,
    pooled in flat arrays (node ids are dense integers, 0 = root).

    Node ids are assigned column-major — all depth-1 nodes before all
    depth-2 nodes — so an id's depth is recoverable from its range and
    two equal ids always sit at the same depth.

    Attributes
    ----------
    edge_keys:
        ``parent << 16 | token`` for every trie edge, ascending — child
        lookup is one ``searchsorted``.
    edge_child:
        Child node id of each edge, aligned with ``edge_keys``.
    path:
        ``(n, m+1)`` node ids: ``path[r, c]`` is the node reached after
        row ``r``'s first ``c`` tokens (``path[:, 0]`` is the root).
    node_count:
        Rows passing through each node — the per-prefix support counts
        (root counts every row).
    """

    edge_keys: np.ndarray
    edge_child: np.ndarray
    path: np.ndarray
    node_count: np.ndarray

    @property
    def n_nodes(self) -> int:
        return int(self.node_count.shape[0])

    @property
    def n_edges(self) -> int:
        return int(self.edge_keys.shape[0])

    @classmethod
    def build(cls, ts: np.ndarray) -> "FPTree":
        """Build the trie from an ``(n, m)`` int64 token matrix whose
        rows are lexicographically sorted.

        Vectorised: a row opens a new node at column ``c`` iff it
        differs from the previous row at or before ``c``, so one
        row-shift comparison plus a running OR yields every node id,
        edge and support count without visiting rows one at a time.
        """
        n, m = ts.shape
        if n == 0 or m == 0:
            return cls(edge_keys=np.zeros(0, dtype=np.int64),
                       edge_child=np.zeros(0, dtype=np.int64),
                       path=np.zeros((n, m + 1), dtype=np.int64),
                       node_count=np.full(1, n, dtype=np.int64))
        if n == 1:
            # single transaction: the trie is one chain — a rank whose
            # shard keeps a lone dense row at the probe level reaches
            # this, and the row-shift vectorisation below has no
            # previous row to compare against
            chain = np.arange(m + 1, dtype=np.int64)
            return cls(edge_keys=(chain[:m] << _TOKEN_BITS)
                       | ts[0].astype(np.int64),
                       edge_child=chain[1:].copy(),
                       path=chain[np.newaxis, :].copy(),
                       node_count=np.ones(m + 1, dtype=np.int64))
        neq = np.ones((n, m), dtype=bool)
        if n > 1:
            neq[1:] = ts[1:] != ts[:-1]
        opens = np.logical_or.accumulate(neq, axis=1)

        # column-major node numbering: column c owns ids
        # [offsets[c], offsets[c] + opens[:, c].sum())
        col_counts = opens.sum(axis=0)
        offsets = np.empty(m, dtype=np.int64)
        offsets[0] = 1  # id 0 is the root
        np.cumsum(col_counts[:-1], out=offsets[1:])
        offsets[1:] += 1
        path = np.empty((n, m + 1), dtype=np.int64)
        path[:, 0] = 0
        # cumsum is >= 1 everywhere (row 0 opens every column), so rows
        # that do not open a node inherit the previous opener's id
        path[:, 1:] = np.cumsum(opens, axis=0) - 1 + offsets[np.newaxis, :]

        # edges in column-major order: within a column parents ascend
        # (ids were assigned downwards) and a parent's tokens ascend
        # (rows are sorted), and later columns hold strictly larger
        # parent ids — so the concatenated keys arrive already sorted
        opens_t = opens.T
        parents = path[:, :m].T[opens_t]
        children = path[:, 1:].T[opens_t]
        tokens = ts.T[opens_t]
        edge_keys = (parents << _TOKEN_BITS) | tokens

        n_nodes = 1 + int(col_counts.sum())
        node_count = np.bincount(path.ravel(), minlength=n_nodes)
        return cls(edge_keys=edge_keys, edge_child=children,
                   path=path, node_count=node_count)

    def children(self, nodes: np.ndarray,
                 tokens: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised child lookup: for each ``(node, token)`` query the
        child node id, plus the mask of edges that exist."""
        keys = (nodes << _TOKEN_BITS) | tokens
        if self.n_edges == 0:
            return (np.zeros(keys.shape[0], dtype=np.int64),
                    np.zeros(keys.shape[0], dtype=bool))
        pos = np.minimum(np.searchsorted(self.edge_keys, keys),
                         self.n_edges - 1)
        return self.edge_child[pos], self.edge_keys[pos] == keys


def suffix_ids(ts: np.ndarray) -> np.ndarray:
    """``(n, m+1)`` suffix-equivalence ids: ``sfx[r, c]`` identifies the
    token sequence ``ts[r, c:]`` — two rows get equal ids at column
    ``c`` iff their suffixes from ``c`` on are identical.

    Ids are computed right-to-left, each column folding its token with
    the next column's id through one ``np.unique``; the empty suffix
    (column ``m``) is id 0 everywhere.  Ids are only comparable within
    a column, which is all the miner ever does — the bucket keys pair
    them with node ids whose depth fixes the column.
    """
    n, m = ts.shape
    if n == 0 or n == 1:
        # no rows — or one row, whose suffixes are trivially the only
        # members of their equivalence classes (id 0 each)
        return np.zeros((n, m + 1), dtype=np.int64)
    sfx = np.zeros((n, m + 1), dtype=np.int64)
    for c in range(m - 1, -1, -1):
        key = (ts[:, c] << _SFX_BITS) | sfx[:, c + 1]
        _, sfx[:, c] = np.unique(key, return_inverse=True)
    return sfx


#: multipliers of the support-pruning fingerprint hash (splitmix64 /
#: xxhash odd constants — any odd 64-bit mixers work)
_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xC2B2AE3D27D4EB4F)


def prune_entries(tokens: np.ndarray, n: int, m: int) -> np.ndarray:
    """The support-pruning stage: a boolean ``(n, m)`` mask of drop-one
    entries that can possibly pair.

    Two entries join only if their deleted ``(m−1)``-token sequences are
    identical, and identical sequences have identical (sum, xor) token
    aggregates — both computable per entry in one subtraction from the
    row aggregate, no materialisation.  Hashing the aggregate pair into
    a fingerprint table and dropping every entry whose fingerprint is
    unoccupied by a second entry is the FP-growth support prune: on
    prefix-sparse lattices (the high-dimensional noise floor) it
    removes nearly everything before any sort runs.  False survivors
    (distinct sequences, colliding fingerprints) cost only time — the
    trie mine resolves them exactly.
    """
    # Raw (dim, bin) tokens carry ~10 bits of xor entropy and a
    # CLT-concentrated sum, so distinct sequences collide constantly on
    # raw aggregates.  Mixing every token through a 64-bit finalizer
    # first spreads both aggregates over the full word: equal sequences
    # still agree, distinct ones collide at table load factor only.
    g = tokens.astype(np.uint64) * _MIX_A
    g ^= g >> np.uint64(29)
    g *= _MIX_B
    g ^= g >> np.uint64(32)
    a = (g.sum(axis=1, dtype=np.uint64)[:, None] - g).ravel()
    b = (np.bitwise_xor.reduce(g, axis=1)[:, None] ^ g).ravel()
    h = (a * _MIX_A) ^ (b * _MIX_B)
    # Cascade three disjoint hash slices: each pass recounts only the
    # previous pass's survivors, so false survivors (random slice
    # collisions at load factor λ) decay like λ^passes while true pairs
    # — equal aggregates, hence equal h — survive every pass.
    ent = np.arange(n * m, dtype=np.int64)
    for shift in (0, 21, 42):
        bits = max(14, min(21, ent.size.bit_length() + 2))
        fp = ((h[ent] >> np.uint64(shift))
              & np.uint64((1 << bits) - 1)).astype(np.int64)
        cnt = np.bincount(fp, minlength=1 << bits)
        mask = cnt[fp] > 1
        if mask.all():
            break
        ent = ent[mask]
        if ent.size == 0:
            break
    keep = np.zeros(n * m, dtype=bool)
    keep[ent] = True
    return keep.reshape(n, m)


def mined_pairs(dense: UnitTable,
                tokens: np.ndarray | None = None,
                obs=None,
                keep: np.ndarray | None = None,
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mine every valid join pair of ``dense`` from a prefix trie,
    returning ``(left, right, right_token)`` lexsorted by
    ``(left, right)`` — the raw pair arrays both
    :func:`fptree_join_plan` (which wraps them in a
    :class:`~repro.core.candidates.HashJoinPlan`) and the direct-mining
    engine (:mod:`repro.core.directmine`, which feeds them straight to
    union assembly) build on.

    ``tokens`` may pass a precomputed ``dense.tokens()`` matrix (the
    driver packs it overlapping the population reduce).  ``obs`` is an
    optional :class:`~repro.obs.RankObs`; when given, the prune, build
    and mine phases are traced as ``join.fptree.*`` spans and trie /
    prune sizes land in the metrics registry.  ``keep`` may pass a
    precomputed :func:`prune_entries` mask — the ``auto`` policy probes
    the kept fraction to pick a strategy and hands the mask down so the
    prune pass is not paid twice.
    """
    n, m = dense.n_units, dense.level
    if tokens is None:
        tokens = dense.tokens()
    empty = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
             np.zeros(0, dtype=np.uint16))
    if n < 2:
        return empty

    # -- support prune: drop entries that provably pair with nothing ----
    with _span(obs, "join.fptree.prune", n_units=n, level=m) as sp:
        if keep is None:
            keep = prune_entries(tokens, n, m)
        n_kept = int(keep.sum())
        if sp is not None:
            sp["entries_kept"] = n_kept
        if obs is not None and obs.metrics is not None:
            obs.metrics.counter("fptree.entries_pruned").inc(n * m - n_kept)
        if n_kept == 0:
            return empty

    # -- build: lex-sort surviving rows, raise the trie, id suffixes ----
    # Every pairable entry lives on a surviving row, and a walk only
    # ever needs prefixes that some *pairable* partner realises, so the
    # trie is built over the surviving sub-table only.
    with _span(obs, "join.fptree.build", n_units=n, level=m):
        sub = np.flatnonzero(keep.any(axis=1))   # original row ids
        subtok = tokens[sub]
        lex = group_sort(pack_tokens(subtok))
        ts = subtok[lex].astype(np.int64)
        tree = FPTree.build(ts)
        sfx = suffix_ids(ts)
        orig = sub[lex]            # trie row order -> original unit index
        if obs is not None and obs.metrics is not None:
            obs.metrics.counter("fptree.nodes").inc(tree.n_nodes)

    # -- mine: conditional-tree projection to exhaustion -----------------
    # Entry (r, p) is row r with its p-th token deleted — the same
    # drop-one entries the hash join materialises, but instead of
    # copying the m−1 surviving tokens into a wide key, each entry
    # *walks* them through the trie from its own prefix node (the
    # conditional projection) until the path runs out.  Where a walk
    # dies is a canonical scalar fingerprint of the whole deleted
    # sequence: the death node pins the longest trie-realised prefix
    # (one node = one token sequence) and the suffix id pins the
    # unconsumed rest, so two entries share a (death node, suffix id)
    # key iff their deleted sequences are identical.  One scalar sort
    # over the death keys then replaces the hash join's multi-word
    # sub-signature lexsort.
    with _span(obs, "join.fptree.mine", n_units=n, level=m):
        e_row, e_pos = np.nonzero(keep[sub][lex])
        e_tok = ts[e_row, e_pos]
        ne = e_row.shape[0]
        live = np.arange(ne, dtype=np.int64)
        w_row = e_row
        w_node = tree.path[e_row, e_pos]
        w_next = e_pos + 1
        keys = np.empty(ne, dtype=np.int64)
        rounds = 0
        while live.size:
            alive = w_next < m
            if not alive.any():
                keys[live] = (w_node << _SFX_BITS) | sfx[w_row, w_next]
                break
            child, found = tree.children(
                w_node[alive], ts[w_row[alive], w_next[alive]])
            adv = np.zeros(live.size, dtype=bool)
            adv[np.flatnonzero(alive)[found]] = True
            dead = ~adv
            keys[live[dead]] = ((w_node[dead] << _SFX_BITS)
                                | sfx[w_row[dead], w_next[dead]])
            live, w_row = live[adv], w_row[adv]
            w_node, w_next = child[found], w_next[adv] + 1
            rounds += 1
        if obs is not None and obs.metrics is not None:
            obs.metrics.counter("fptree.walk_rounds").inc(rounds)

        # group entries by deleted-sequence key; within a bucket every
        # ordered pair whose dropped *dimensions* differ is a join
        # (equal dims mean the same unit, a duplicate row, or a bin
        # conflict — the hash join's leftover-dims filter)
        order = np.argsort(keys, kind="stable")
        ks = keys[order]
        starts = np.ones(ne, dtype=bool)
        starts[1:] = ks[1:] != ks[:-1]
        run_start = np.flatnonzero(starts)
        run_id = np.cumsum(starts) - 1
        run_end = np.append(run_start[1:], ne)[run_id]
        pos = np.arange(ne)
        after = run_end - pos - 1
        total = int(after.sum())
        if total == 0:
            return empty
        first = np.repeat(pos, after)
        excl = np.cumsum(after) - after
        second = first + 1 + (np.arange(total, dtype=np.int64)
                              - np.repeat(excl, after))
        e1, e2 = order[first], order[second]
        t1, t2 = e_tok[e1], e_tok[e2]
        valid = (t1 >> np.int64(8)) != (t2 >> np.int64(8))
        e1, e2, t1, t2 = e1[valid], e2[valid], t1[valid], t2[valid]

    if e1.size == 0:
        return empty

    # -- emit the pairs in the hash join's exact order ------------------
    o1 = orig[e_row[e1]]
    o2 = orig[e_row[e2]]
    left = np.minimum(o1, o2)
    right = np.maximum(o1, o2)
    right_token = np.where(o2 > o1, t2, t1).astype(np.uint16)
    pair_order = np.lexsort((right, left))
    return left[pair_order], right[pair_order], right_token[pair_order]


def fptree_join_plan(dense: UnitTable,
                     tokens: np.ndarray | None = None,
                     obs=None,
                     keep: np.ndarray | None = None) -> HashJoinPlan:
    """Mine every valid join pair of ``dense`` from a prefix trie —
    drop-in for :func:`~repro.core.candidates.hash_join_plan`, returning
    an array-for-array identical :class:`HashJoinPlan`.

    Thin wrapper over :func:`mined_pairs`; see there for the ``tokens``
    / ``obs`` / ``keep`` contracts.
    """
    n, m = dense.n_units, dense.level
    if tokens is None:
        tokens = dense.tokens()
    left, right, right_token = mined_pairs(dense, tokens, obs, keep)
    if left.size == 0:
        return _empty_plan(n, m)
    plan = HashJoinPlan(left=left, right=right, right_token=right_token,
                        row_pair_counts=np.bincount(left, minlength=n),
                        n_units=n, level=m)
    if obs is not None and obs.metrics is not None:
        obs.metrics.counter("fptree.pairs_mined").inc(plan.n_pairs)
    return plan


def _span(obs, name: str, **attrs):
    """An obs span, or a free no-op when untraced."""
    return nullcontext(None) if obs is None \
        else obs.span(name, cat="join", **attrs)
