"""The pMAFIA driver — Algorithm 2 of the paper, runnable on any
communicator (1 rank = serial MAFIA; the thread backend = real SPMD; the
sim backend = SPMD with virtual IBM SP2 clocks).

Per level the driver performs, exactly as Algorithms 2-6 prescribe:

1. *Find-candidate-dense-units* — triangular CDU join, task-partitioned
   by equation (1) when ``Ndu > τ``; per-rank fragments are gathered on
   the parent, concatenated in rank order and broadcast.
2. *Eliminate-repeat-CDUs* — repeat marking task-partitioned the same
   way (Ncdu substituted for Ndu), flags OR-reduced, unique fragments
   rebuilt per rank, gathered and broadcast.
3. CDU *population* — the data-parallel pass over each rank's N/p local
   records in chunks of B, counts sum-Reduced.
4. *Identify-dense-units* — per-rank flag blocks (even Ncdu/p split),
   a Reduce for the flags and another for the dense count.
5. *Build-dense-unit-data-structures* — the dense sub-table (all ranks
   hold the full CDU table and global mask after the reduces).

The loop terminates when no dense units remain; the parent then
assembles clusters from the maximal dense units of every level and
broadcasts the result (print-clusters()).
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import replace
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import CheckpointError, DataError
from ..io.binned import grid_fingerprint, stage_binned
from ..io.bitmap_index import stage_bitmap_index
from ..io.chunks import DataSource, as_source
from ..io.partition import block_range
from ..io.records import RecordFile
from ..io.resilient import RetryPolicy
from ..io.staging import stage_local
from ..obs import RankObs
from ..obs.manifest import MANIFEST_NAME, build_manifest, write_manifest
from ..params import MafiaParams
from ..parallel.comm import Comm
from ..parallel.faults import fault_site
from ..parallel.supervisor import RecoveryInterrupt
from ..types import Cluster, Grid, Subspace
from .adaptive_grid import build_grid
from .checkpoint import (check_compatible, checkpoint_path,
                         clear_checkpoints, load_checkpoint,
                         load_latest_checkpoint, load_shard_manifest,
                         save_checkpoint, save_shard_manifest)
from .candidates import hash_join_block, hash_join_plan, join_block
from .directmine import (DirectMiner, lattice_step, replay_dedup_charges,
                         replay_join_charges)
from .fptree import fptree_join_plan, prune_entries
from .dedup import drop_repeats, repeat_flags_block
from .dnf import dnf_terms, maximal_mask, merged_mask
from .histogram import fine_histogram_global, global_domains
from .identify import dense_flags_block, dense_units, unit_thresholds
from .merge import face_adjacent_components
from .partition import (even_splits, prefix_work, proportional_splits,
                        triangular_splits, weighted_splits)
from .rebalance import StragglerMonitor
from .population import IndexedPopulator, OverlapRunner, populate_global
from .result import ClusteringResult, LevelTrace
from .timing import phase
from .units import MAX_DIMS, UnitTable, group_sort, pack_tokens

#: below this many dense units the ``auto`` join policy stays pairwise —
#: the hash join's grouping overhead only pays off once the triangular
#: sweep has real quadratic work to skip
HASH_JOIN_MIN_UNITS = 256

#: below this level the ``auto`` policy never probes the fptree engine —
#: drop-one keys are short enough that the hash join's one-word lexsort
#: beats any trie walk (measured crossover: fptree first wins at level 4)
FPTREE_MIN_LEVEL = 4

#: largest fraction of drop-one entries surviving the fptree support
#: prune for which ``auto`` stays with the trie engine.  Prefix-sparse
#: lattices (high-d noise floors) keep well under 10% and the trie wins
#: 2–4x; saturated combinatorial cores keep ~100% and the trie walk
#: degenerates to the hash join's O(Ndu·m²) with extra overhead.
FPTREE_MAX_KEPT = 0.35


def _ospan(obs: RankObs | None, name: str, cat: str = "task", **attrs):
    """A span on this rank's observer, or a free no-op when untraced."""
    if obs is None:
        return nullcontext({})
    return obs.span(name, cat=cat, **attrs)


def resolved_join_strategy(params: MafiaParams, comm: Comm,
                           n_dense: int, level: int = 2,
                           tokens: np.ndarray | None = None,
                           miner: "DirectMiner | None" = None
                           ) -> tuple[str, "np.ndarray | None"]:
    """The concrete join implementation ``params.join_strategy`` selects
    for a ``level``-dimensional join over ``n_dense`` dense units,
    plus the fptree support-prune mask when one was probed (reusable by
    :func:`~repro.core.fptree.fptree_join_plan` so the prune pass is
    paid once).

    ``auto`` resolves to pairwise on the simulated-time backend
    (``comm.models_paper_costs``): the virtual SP2 ran the paper's
    pairwise sweep, and keeping the default run on the same code path
    keeps per-rank fences — hence message sizes and virtual times —
    bit-identical to the paper's cost model.  On wall-clock backends
    ``auto`` picks between hash and fptree from realised lattice stats
    once ``n_dense`` exceeds :data:`HASH_JOIN_MIN_UNITS`: from
    :data:`FPTREE_MIN_LEVEL` on, the fptree support prune is probed
    (one linear fingerprint pass over the drop-one entries, reading
    ``tokens``) and the trie engine is chosen iff at most
    :data:`FPTREE_MAX_KEPT` of the entries survive — the direct
    signature of a prefix-sparse lattice, where trie walks die early
    and the hash join's O(Ndu·m²) key factory is wasted.  All
    implementations produce bit-identical CDU tables either way.

    ``miner`` is the run's :class:`~repro.core.directmine.DirectMiner`
    (or ``None`` — the sim backend, ``direct_mining=False``, and
    engines without a staged bin store never build one).  An explicit
    ``"direct"`` tries to engage it at any level and falls back to the
    ``auto`` tiers while it declines; under ``"auto"`` the miner is
    only offered levels the fptree probe already called sparse and
    that reach ``params.direct_min_level`` — a sparse deep lattice is
    exactly where one-shot mining beats the per-level trie.  Every
    engage decision is collective (symmetric budget allreduces inside
    ``try_engage``), so all ranks route identically.
    """
    strategy = params.join_strategy
    if strategy == "direct":
        if miner is not None and tokens is not None and (
                miner.engaged or miner.try_engage(tokens, level)):
            return "direct", None
        strategy = "auto"
    if strategy != "auto":
        return strategy, None
    if miner is not None and miner.engaged:
        # sticky: the merged count table already answers every deeper
        # level for free — never hand an engaged lattice back to the
        # per-level engines, however small Ndu shrinks
        return "direct", None
    if getattr(comm, "models_paper_costs", False):
        return "pairwise", None
    if n_dense <= HASH_JOIN_MIN_UNITS:
        return "pairwise", None
    if level >= FPTREE_MIN_LEVEL and n_dense >= 2 and tokens is not None:
        keep = prune_entries(tokens, n_dense, level)
        if keep.mean() <= FPTREE_MAX_KEPT:
            if miner is not None and level >= params.direct_min_level \
                    and (miner.engaged
                         or miner.try_engage(tokens, level)):
                return "direct", keep
            return "fptree", keep
    return "hash", None


def _local_view(comm: Comm, data: Any) -> tuple[DataSource, int, int]:
    """Resolve this rank's view of the data: a source plus the record
    range it owns.

    Arrays / in-memory sources are shared, each rank reading its N/p
    block; a path names a shared record file that is first staged onto
    "local disk" (§4.1) and then read whole.
    """
    if isinstance(data, (str, os.PathLike)):
        local = stage_local(comm, Path(data))
        return local, 0, local.n_records
    source = as_source(data)
    start, stop = block_range(source.n_records, comm.size, comm.rank)
    return source, start, stop


def _solo_record_count(data: Any) -> int:
    """The global record count, derived without collectives.

    A replacement rank boots while every survivor is parked mid-run, so
    the usual sum-allreduce over local counts would deadlock.  For a
    shared record file the header carries the global count; for an
    in-memory array every rank sees the whole thing anyway.
    """
    if isinstance(data, (str, os.PathLike)):
        return RecordFile(Path(data)).n_records
    return as_source(data).n_records


def _artifact_path(obj: Any) -> str | None:
    """The on-disk path of a staged artifact, if it has one."""
    path = getattr(obj, "path", None)
    return None if path is None else os.fspath(path)


def _level_one_cdus(grid: Grid) -> UnitTable:
    """Every bin of every dimension is a level-1 candidate dense unit."""
    if grid.ndim > MAX_DIMS:
        raise DataError(
            f"{grid.ndim} dimensions exceed the byte-array limit {MAX_DIMS}")
    dims = []
    bins = []
    for dg in grid:
        dims.extend([dg.dim] * dg.nbins)
        bins.extend(range(dg.nbins))
    return UnitTable(dims=np.asarray(dims, dtype=np.uint8)[:, None],
                     bins=np.asarray(bins, dtype=np.uint8)[:, None])


#: public alias — the streaming engine seeds its level loop here too
level_one_cdus = _level_one_cdus


def _find_candidate_dense_units(comm: Comm, dense: UnitTable, tau: int,
                                block_join=join_block, *,
                                strategy: str = "pairwise",
                                tokens: np.ndarray | None = None,
                                shares: np.ndarray | None = None,
                                keep: np.ndarray | None = None
                                ) -> tuple[UnitTable, np.ndarray]:
    """Algorithm 3: build level-(k+1) CDUs from the level-k dense units.

    Returns the concatenated raw CDU table (identical on every rank) and
    the global combined-mask over the dense units.  ``block_join`` is the
    pairwise join strategy — MAFIA's any-(k−2) join by default; CLIQUE
    passes its prefix join.

    With ``strategy="hash"`` every rank builds the sub-signature
    :class:`~repro.core.candidates.HashJoinPlan` (replicated cheap
    vectorised work, the same trade repeat marking makes) and the task
    split balances the plan's *realised* per-row pair counts
    (:func:`~repro.core.partition.weighted_splits`) instead of the
    triangular estimate.  The fences stay contiguous pivot-row ranges,
    so the rank-order concatenation below is bit-identical to the
    pairwise path's.  ``strategy="fptree"`` builds the identical plan
    from the prefix-trie engine instead
    (:func:`~repro.core.fptree.fptree_join_plan`; ``keep`` forwards the
    ``auto`` policy's already-probed support-prune mask so that pass is
    not repeated).  ``tokens`` may pass the dense table's
    pre-packed token matrix (computed overlapping the previous level's
    population reduce).

    ``shares`` (per-rank fractions from
    :class:`~repro.core.rebalance.StragglerMonitor`, identical on every
    rank) skews the fences so slow ranks own proportionally less pivot
    work; ``None`` keeps the paper's balanced split.  Either way the
    fences stay contiguous pivot ranges, so the output is bit-identical.
    """
    ndu = dense.n_units
    if strategy in ("hash", "fptree"):
        # both engines emit the same HashJoinPlan, so fencing, block
        # assembly, collectives and pair charging below are shared code
        if strategy == "fptree":
            plan = fptree_join_plan(dense, tokens, obs=comm.obs, keep=keep)
        else:
            plan = hash_join_plan(dense, tokens)

        def block_join(d: UnitTable, lo: int, hi: int, _plan=plan):
            return hash_join_block(d, lo, hi, plan=_plan)
    else:
        plan = None
    if comm.size > 1 and ndu > tau:
        if plan is not None:
            if shares is not None:
                offsets = proportional_splits(plan.row_pair_counts, shares)
            else:
                offsets = weighted_splits(plan.row_pair_counts, comm.size)
        elif shares is not None:
            # per-pivot pair counts of the triangular sweep: row i
            # examines ndu - 1 - i partners
            offsets = proportional_splits(
                np.arange(ndu - 1, -1, -1, dtype=np.float64), shares)
        else:
            offsets = triangular_splits(ndu, comm.size)
        lo, hi = offsets[comm.rank], offsets[comm.rank + 1]
        jr = block_join(dense, lo, hi)
        comm.charge_pairs(jr.pairs_examined)
        if comm.obs is not None:
            comm.obs.add_pairs("join", jr.pairs_examined)
        fragments = comm.gather(jr.cdus.tobytes(), root=0)
        if comm.rank == 0:
            full = UnitTable.concat_all(
                [UnitTable.frombytes(f) for f in fragments])
            payload = full.tobytes()
        else:
            payload = None
        payload = comm.bcast(payload, root=0)
        full = UnitTable.frombytes(payload)
        combined = comm.allreduce(jr.combined, op="lor")
        return full, combined
    jr = block_join(dense, 0, ndu)
    comm.charge_pairs(jr.pairs_examined)
    if comm.obs is not None:
        comm.obs.add_pairs("join", jr.pairs_examined)
    return jr.cdus, jr.combined


def _eliminate_repeat_cdus(comm: Comm, raw: UnitTable, tau: int,
                           shares: np.ndarray | None = None,
                           want_order: bool = False
                           ) -> tuple[UnitTable, np.ndarray | None]:
    """Algorithm 4: drop repeated CDUs, task-parallel above τ.

    ``shares`` re-fences the flag-marking split for stragglers (see
    :func:`_find_candidate_dense_units`); the even rebuild split below
    is untouched — it is pure cheap selection, not pair work.

    With ``want_order`` the packed token keys this pass sorts anyway
    are reused to also return the unique table's lexicographic
    permutation — the exact order the indexed populator's shared-prefix
    walk wants (pair ids are monotone in the tokens), handed to
    ``populate_global(order=...)`` so the populate pass skips its own
    lexsort.  Otherwise the second element is ``None``.
    """
    n = raw.n_units
    words = pack_tokens(raw.tokens())

    def kept_order(keep: np.ndarray) -> np.ndarray | None:
        # both branches produce raw.select(keep) in original index
        # order (the rank-order fragment concatenation re-assembles
        # exactly that), so one sort of the kept keys is the unique
        # table's canonical permutation on every rank
        return group_sort(words[keep]) if want_order else None

    if comm.size > 1 and n > tau:
        if shares is not None:
            offsets = proportional_splits(
                np.arange(n - 1, -1, -1, dtype=np.float64), shares)
        else:
            offsets = triangular_splits(n, comm.size)
        lo, hi = offsets[comm.rank], offsets[comm.rank + 1]
        pairs = prefix_work(n, hi) - prefix_work(n, lo)
        comm.charge_pairs(pairs)
        if comm.obs is not None:
            comm.obs.add_pairs("dedup", pairs)
        flags = repeat_flags_block(raw, lo, hi, words=words)
        repeats = comm.allreduce(flags, op="lor")
        # build-cdu-with-unique-elements: each rank rebuilds its even
        # 1/p-th of the unique table; parent concatenates in rank order.
        even = even_splits(n, comm.size)
        elo, ehi = even[comm.rank], even[comm.rank + 1]
        keep = ~repeats
        keep_mask = np.zeros(n, dtype=bool)
        keep_mask[elo:ehi] = keep[elo:ehi]
        fragment = raw.select(keep_mask)
        fragments = comm.gather(fragment.tobytes(), root=0)
        if comm.rank == 0:
            unique = UnitTable.concat_all(
                [UnitTable.frombytes(f) for f in fragments])
            payload = unique.tobytes()
        else:
            payload = None
        payload = comm.bcast(payload, root=0)
        return UnitTable.frombytes(payload), kept_order(keep)
    comm.charge_pairs(n)
    if comm.obs is not None:
        comm.obs.add_pairs("dedup", n)
    repeats = raw.repeat_mask(words)
    return drop_repeats(raw, repeats), kept_order(~repeats)


def _identify_dense(comm: Comm, cdus: UnitTable, counts: np.ndarray,
                    grid: Grid, tau: int, min_points: int = 0
                    ) -> tuple[np.ndarray, int]:
    """Algorithm 5: dense mask over the CDU table plus the global Ndu."""
    thresholds = unit_thresholds(grid, cdus)
    n = cdus.n_units
    if comm.size > 1 and n > tau:
        offsets = even_splits(n, comm.size)
        lo, hi = offsets[comm.rank], offsets[comm.rank + 1]
        comm.charge_cells(hi - lo)
        flags = dense_flags_block(counts, thresholds, lo, hi, min_points)
        mask = comm.allreduce(flags, op="lor")
        local_count = np.array([int(flags.sum())], dtype=np.int64)
        ndu = int(comm.allreduce(local_count, op="sum")[0])
        return mask, ndu
    comm.charge_cells(n)
    mask = dense_flags_block(counts, thresholds, 0, n, min_points)
    return mask, int(mask.sum())


#: (dense units, their counts) registered as potential clusters
Registered = list[tuple[UnitTable, np.ndarray]]


def _maximal_registrations(trace: tuple[LevelTrace, ...],
                           mask_fn=maximal_mask) -> Registered:
    """The ``report='maximal'`` / ``'merged'`` policies: every dense unit
    passing ``mask_fn`` against the next level seeds a cluster."""
    registered: Registered = []
    for i, level in enumerate(trace):
        if level.n_dense == 0:
            continue
        higher = trace[i + 1].dense if i + 1 < len(trace) else None
        mask = mask_fn(level.dense, higher)
        if mask.any():
            registered.append((level.dense.select(mask),
                               level.dense_counts[mask]))
    return registered


def registrations_for_report(trace: tuple[LevelTrace, ...],
                             registered: Registered,
                             report: str) -> Registered:
    """The registrations to assemble for a given ``report`` policy.

    ``"paper"`` reports the units registered during the level loop
    verbatim; ``"maximal"`` / ``"merged"`` re-derive them from the
    trace.  Shared by the batch driver and the streaming snapshot so
    both assemble clusters from the same registrations for the same
    trace.
    """
    if report == "maximal":
        return _maximal_registrations(tuple(trace))
    if report == "merged":
        return _maximal_registrations(tuple(trace), merged_mask)
    return registered


def assemble_clusters(grid: Grid, registered: Registered
                      ) -> tuple[Cluster, ...]:
    """print-clusters(): merge connected registered dense units into
    clusters, reported highest dimensionality first."""
    clusters: list[Cluster] = []
    for table, counts in registered:
        if table.n_units == 0:
            continue
        for dims, rows in table.group_by_subspace().items():
            subspace = Subspace(dims)
            bins = table.bins[rows].astype(np.int64)
            labels = face_adjacent_components(bins)
            for label in range(int(labels.max()) + 1):
                members = rows[labels == label]
                member_bins = table.bins[members].astype(np.int64)
                clusters.append(Cluster(
                    subspace=subspace,
                    units_bins=member_bins,
                    dnf=dnf_terms(grid, subspace, member_bins),
                    point_count=int(counts[rows][labels == label].sum()),
                ))
    clusters.sort(key=lambda c: (-c.dimensionality, c.subspace.dims,
                                 c.units_bins.tolist()))
    return tuple(clusters)


def pmafia_rank(comm: Comm, data: Any, params: MafiaParams | None = None,
                domains: np.ndarray | None = None, *,
                checkpoint_dir: Any = None, resume: bool = False,
                retry: RetryPolicy | None = None) -> ClusteringResult:
    """Run one rank of pMAFIA (Algorithm 2).  Call through
    :func:`repro.core.mafia.mafia` or :func:`pmafia` unless you are
    driving your own SPMD program.

    With ``checkpoint_dir`` set, rank 0 serialises the level frontier
    after every completed level; with ``resume`` additionally set, the
    run restarts from the newest checkpoint in that directory (all
    ranks receive the restored state by broadcast), re-running only the
    remaining passes — the result is bit-identical to an uninterrupted
    run because every later pass is a deterministic function of the
    per-level state.  ``retry`` bounds transient chunk-read failures
    (see :mod:`repro.io.resilient`).

    With ``params.trace`` / ``params.metrics`` set, a per-rank
    :class:`~repro.obs.RankObs` observes the whole run (spans, counters,
    collective sizes) without touching the cost model — the returned
    result carries its export in ``.obs`` and, on a checkpointed rank 0,
    a ``run_manifest.json`` is written next to the checkpoints.  With
    both knobs off this wrapper adds a single ``None`` check.
    """
    params = params or MafiaParams()
    obs = RankObs.create(params, comm)
    if obs is None:
        return _pmafia_rank(comm, data, params, domains,
                            checkpoint_dir=checkpoint_dir, resume=resume,
                            retry=retry, obs=None)
    with obs.activate(comm):
        with obs.span("run", cat="run", rank=comm.rank, size=comm.size):
            result = _pmafia_rank(comm, data, params, domains,
                                  checkpoint_dir=checkpoint_dir,
                                  resume=resume, retry=retry, obs=obs)
        if checkpoint_dir is not None and comm.rank == 0:
            manifest = build_manifest(result, phases=obs.phase_seconds(),
                                      nprocs=comm.size,
                                      virtual_seconds=comm.time(),
                                      join_strategies=obs.join_strategies())
            write_manifest(Path(checkpoint_dir) / MANIFEST_NAME, manifest)
    return replace(result, obs=obs.export())


def _pmafia_rank(comm: Comm, data: Any, params: MafiaParams,
                 domains: np.ndarray | None, *, checkpoint_dir: Any,
                 resume: bool, retry: RetryPolicy | None,
                 obs: RankObs | None) -> ClusteringResult:
    """The actual per-rank driver; ``obs`` is this rank's observer (or
    ``None``, making every hook a plain ``is None`` check)."""
    recovery = getattr(comm, "recovery", None)
    boot = recovery.boot if recovery is not None else None

    def announce(site: str, level: int | None = None) -> None:
        # a safe point between passes: inject any planned fault, then
        # act on a pending park directive before entering the next
        # collective sequence
        fault_site(comm, site, level)
        if recovery is not None:
            recovery.poll()

    fault_site(comm, "start")
    source, start, stop = _local_view(comm, data)
    n_local = stop - start

    state = None
    prior_manifest = None
    if boot is not None:
        # replacement rank: every survivor is parked deep in the run, so
        # nothing on this path may enter a collective — derive the
        # global count solo and load the agreed restore-level checkpoint
        # straight from disk.
        if checkpoint_dir is None:
            raise CheckpointError(
                "a replacement rank needs a checkpoint directory")
        n_records = _solo_record_count(data)
        if n_records == 0:
            raise DataError("cannot cluster an empty data set")
        with _ospan(obs, "recovery.rebuild", cat="recovery",
                    level=boot.level, epoch=boot.epoch):
            state = load_checkpoint(checkpoint_path(checkpoint_dir,
                                                    boot.level))
            check_compatible(state, params, n_records)
            prior_manifest = load_shard_manifest(checkpoint_dir, comm.rank)
        if obs is not None:
            obs.recovery_event("rebuilt", level=boot.level,
                               epoch=boot.epoch)
    else:
        n_records = int(comm.allreduce(np.array([n_local], dtype=np.int64),
                                       op="sum")[0])
        if n_records == 0:
            raise DataError("cannot cluster an empty data set")
        if checkpoint_dir is not None and resume:
            with _ospan(obs, "checkpoint_restore", cat="checkpoint") as sp:
                if comm.rank == 0:
                    state = load_latest_checkpoint(checkpoint_dir)
                state = comm.bcast(state, root=0)
                if state is not None:
                    check_compatible(state, params, n_records)
                    if sp is not None:
                        sp["level"] = state["level"]
                    if obs is not None:
                        obs.checkpoint_restored(state["level"])

    def save_level(level: int, trace: list[LevelTrace],
                   registered: Registered, grid: Grid,
                   domains: np.ndarray) -> None:
        if recovery is not None:
            # every rank keeps the frontier in memory so a *survivor*
            # can unwind to any agreed restore level without disk I/O
            recovery.snapshot(level, trace, registered)
        if checkpoint_dir is None or comm.rank != 0:
            return
        with _ospan(obs, "checkpoint_save", cat="checkpoint", level=level):
            path = save_checkpoint(checkpoint_dir, level, {
                "level": level,
                "params": params,
                "n_records": n_records,
                "domains": np.asarray(domains, dtype=np.float64),
                "grid": grid,
                "grid_hash": grid_fingerprint(grid),
                "trace": tuple(trace),
                "registered": tuple(registered),
            })
        if obs is not None:
            obs.checkpoint_saved(level, path.stat().st_size)

    if state is not None:
        domains = state["domains"]
        grid = state["grid"]
        trace = list(state["trace"])
        registered = list(state["registered"])
    else:
        with phase("grid"):
            if domains is None:
                fault_site(comm, "domains", 0)
                domains = global_domains(source, comm, params.chunk_records,
                                         start, stop, retry)
            else:
                domains = np.asarray(domains, dtype=np.float64)
            fault_site(comm, "histogram", 0)
            fine = fine_histogram_global(source, comm, domains,
                                         params.fine_bins,
                                         params.chunk_records, start, stop,
                                         retry)
            grid = build_grid(fine, domains, n_records, params)
        trace = []
        registered = []

    # once the grid is fixed, stage this rank's bin-index store — every
    # level pass then streams compact indices instead of re-locating the
    # float records (charges nothing, like shared-to-local staging)
    with _ospan(obs, "stage_binned", cat="io"):
        binned = stage_binned(source, comm, grid, params.chunk_records,
                              start, stop, policy=params.bin_cache,
                              retry=retry)

    # ... and on top of it the persistent per-(dim, bin) bitmap index:
    # level passes become AND + popcount over cached bitmaps with no
    # data reads at all (also free on the virtual clock — the indexed
    # engine replays the streaming engines' exact charge sequence)
    with _ospan(obs, "stage_bitmap_index", cat="io"):
        index = stage_bitmap_index(source, comm, grid,
                                   params.chunk_records, start, stop,
                                   policy=params.bitmap_index,
                                   budget=params.bitmap_budget,
                                   binned=binned, retry=retry)
    # one populator for the whole run: its prefix-AND memo spans level
    # passes (level-(k+1) CDUs extend level-k dense units), and one
    # long-lived overlap worker instead of a pool per level
    indexed = None if index is None else IndexedPopulator(
        index, budget=params.bitmap_budget,
        compute_threads=params.compute_threads)
    runner = OverlapRunner()

    # the direct-mining engine needs a staged bin store to project
    # transactions from and is never built on the virtual clock (the
    # sim backend models the paper's per-level sweep; see ISSUE 10)
    miner = None
    if (params.direct_mining and binned is not None
            and params.join_strategy in ("auto", "direct")
            and not getattr(comm, "models_paper_costs", False)):
        miner = DirectMiner(binned, comm,
                            chunk_records=params.chunk_records,
                            max_level=params.max_dimensionality,
                            max_subsets=params.direct_max_subsets,
                            max_transactions=params.direct_max_transactions)

    # each rank records what its shard is made of next to the level
    # checkpoints; a future replacement verifies the witness against the
    # checkpointed grid before trusting the staged on-disk artifacts
    if checkpoint_dir is not None:
        ghash = grid_fingerprint(grid).hex()
        if boot is not None and obs is not None:
            reused = (prior_manifest is not None
                      and prior_manifest.get("size") == comm.size
                      and prior_manifest.get("grid_hash") == ghash
                      and prior_manifest.get("record_range")
                      == [int(start), int(stop)])
            obs.recovery_event("shard_manifest", rank=comm.rank,
                               reused=bool(reused))
        save_shard_manifest(checkpoint_dir, comm.rank, {
            "size": comm.size,
            "record_range": [int(start), int(stop)],
            "n_records": int(n_records),
            "grid_hash": ghash,
            "data_path": os.fspath(data)
            if isinstance(data, (str, os.PathLike)) else None,
            "staged_path": _artifact_path(source),
            "binned_path": _artifact_path(binned),
            "bitmap_path": _artifact_path(index),
        })

    monitor = StragglerMonitor.create(params, comm)

    # token packing for the *next* level's hash/fptree join can overlap
    # the population reduce — it only reads the CDU table, which is
    # fixed before the pass starts
    may_pack = params.join_strategy in ("hash", "fptree", "direct") or (
        params.join_strategy == "auto"
        and not getattr(comm, "models_paper_costs", False))

    def level_pass(cdus: UnitTable, raw_count: int, level: int,
                   counts_fn=None, order: np.ndarray | None = None
                   ) -> tuple[LevelTrace, np.ndarray | None]:
        announce("populate", level)
        with _ospan(obs, "level", cat="level", level=level) as sp:
            packed: dict[str, np.ndarray] = {}
            overlap = None
            if may_pack and cdus.n_units:
                def overlap() -> None:
                    packed["tokens"] = cdus.tokens()
            pop_start = time.perf_counter()
            with phase("population"):
                if counts_fn is not None:
                    # direct-mining levels: counts come straight off
                    # the merged table — no data pass, no reduce (the
                    # token pack the classic path overlaps with the
                    # reduce runs inline; it is the lookup key anyway)
                    if overlap is not None:
                        overlap()
                    counts = counts_fn(cdus)
                else:
                    counts = populate_global(source, comm, grid, cdus,
                                             params.chunk_records, start,
                                             stop, retry, binned=binned,
                                             indexed=indexed,
                                             prefetch=params.prefetch,
                                             overlap=overlap,
                                             runner=runner, order=order)
            pop_seconds = time.perf_counter() - pop_start
            mask, ndu = _identify_dense(comm, cdus, counts, grid,
                                        params.tau, params.min_bin_points)
            if sp is not None:
                sp["n_cdus"] = cdus.n_units
                sp["n_dense"] = ndu
            if obs is not None:
                obs.level_stats(level, raw_count, cdus.n_units, ndu)
            dense, dense_counts = dense_units(cdus, counts, mask)
            tokens = packed.get("tokens")
            dense_tokens = tokens[mask] if tokens is not None else None
            trace_entry = LevelTrace(level=level, n_cdus_raw=raw_count,
                                     n_cdus=cdus.n_units, n_dense=ndu,
                                     dense=dense, dense_counts=dense_counts)
        if monitor is not None:
            monitor.observe(level, pop_seconds)
        return trace_entry, dense_tokens

    try:
        dense_tokens = None  # resumed runs repack lazily inside the join
        if state is None:
            # a fresh checkpointed run must not leave stale higher-level
            # files behind for a later resume to pick up
            if checkpoint_dir is not None and comm.rank == 0:
                clear_checkpoints(checkpoint_dir)
            # the level-0 checkpoint (grid + domains, empty frontier)
            # makes even a rank lost during the *first* level pass
            # recoverable without replaying grid construction
            save_level(0, trace, registered, grid, domains)
        elif recovery is not None:
            recovery.snapshot(state["level"], trace, registered)
        if recovery is not None:
            recovery.arm()
        # the retry loop of the recovery protocol: a RecoveryInterrupt
        # unwinds this rank to the restore level the supervisor agreed
        # on, then the level loop replays from there — deterministically,
        # so the final result is bit-identical to a fault-free run
        while True:
            try:
                if not trace:
                    cdus = _level_one_cdus(grid)
                    first, dense_tokens = level_pass(cdus, cdus.n_units, 1)
                    trace.append(first)
                    save_level(1, trace, registered, grid, domains)
                current = trace[-1]
                while current.n_dense > 0:
                    dense, dense_counts = current.dense, current.dense_counts
                    if current.level >= params.max_dimensionality:
                        registered.append((dense, dense_counts))
                        break
                    announce("join", current.level)
                    shares = monitor.shares() if monitor is not None else None
                    if shares is not None and obs is not None:
                        obs.rebalance_event(current.level, monitor.last_ratio)
                    with phase("join"):
                        if dense_tokens is None and may_pack \
                                and dense.n_units:
                            # resumed runs arrive without the overlapped
                            # token pack; repack before resolving so the
                            # auto probe sees the same stats
                            dense_tokens = dense.tokens()
                        strategy, keep = resolved_join_strategy(
                            params, comm, dense.n_units, current.level,
                            tokens=dense_tokens, miner=miner)
                        if obs is not None:
                            obs.join_strategy(current.level, strategy)
                        if strategy == "direct":
                            # join + dedup entirely local (all ranks
                            # hold the full dense table); charge the
                            # fences the classic join would have
                            step = lattice_step(dense, dense_tokens,
                                                keep=keep, obs=obs)
                            replay_join_charges(comm, dense.n_units,
                                                step.row_pair_counts,
                                                params.tau, shares=shares)
                            raw_count, combined = step.n_raw, step.combined
                        else:
                            step = None
                            raw, combined = _find_candidate_dense_units(
                                comm, dense, params.tau, strategy=strategy,
                                tokens=dense_tokens, shares=shares,
                                keep=keep)
                            raw_count = raw.n_units
                    # non-combinable dense units are registered as
                    # potential clusters
                    if (~combined).any():
                        registered.append((dense.select(~combined),
                                           dense_counts[~combined]))
                    if raw_count == 0:
                        if combined.any():
                            registered.append((dense.select(combined),
                                               dense_counts[combined]))
                        break
                    announce("dedup", current.level)
                    with phase("dedup"):
                        if step is not None:
                            replay_dedup_charges(comm, step.n_raw,
                                                 params.tau, shares=shares)
                            cdus, pop_order = step.cdus, None
                        else:
                            cdus, pop_order = _eliminate_repeat_cdus(
                                comm, raw, params.tau, shares=shares,
                                want_order=indexed is not None)
                    nxt, dense_tokens = level_pass(
                        cdus, raw_count, current.level + 1,
                        counts_fn=miner.counts_for
                        if step is not None else None,
                        order=pop_order)
                    trace.append(nxt)
                    if nxt.n_dense == 0 and combined.any():
                        # the combinable units were the top of the
                        # lattice after all
                        registered.append((dense.select(combined),
                                           dense_counts[combined]))
                    current = nxt
                    save_level(current.level, trace, registered, grid,
                               domains)
                reg = registrations_for_report(tuple(trace), registered,
                                               params.report)
                with phase("assembly"):
                    if comm.rank == 0:
                        clusters = assemble_clusters(grid, reg)
                    else:
                        clusters = None
                    clusters = comm.bcast(clusters, root=0)
                break
            except RecoveryInterrupt as intr:
                if recovery is None:
                    raise
                with _ospan(obs, "recovery.park", cat="recovery",
                            epoch=intr.epoch):
                    level, trace_t, reg_t = recovery.park_and_await(intr)
                trace = list(trace_t)
                registered = list(reg_t)
                dense_tokens = None
                if miner is not None:
                    # replay re-decides engagement level by level; a
                    # replacement has no miner history, so survivors
                    # must forget theirs to keep the collective engage
                    # sequence symmetric
                    miner.reset()
                if monitor is not None:
                    # the replacement has no timing history; fences must
                    # be derived from data every rank agrees on
                    monitor.reset()
                if obs is not None:
                    obs.recovery_event("resumed", level=level)
    finally:
        runner.close()
        if indexed is not None:
            indexed.close()

    return ClusteringResult(grid=grid, clusters=clusters,
                            trace=tuple(trace), params=params,
                            n_records=n_records)
