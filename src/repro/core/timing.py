"""Per-phase wall-clock attribution for a (p)MAFIA run.

.. deprecated-but-stable::
    This module predates the structured observability subsystem
    (:mod:`repro.obs`) and is now a thin shim over it: the same
    :func:`phase` brackets in the driver feed *both* the legacy
    :class:`PhaseTimes` collector and — when a run is traced — a
    ``cat="phase"`` span on the rank's ambient tracer, with wall and
    virtual timestamps.  ``phase_timer()`` keeps working exactly as
    before and is not going away, but new code that wants per-phase
    breakdowns should prefer ``MafiaParams(trace=True)`` and read
    ``result.obs`` / ``run.obs`` (see ``docs/OBSERVABILITY.md``).

The driver brackets its hot phases — ``grid``, ``join``, ``dedup``,
``population``, ``assembly`` — with :func:`phase`, and a caller that
wants the breakdown wraps the run in :func:`phase_timer`.  Outside a
timer (and outside a traced run) the brackets are free no-ops, so the
instrumented driver costs nothing in normal runs.

The active collector lives in a :class:`contextvars.ContextVar`, so
concurrent runs on different threads (the thread backend spawns one
driver per rank) each see their own collector — or none — without
locking.  Phases may nest; inner phases are *not* subtracted from outer
ones, each bracket just accumulates its own elapsed wall time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

from ..obs import trace as _obs_trace

_collector: ContextVar["PhaseTimes | None"] = ContextVar(
    "repro_phase_times", default=None)


@dataclass
class PhaseTimes:
    """Accumulated seconds per phase name, in first-seen order."""

    seconds: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds into phase ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total(self) -> float:
        return sum(self.seconds.values())


@contextmanager
def phase_timer() -> Iterator[PhaseTimes]:
    """Collect phase timings for everything run inside the block."""
    times = PhaseTimes()
    token = _collector.set(times)
    try:
        yield times
    finally:
        _collector.reset(token)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Attribute the block's wall time to ``name``.

    Feeds the legacy :class:`PhaseTimes` collector when one is active
    *and* records a ``cat="phase"`` span on the ambient tracer when the
    run is traced (:mod:`repro.obs`); with neither active the bracket
    is a free no-op.
    """
    times = _collector.get()
    tracer = _obs_trace.current_tracer()
    if times is None and tracer is None:
        yield
        return
    start = time.perf_counter()
    try:
        if tracer is None:
            yield
        else:
            with tracer.span(name, cat="phase"):
                yield
    finally:
        if times is not None:
            times.add(name, time.perf_counter() - start)
