"""Cluster assembly: merging connected dense units (§3).

"Clusters are unions of connected high density cells.  Two k-dimensional
cells are connected if they have a common face in the k-dimensional
space or if they are connected by a common cell."  Within one subspace,
two units share a face when their bin vectors agree in all but one
position and differ by exactly one there; transitive closure is the
usual union-find.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError


class UnionFind:
    """Plain array-based union-find with path halving + union by size."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise DataError(f"n must be >= 0, got {n}")
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        """Root of ``x``'s set (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were separate."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def labels(self) -> np.ndarray:
        """Component label per element, relabelled to 0..n_components-1 in
        first-appearance order."""
        roots = [self.find(x) for x in range(len(self.parent))]
        mapping: dict[int, int] = {}
        out = np.empty(len(roots), dtype=np.int64)
        for i, r in enumerate(roots):
            out[i] = mapping.setdefault(r, len(mapping))
        return out


def face_adjacent_components(bins: np.ndarray) -> np.ndarray:
    """Component labels for units (rows of bin indices) under common-face
    adjacency within one subspace.

    For each coordinate position, rows are grouped by the remaining
    coordinates; within a group, sorted neighbouring bin values differing
    by exactly 1 share a face.
    """
    bins = np.asarray(bins, dtype=np.int64)
    if bins.ndim != 2:
        raise DataError(f"bins must be 2-D, got shape {bins.shape}")
    n, k = bins.shape
    uf = UnionFind(n)
    if n <= 1:
        return uf.labels()
    for j in range(k):
        groups: dict[tuple[int, ...], list[int]] = {}
        others = np.delete(bins, j, axis=1)
        for i in range(n):
            groups.setdefault(tuple(others[i]), []).append(i)
        for rows in groups.values():
            if len(rows) < 2:
                continue
            rows_sorted = sorted(rows, key=lambda i: bins[i, j])
            for a, b in zip(rows_sorted, rows_sorted[1:]):
                if bins[b, j] - bins[a, j] == 1:
                    uf.union(a, b)
    return uf.labels()
