"""Optimal task partitioning of triangular unit-pair work — equation (1).

Building CDUs compares each dense unit with every unit after it, so row
``i`` of the unit array carries ``Ndu - i`` comparisons (the paper counts
the self-comparison, giving total ``Ndu(Ndu+1)/2``).  Splitting rows
evenly would overload the low ranks; the paper instead picks split
points ``n_1 < ... < n_{p-1}`` so each rank gets ``Ndu(Ndu+1)/(2p)``
comparisons, "solving the p-1 equations iteratively ... by solving the
above quadratic equation" (§4.3).

This module solves the same quadratics in closed form.  The identical
schedule balances repeat elimination (with Ncdu substituted for Ndu).

:func:`weighted_splits` generalises equation (1) to arbitrary per-row
weights: the sub-signature hash join knows each pivot row's *realised*
pair count (``HashJoinPlan.row_pair_counts``), so ranks are fenced by
equalising actual bucket pairs instead of the triangular ``Ndu − i``
upper bound.  The fences stay row fences — every rank still owns a
contiguous ``[start, stop)`` pivot range, so concatenating rank outputs
in rank order reproduces the serial row order bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError


def row_work(n_units: int, row: int) -> int:
    """Comparisons charged to ``row``: itself plus everything after it."""
    if not 0 <= row < n_units:
        raise ParameterError(f"row {row} out of range for {n_units} units")
    return n_units - row


def prefix_work(n_units: int, m: int) -> int:
    """Total comparisons of rows ``[0, m)``: ``m·n - m(m-1)/2``."""
    if not 0 <= m <= n_units:
        raise ParameterError(f"prefix {m} out of range for {n_units} units")
    return m * n_units - m * (m - 1) // 2


def triangular_splits(n_units: int, n_ranks: int) -> list[int]:
    """Fence-post offsets ``[0, n_1, ..., n_{p-1}, Ndu]`` balancing the
    triangular workload across ``n_ranks`` processors.

    Rank ``i`` processes rows ``[offsets[i], offsets[i+1])``.  Each split
    point solves the quadratic ``m² - (2n+1)m + 2·target = 0`` where
    ``target`` is the cumulative work the first ``i+1`` ranks should own.
    """
    if n_units < 0:
        raise ParameterError(f"n_units must be >= 0, got {n_units}")
    if n_ranks <= 0:
        raise ParameterError(f"n_ranks must be positive, got {n_ranks}")
    n = n_units
    total = n * (n + 1) / 2.0
    offsets = [0]
    for i in range(1, n_ranks):
        target = total * i / n_ranks
        disc = (2 * n + 1) ** 2 - 8.0 * target
        m = ((2 * n + 1) - math.sqrt(max(disc, 0.0))) / 2.0
        cut = int(round(m))
        cut = max(offsets[-1], min(cut, n))
        offsets.append(cut)
    offsets.append(n)
    return offsets


def split_range(n_units: int, n_ranks: int, rank: int) -> tuple[int, int]:
    """The ``[start, stop)`` row range of ``rank`` under the triangular
    partition."""
    if not 0 <= rank < n_ranks:
        raise ParameterError(f"rank {rank} out of range for {n_ranks} ranks")
    offsets = triangular_splits(n_units, n_ranks)
    return offsets[rank], offsets[rank + 1]


def weighted_splits(weights: "np.ndarray | list[int]",
                    n_ranks: int) -> list[int]:
    """Fence-post offsets balancing arbitrary non-negative per-row work.

    Equation (1) with the closed-form triangular prefix replaced by the
    cumulative sum of ``weights``: split ``i`` lands where the prefix
    work first reaches ``i/p`` of the total.  With
    ``weights = [n, n−1, ..., 1]`` this reproduces
    :func:`triangular_splits` up to rounding.
    """
    if n_ranks <= 0:
        raise ParameterError(f"n_ranks must be positive, got {n_ranks}")
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ParameterError(f"weights must be 1-d, got shape {w.shape}")
    if (w < 0).any():
        raise ParameterError("weights must be non-negative")
    n = w.shape[0]
    prefix = np.cumsum(w)
    total = prefix[-1] if n else 0.0
    offsets = [0]
    for i in range(1, n_ranks):
        target = total * i / n_ranks
        cut = int(np.searchsorted(prefix, target, side="left")) + 1 \
            if total > 0 else 0
        cut = max(offsets[-1], min(cut, n))
        offsets.append(cut)
    offsets.append(n)
    return offsets


def proportional_splits(weights: "np.ndarray | list[int]",
                        shares: "np.ndarray | list[float]") -> list[int]:
    """Fence-post offsets giving rank ``i`` a ``shares[i]`` fraction of
    the total per-row work — :func:`weighted_splits` generalised to
    heterogeneous rank capacity.

    The straggler rebalancer feeds realised per-rank speeds as
    ``shares`` so a slow rank is fenced a proportionally smaller pivot
    range for the next join/dedup pass.  Fences remain contiguous row
    ranges, so rank-order concatenation still reproduces the serial row
    order bit-for-bit; with uniform shares this matches
    ``weighted_splits(weights, len(shares))`` up to floating-point
    tie-breaking when a prefix target lands exactly on a fence.
    """
    s = np.asarray(shares, dtype=np.float64)
    if s.ndim != 1 or s.shape[0] == 0:
        raise ParameterError(
            f"shares must be a non-empty 1-d vector, got shape {s.shape}")
    if (s < 0).any() or not np.isfinite(s).all():
        raise ParameterError("shares must be finite and non-negative")
    if s.sum() <= 0:
        raise ParameterError("shares must not sum to zero")
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ParameterError(f"weights must be 1-d, got shape {w.shape}")
    if (w < 0).any():
        raise ParameterError("weights must be non-negative")
    n = w.shape[0]
    n_ranks = s.shape[0]
    prefix = np.cumsum(w)
    total = prefix[-1] if n else 0.0
    cumshare = np.cumsum(s) / s.sum()
    offsets = [0]
    for i in range(1, n_ranks):
        target = total * cumshare[i - 1]
        cut = int(np.searchsorted(prefix, target, side="left")) + 1 \
            if total > 0 else 0
        cut = max(offsets[-1], min(cut, n))
        offsets.append(cut)
    offsets.append(n)
    return offsets


def even_splits(n_units: int, n_ranks: int) -> list[int]:
    """Plain near-equal row split (used where per-row work is constant,
    e.g. Identify-dense-units divides Ncdu by p)."""
    if n_units < 0:
        raise ParameterError(f"n_units must be >= 0, got {n_units}")
    if n_ranks <= 0:
        raise ParameterError(f"n_ranks must be positive, got {n_ranks}")
    base, extra = divmod(n_units, n_ranks)
    offsets = [0]
    for r in range(n_ranks):
        offsets.append(offsets[-1] + base + (1 if r < extra else 0))
    return offsets
