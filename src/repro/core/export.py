"""Serialisation of clustering results and compiled serving models.

pMAFIA's output — minimal DNF expressions per cluster — is meant for
the end user (§3.2), so the library exports results as plain
JSON-compatible dictionaries: grid geometry, per-level trace, and each
cluster's subspace, units, DNF and population.  ``result_from_dict``
round-trips everything, enabling result files, diffing runs, and the
command-line interface.

Two sizes of JSON output: :func:`result_to_json` defaults to the
compact encoding (``indent=None`` with tight separators — large
results stay one-third the pretty-printed size), and
:func:`write_result_json` streams the encoder's chunks straight to the
file instead of materialising one giant string.

The serving layer's compiled models have their own versioned format
(``pmafia-compiled-model``/1): :func:`model_to_dict` /
:func:`model_from_dict` carry the flat DNF condition table plus
cluster metadata, so a model exported today recompiles identically on
load without shipping the full clustering result.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO

import numpy as np

from ..errors import DataError
from ..params import MafiaParams
from ..types import Cluster, DimensionGrid, DNFTerm, Grid, Subspace
from .result import ClusteringResult, LevelTrace
from .units import UnitTable


def grid_to_dict(grid: Grid) -> dict[str, Any]:
    return {
        "dims": [
            {"dim": dg.dim, "edges": list(dg.edges),
             "thresholds": list(dg.thresholds), "uniform": dg.uniform}
            for dg in grid
        ]
    }


def grid_from_dict(payload: dict[str, Any]) -> Grid:
    try:
        dims = tuple(
            DimensionGrid(dim=int(d["dim"]),
                          edges=tuple(float(e) for e in d["edges"]),
                          thresholds=tuple(float(t) for t in d["thresholds"]),
                          uniform=bool(d["uniform"]))
            for d in payload["dims"])
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed grid payload: {exc}") from exc
    return Grid(dims=dims)


def cluster_to_dict(cluster: Cluster) -> dict[str, Any]:
    return {
        "subspace": list(cluster.subspace.dims),
        "units_bins": cluster.units_bins.tolist(),
        "point_count": cluster.point_count,
        "dnf": [
            {"intervals": [[lo, hi] for lo, hi in term.intervals]}
            for term in cluster.dnf
        ],
    }


def cluster_from_dict(payload: dict[str, Any]) -> Cluster:
    try:
        subspace = Subspace(tuple(int(d) for d in payload["subspace"]))
        dnf = tuple(
            DNFTerm(subspace=subspace,
                    intervals=tuple((float(lo), float(hi))
                                    for lo, hi in term["intervals"]))
            for term in payload["dnf"])
        return Cluster(subspace=subspace,
                       units_bins=np.asarray(payload["units_bins"],
                                             dtype=np.int64),
                       dnf=dnf,
                       point_count=int(payload["point_count"]))
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed cluster payload: {exc}") from exc


def trace_to_dict(trace: LevelTrace) -> dict[str, Any]:
    return {
        "level": trace.level,
        "n_cdus_raw": trace.n_cdus_raw,
        "n_cdus": trace.n_cdus,
        "n_dense": trace.n_dense,
        "dense_dims": trace.dense.dims.tolist(),
        "dense_bins": trace.dense.bins.tolist(),
        "dense_counts": np.asarray(trace.dense_counts).tolist(),
    }


def trace_from_dict(payload: dict[str, Any]) -> LevelTrace:
    try:
        level = int(payload["level"])
        dims = np.asarray(payload["dense_dims"], dtype=np.uint8)
        bins = np.asarray(payload["dense_bins"], dtype=np.uint8)
        if dims.size == 0:
            dense = UnitTable.empty(level)
        else:
            dense = UnitTable(dims=dims, bins=bins)
        return LevelTrace(
            level=level,
            n_cdus_raw=int(payload["n_cdus_raw"]),
            n_cdus=int(payload["n_cdus"]),
            n_dense=int(payload["n_dense"]),
            dense=dense,
            dense_counts=np.asarray(payload["dense_counts"], dtype=np.int64))
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed trace payload: {exc}") from exc


def result_to_dict(result: ClusteringResult) -> dict[str, Any]:
    """The whole clustering as a JSON-compatible dictionary."""
    params = result.params
    params_dict = {
        field: getattr(params, field)
        for field in getattr(params, "__dataclass_fields__", {})
    }
    return {
        "format": "pmafia-result",
        "version": 1,
        "n_records": result.n_records,
        "params": params_dict,
        "grid": grid_to_dict(result.grid),
        "clusters": [cluster_to_dict(c) for c in result.clusters],
        "trace": [trace_to_dict(t) for t in result.trace],
    }


def result_from_dict(payload: dict[str, Any]) -> ClusteringResult:
    """Inverse of :func:`result_to_dict` (params decode as MafiaParams
    when the fields fit, else stay a plain dict)."""
    if payload.get("format") != "pmafia-result":
        raise DataError("not a pmafia-result payload")
    if payload.get("version") != 1:
        raise DataError(f"unsupported result version {payload.get('version')}")
    raw_params = dict(payload.get("params", {}))
    if isinstance(raw_params.get("bins", None), list):
        raw_params["bins"] = tuple(raw_params["bins"])
    params: Any = raw_params
    from ..params import CliqueParams
    for cls in (MafiaParams, CliqueParams):
        try:
            params = cls(**raw_params)
            break
        except Exception:
            continue
    return ClusteringResult(
        grid=grid_from_dict(payload["grid"]),
        clusters=tuple(cluster_from_dict(c) for c in payload["clusters"]),
        trace=tuple(trace_from_dict(t) for t in payload["trace"]),
        params=params,
        n_records=int(payload["n_records"]))


def result_to_json(result: ClusteringResult,
                   indent: int | None = None) -> str:
    """The clustering as a JSON string.

    The default ``indent=None`` is the compact encoding (no whitespace
    between tokens) — on a large result the pretty-printed form is
    ~3x the bytes, all of it spaces and newlines.  Pass ``indent=2``
    for a human-facing dump, or use :func:`write_result_json` to
    stream a big result to disk without building the string at all.
    """
    return json.dumps(result_to_dict(result), indent=indent,
                      separators=((",", ":") if indent is None else None))


def write_result_json(path_or_file: str | Path | IO[str],
                      result: ClusteringResult,
                      indent: int | None = None) -> None:
    """Stream the clustering as JSON to a path or open text file.

    Unlike ``write_text(result_to_json(...))`` this never materialises
    the whole document as one string: ``json.dump`` yields the encoder
    chunks straight into the file object.
    """
    separators = (",", ":") if indent is None else None
    if hasattr(path_or_file, "write"):
        json.dump(result_to_dict(result), path_or_file, indent=indent,
                  separators=separators)
        path_or_file.write("\n")
        return
    with open(path_or_file, "w") as fh:
        json.dump(result_to_dict(result), fh, indent=indent,
                  separators=separators)
        fh.write("\n")


def result_from_json(text: str) -> ClusteringResult:
    """Parse a clustering back from :func:`result_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DataError(f"invalid result JSON: {exc}") from exc
    return result_from_dict(payload)


# -- compiled serving models --------------------------------------------

MODEL_FORMAT = "pmafia-compiled-model"
MODEL_VERSION = 1


def model_to_dict(model: Any) -> dict[str, Any]:
    """A compiled serving model as a versioned JSON-compatible dict.

    The payload carries the flat DNF condition table
    (:class:`repro.core.dnf.TermArrays`) plus cluster metadata — the
    exact inputs of :func:`repro.serve.compile.compile_arrays` — so
    importing rebuilds a bit-identical evaluator without needing the
    original clustering result or its grid.
    """
    terms = model.terms
    return {
        "format": MODEL_FORMAT,
        "version": MODEL_VERSION,
        "ndim": int(model.ndim),
        "clusters": [
            {"subspace": list(dims), "point_count": int(count)}
            for dims, count in zip(model.subspaces, model.point_counts)
        ],
        "terms": {
            "term_cluster": model.terms.term_cluster.tolist(),
            "cond_term": terms.cond_term.tolist(),
            "cond_dim": terms.cond_dim.tolist(),
            "cond_lo": terms.cond_lo.tolist(),
            "cond_hi": terms.cond_hi.tolist(),
        },
    }


def model_from_dict(payload: dict[str, Any]) -> Any:
    """Inverse of :func:`model_to_dict`: recompile the evaluator."""
    from ..core.dnf import TermArrays
    from ..serve.compile import compile_arrays

    if payload.get("format") != MODEL_FORMAT:
        raise DataError("not a pmafia-compiled-model payload")
    if payload.get("version") != MODEL_VERSION:
        raise DataError(
            f"unsupported compiled-model version {payload.get('version')}")
    try:
        t = payload["terms"]
        terms = TermArrays(
            n_clusters=len(payload["clusters"]),
            term_cluster=np.asarray(t["term_cluster"], dtype=np.int64),
            cond_term=np.asarray(t["cond_term"], dtype=np.int64),
            cond_dim=np.asarray(t["cond_dim"], dtype=np.int64),
            cond_lo=np.asarray(t["cond_lo"], dtype=np.float64),
            cond_hi=np.asarray(t["cond_hi"], dtype=np.float64))
        subspaces = [tuple(int(d) for d in c["subspace"])
                     for c in payload["clusters"]]
        counts = [int(c.get("point_count", 0))
                  for c in payload["clusters"]]
        ndim = int(payload["ndim"])
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed compiled-model payload: {exc}") from exc
    return compile_arrays(terms, ndim, subspaces=subspaces,
                          point_counts=counts)


def model_to_json(model: Any, indent: int | None = None) -> str:
    """A compiled serving model as a JSON string (compact by default)."""
    return json.dumps(model_to_dict(model), indent=indent,
                      separators=((",", ":") if indent is None else None))


def model_from_json(text: str) -> Any:
    """Parse a compiled model back from :func:`model_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DataError(f"invalid compiled-model JSON: {exc}") from exc
    return model_from_dict(payload)
