"""The paper's primary contribution: (p)MAFIA — subspace clustering with
adaptive grids, serial and SPMD-parallel."""

from .adaptive_grid import build_dimension_grid, build_grid, merge_windows, window_maxima
from .candidates import (HashJoinPlan, JoinResult, hash_join_all,
                         hash_join_block, hash_join_plan, join_all,
                         join_block)
from .checkpoint import (CHECKPOINT_VERSION, SHARD_MANIFEST_VERSION,
                         check_compatible, checkpoint_path,
                         clear_checkpoints, latest_checkpoint,
                         load_checkpoint, load_latest_checkpoint,
                         load_shard_manifest, quarantine_checkpoint,
                         save_checkpoint, save_shard_manifest,
                         shard_manifest_path)
from .dedup import drop_repeats, repeat_flags_block
from .fptree import FPTree, fptree_join_plan, prune_entries, suffix_ids
from .dnf import (dnf_terms, greedy_cover, grow_box, maximal_mask,
                  merged_mask, projections)
from .histogram import (fine_histogram_global, fine_histogram_local,
                        global_domains, local_domains)
from .identify import dense_flags_block, dense_units, unit_thresholds
from .export import (result_from_dict, result_from_json, result_to_dict,
                     result_to_json)
from .mafia import (PMafiaRun, mafia, pmafia, pmafia_resumable,
                    pmafia_supervised)
from .merge import UnionFind, face_adjacent_components
from .partition import (even_splits, prefix_work, proportional_splits,
                        row_work, split_range, triangular_splits,
                        weighted_splits)
from .pmafia import assemble_clusters, pmafia_rank
from .rebalance import REBALANCE_THRESHOLD, StragglerMonitor
from .population import populate_global, populate_local
from .result import ClusteringResult, LevelTrace
from .timing import PhaseTimes, phase, phase_timer
from .units import (MAX_BINS, MAX_DIMS, UnitTable, first_occurrence,
                    pack_tokens)

__all__ = [
    "CHECKPOINT_VERSION",
    "REBALANCE_THRESHOLD",
    "SHARD_MANIFEST_VERSION",
    "ClusteringResult",
    "FPTree",
    "StragglerMonitor",
    "HashJoinPlan",
    "JoinResult",
    "PhaseTimes",
    "LevelTrace",
    "MAX_BINS",
    "MAX_DIMS",
    "PMafiaRun",
    "UnionFind",
    "UnitTable",
    "assemble_clusters",
    "build_dimension_grid",
    "build_grid",
    "check_compatible",
    "checkpoint_path",
    "clear_checkpoints",
    "dense_flags_block",
    "dense_units",
    "dnf_terms",
    "drop_repeats",
    "even_splits",
    "face_adjacent_components",
    "fine_histogram_global",
    "fine_histogram_local",
    "first_occurrence",
    "fptree_join_plan",
    "global_domains",
    "greedy_cover",
    "grow_box",
    "hash_join_all",
    "hash_join_block",
    "hash_join_plan",
    "join_all",
    "join_block",
    "latest_checkpoint",
    "load_checkpoint",
    "load_latest_checkpoint",
    "load_shard_manifest",
    "local_domains",
    "mafia",
    "maximal_mask",
    "merged_mask",
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
    "merge_windows",
    "pack_tokens",
    "phase",
    "phase_timer",
    "pmafia",
    "pmafia_rank",
    "pmafia_resumable",
    "pmafia_supervised",
    "proportional_splits",
    "quarantine_checkpoint",
    "save_checkpoint",
    "save_shard_manifest",
    "shard_manifest_path",
    "populate_global",
    "populate_local",
    "prefix_work",
    "projections",
    "prune_entries",
    "repeat_flags_block",
    "row_work",
    "split_range",
    "suffix_ids",
    "triangular_splits",
    "unit_thresholds",
    "weighted_splits",
    "window_maxima",
]
