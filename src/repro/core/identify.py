"""Dense unit identification — Identify-dense-units() (§4.4, Algorithm 5).

"The histogram count of each CDU is compared against the threshold of
all the bins which form the CDU": a CDU is dense when its count exceeds
*every* constituent bin's threshold, i.e. exceeds their maximum.  Each
rank flags its Ncdu/p block (even split — per-row work is constant
here); the flags are OR-reduced and the dense count follows.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..types import Grid
from .units import UnitTable


def unit_thresholds(grid: Grid, units: UnitTable) -> np.ndarray:
    """Per-unit density threshold: the max of its bins' thresholds."""
    if units.n_units == 0:
        return np.zeros(0, dtype=np.float64)
    max_bins = max(dg.nbins for dg in grid)
    table = np.full((grid.ndim, max_bins), np.inf)
    for j, dg in enumerate(grid):
        table[j, :dg.nbins] = dg.thresholds
    dims = units.dims.astype(np.int64)
    bins = units.bins.astype(np.int64)
    if int(dims.max()) >= grid.ndim:
        raise DataError("unit table references dimensions beyond the grid")
    if (bins >= np.array([grid[d].nbins for d in range(grid.ndim)])[dims]).any():
        raise DataError("unit table references bins beyond the grid")
    return table[dims, bins].max(axis=1)


def dense_flags_block(counts: np.ndarray, thresholds: np.ndarray,
                      start: int = 0, stop: int | None = None,
                      min_points: int = 0) -> np.ndarray:
    """Dense mask for CDU rows ``[start, stop)``; False elsewhere so the
    per-rank masks OR-reduce into the global mask."""
    counts = np.asarray(counts)
    thresholds = np.asarray(thresholds)
    n = counts.shape[0]
    if thresholds.shape != (n,):
        raise DataError(
            f"thresholds shape {thresholds.shape} != counts shape {counts.shape}")
    stop = n if stop is None else stop
    if not 0 <= start <= stop <= n:
        raise DataError(f"block [{start}, {stop}) out of bounds for {n}")
    mask = np.zeros(n, dtype=bool)
    block = (counts[start:stop] > thresholds[start:stop])
    if min_points > 0:
        block &= counts[start:stop] >= min_points
    mask[start:stop] = block
    return mask


def dense_units(cdus: UnitTable, counts: np.ndarray,
                mask: np.ndarray) -> tuple[UnitTable, np.ndarray]:
    """Build-dense-unit-data-structures(): the dense sub-table and its
    counts, in CDU order."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (cdus.n_units,):
        raise DataError(f"mask shape {mask.shape} != ({cdus.n_units},)")
    return cdus.select(mask), np.asarray(counts)[mask]
