"""Repeat-CDU elimination — Eliminate-repeat-CDUs() (§4.3, Algorithm 4).

The any-(k−2) join generates the same CDU from several dense-unit pairs
(the k-subsets example in Figure 2), so repeats must be identified and
removed before the expensive population pass.  A CDU is a *repeat* when
an identical unit occurs earlier in the array — exactly the paper's
definition, under which each rank marks the repeats in its block of the
array by comparing against the whole array, and the marks are OR-reduced.

Our marking uses a sort-based grouping rather than literal pairwise
comparison (same output, fewer cycles); the simulated-time backend still
charges the paper's ``block_rows × Ncdu`` comparisons so virtual SP2
runtimes reflect the implementation the paper measured.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from .units import UnitTable


def repeat_flags_block(cdus: UnitTable, start: int = 0,
                       stop: int | None = None,
                       words: np.ndarray | None = None) -> np.ndarray:
    """Length-``Ncdu`` mask with this block's repeats marked.

    ``mask[j]`` is True iff ``start <= j < stop`` and row ``j`` equals
    some earlier row of the *full* array.  Entries outside the block are
    False so the masks from all ranks can simply be OR-reduced.
    ``words`` forwards a precomputed packed-key matrix to
    :meth:`~repro.core.units.UnitTable.repeat_mask`.
    """
    n = cdus.n_units
    stop = n if stop is None else stop
    if not 0 <= start <= stop <= n:
        raise DataError(f"block [{start}, {stop}) out of bounds for {n}")
    full = cdus.repeat_mask(words)
    mask = np.zeros(n, dtype=bool)
    mask[start:stop] = full[start:stop]
    return mask


def drop_repeats(cdus: UnitTable, repeats: np.ndarray) -> UnitTable:
    """The unique CDU table (build-cdu-with-unique-elements), preserving
    first-occurrence order as concatenated by the parent processor."""
    repeats = np.asarray(repeats, dtype=bool)
    if repeats.shape != (cdus.n_units,):
        raise DataError(
            f"repeat mask shape {repeats.shape} != ({cdus.n_units},)")
    return cdus.select(~repeats)
