"""Adaptive grid computation — Algorithm 1 of the paper.

For each dimension:

1. divide the domain into ``fine_bins`` fine intervals and histogram the
   data (done by :mod:`repro.core.histogram`);
2. collapse every ``window_size`` adjacent fine intervals into a window
   whose value is the *maximum* fine count inside it;
3. sweep left to right, merging adjacent windows whose values are within
   a threshold percentage β of each other — fitting "the best rectangular
   wave which matches the data distribution";
4. if everything merged into a single bin the dimension is
   equi-distributed: re-split it into a small fixed number of equal
   partitions and boost its threshold, since it is unlikely to carry a
   cluster;
5. set the threshold of each bin of width ``a`` to ``α·N·a/|D_i|`` — the
   count expected under uniformity times the significance factor α.
"""

from __future__ import annotations

import numpy as np

from ..errors import GridError
from ..params import MafiaParams
from ..types import DimensionGrid, Grid
from .units import MAX_BINS


def window_maxima(fine_counts: np.ndarray, window_size: int) -> np.ndarray:
    """Collapse fine counts into per-window maxima (step 2)."""
    fine_counts = np.asarray(fine_counts)
    if fine_counts.ndim != 1 or fine_counts.size == 0:
        raise GridError("fine_counts must be a non-empty 1-D array")
    if window_size <= 0:
        raise GridError(f"window_size must be positive, got {window_size}")
    n = fine_counts.size
    n_windows = -(-n // window_size)
    padded = np.full(n_windows * window_size, -1, dtype=fine_counts.dtype)
    padded[:n] = fine_counts
    return padded.reshape(n_windows, window_size).max(axis=1)


def merge_windows(values: np.ndarray, beta: float) -> list[tuple[int, int]]:
    """Left-to-right merge of adjacent windows within β of each other
    (step 3).  Returns ``[start, stop)`` window-index ranges of the
    resulting variable-sized bins.

    Two adjacent windows merge when their values differ by less than
    ``beta`` relative to the larger of the two (with empty windows
    merging freely into empty runs); the running value of a merged bin is
    the maximum of its members, matching the rectangular-wave fit.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise GridError("cannot merge zero windows")
    ranges: list[tuple[int, int]] = []
    start = 0
    current = values[0]
    for i in range(1, values.size):
        v = values[i]
        scale = max(current, v)
        if scale <= 0 or abs(current - v) < beta * scale:
            current = max(current, v)
            continue
        ranges.append((start, i))
        start, current = i, v
    ranges.append((start, values.size))
    return ranges


def build_dimension_grid(dim: int, fine_counts: np.ndarray,
                         domain: tuple[float, float], n_records: int,
                         params: MafiaParams) -> DimensionGrid:
    """Run Algorithm 1 for one dimension."""
    lo, hi = float(domain[0]), float(domain[1])
    if not hi > lo:
        raise GridError(f"dimension {dim}: empty domain [{lo}, {hi})")
    fine_counts = np.asarray(fine_counts, dtype=np.int64)
    n_fine = fine_counts.size
    extent = hi - lo

    windows = window_maxima(fine_counts, params.window_size)
    if windows.size > MAX_BINS:
        raise GridError(
            f"dimension {dim}: {windows.size} windows exceed the byte "
            f"limit {MAX_BINS}; increase window_size or reduce fine_bins")
    ranges = merge_windows(windows, params.beta)

    uniform = len(ranges) == 1
    if uniform:
        # equi-distributed dimension: fixed equal partitions, boosted α
        edges = np.linspace(lo, hi, params.uniform_split + 1)
        alpha = params.alpha * params.uniform_alpha_boost
    else:
        # map window boundaries back to attribute coordinates
        fine_width = extent / n_fine
        cuts = [0.0]
        for _, stop in ranges:
            cuts.append(min(stop * params.window_size, n_fine) * fine_width)
        edges = lo + np.asarray(cuts)
        edges[-1] = hi
        alpha = params.alpha

    widths = np.diff(edges)
    thresholds = alpha * n_records * widths / extent
    return DimensionGrid(dim=dim, edges=tuple(float(e) for e in edges),
                         thresholds=tuple(float(t) for t in thresholds),
                         uniform=uniform)


def build_grid(fine_counts: np.ndarray, domains: np.ndarray, n_records: int,
               params: MafiaParams) -> Grid:
    """Run Algorithm 1 for every dimension of the data set."""
    fine_counts = np.asarray(fine_counts)
    domains = np.asarray(domains, dtype=np.float64)
    if fine_counts.ndim != 2:
        raise GridError(f"fine_counts must be (d, fine_bins), got "
                        f"{fine_counts.shape}")
    d = fine_counts.shape[0]
    if domains.shape != (d, 2):
        raise GridError(f"domains shape {domains.shape} != ({d}, 2)")
    return Grid(dims=tuple(
        build_dimension_grid(j, fine_counts[j], (domains[j, 0], domains[j, 1]),
                             n_records, params)
        for j in range(d)))


def histogram_drift(current: np.ndarray, reference: np.ndarray) -> float:
    """Normalised L1 distance between two fine histograms — the
    streaming engine's drift metric.

    ``sum(|current - reference|)`` counts every record added, expired
    or moved since ``reference`` was taken (each mover contributes
    twice), normalised by the reference mass so a threshold reads as
    "fraction of the window turned over".  Purely advisory: it decides
    *when* the session re-merges adaptive bins eagerly, never *whether*
    a snapshot is exact (snapshots always rebuild the grid from the
    maintained histogram and compare fingerprints).
    """
    current = np.asarray(current, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    if current.shape != reference.shape:
        raise GridError(
            f"histogram shapes differ: {current.shape} vs {reference.shape}")
    moved = np.abs(current - reference).sum()
    # every dimension's histogram counts each record once; normalise by
    # per-dimension mass, not total cells
    d = max(1, current.shape[0]) if current.ndim == 2 else 1
    mass = max(1, int(reference.sum()) // d)
    return float(moved) / d / mass
