"""Per-dimension fine histograms (the first pass of Algorithm 2).

Every rank scans its local records once to build a fine histogram in
each dimension; a Reduce produces the global histogram from which the
adaptive grid is computed.  Domains (attribute min/max) are found by the
same kind of chunked local pass + Reduce when not supplied by the user.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..io.chunks import DataSource, charged_chunks
from ..io.resilient import RetryPolicy
from ..parallel.comm import Comm


def local_domains(source: DataSource, comm: Comm, chunk_records: int,
                  start: int = 0, stop: int | None = None,
                  retry: RetryPolicy | None = None) -> np.ndarray:
    """Per-dimension ``(min, max)`` over this rank's records, as a
    ``(d, 2)`` array; ±inf rows when the rank owns no records."""
    d = source.n_dims
    lo = np.full(d, np.inf)
    hi = np.full(d, -np.inf)
    for chunk in charged_chunks(source, comm, chunk_records, start, stop,
                                retry=retry):
        comm.charge_cells(chunk.shape[0] * d)
        np.minimum(lo, chunk.min(axis=0), out=lo)
        np.maximum(hi, chunk.max(axis=0), out=hi)
    return np.stack([lo, hi], axis=1)


def global_domains(source: DataSource, comm: Comm, chunk_records: int,
                   start: int = 0, stop: int | None = None,
                   retry: RetryPolicy | None = None) -> np.ndarray:
    """Global per-dimension domains via min/max Reduce.

    Degenerate dimensions (constant value) are widened by a hair so that
    every domain has positive extent.
    """
    local = local_domains(source, comm, chunk_records, start, stop, retry)
    lo = comm.allreduce(local[:, 0], op="min")
    hi = comm.allreduce(local[:, 1], op="max")
    if np.isinf(lo).any() or np.isinf(hi).any():
        raise DataError("cannot compute domains of an empty data set")
    span = hi - lo
    pad = np.where(span > 0, span * 1e-9, np.maximum(np.abs(hi) * 1e-9, 1e-9))
    return np.stack([lo, hi + pad], axis=1)


def check_domains(domains: np.ndarray, n_dims: int) -> np.ndarray:
    """Validate and canonicalise a ``(d, 2)`` domains array."""
    domains = np.asarray(domains, dtype=np.float64)
    if domains.shape != (n_dims, 2):
        raise DataError(f"domains shape {domains.shape} != ({n_dims}, 2)")
    if (domains[:, 1] - domains[:, 0] <= 0).any():
        raise DataError("all domains must have positive extent")
    return domains


def block_histogram(block: np.ndarray, domains: np.ndarray,
                    fine_bins: int) -> np.ndarray:
    """``(d, fine_bins)`` histogram of one record block — the exact
    per-block operation of the batch pass, factored out so the
    streaming engine bins deltas **identically** (same scale, same
    clip, same integer truncation).  Integer counts are additive over
    any block partition, which is what makes the maintained streaming
    histogram bit-equal to a cold pass over the live records.
    """
    domains = np.asarray(domains, dtype=np.float64)
    lo = domains[:, 0]
    width = domains[:, 1] - domains[:, 0]
    d = domains.shape[0]
    counts = np.zeros((d, fine_bins), dtype=np.int64)
    if block.shape[0] == 0:
        return counts
    scaled = (block - lo) / width * fine_bins
    idx = np.clip(scaled.astype(np.int64), 0, fine_bins - 1)
    for j in range(d):
        counts[j] += np.bincount(idx[:, j], minlength=fine_bins)
    return counts


def fine_histogram_local(source: DataSource, comm: Comm, domains: np.ndarray,
                         fine_bins: int, chunk_records: int,
                         start: int = 0, stop: int | None = None,
                         retry: RetryPolicy | None = None) -> np.ndarray:
    """This rank's ``(d, fine_bins)`` histogram over its local records.

    Values are clipped into their domain so that every record lands in a
    fine bin (out-of-domain values can only occur if the caller passed
    domains narrower than the data).
    """
    d = source.n_dims
    domains = check_domains(domains, d)
    if fine_bins <= 0:
        raise DataError(f"fine_bins must be positive, got {fine_bins}")
    counts = np.zeros((d, fine_bins), dtype=np.int64)
    for chunk in charged_chunks(source, comm, chunk_records, start, stop,
                                retry=retry):
        comm.charge_cells(chunk.shape[0] * d)
        counts += block_histogram(chunk, domains, fine_bins)
    return counts


def fine_histogram_global(source: DataSource, comm: Comm, domains: np.ndarray,
                          fine_bins: int, chunk_records: int,
                          start: int = 0, stop: int | None = None,
                          retry: RetryPolicy | None = None) -> np.ndarray:
    """Global fine histogram: local pass plus a sum Reduce (§4.1)."""
    local = fine_histogram_local(source, comm, domains, fine_bins,
                                 chunk_records, start, stop, retry)
    return comm.allreduce(local, op="sum")
