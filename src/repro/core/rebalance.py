"""Mid-level straggler detection and work rebalancing.

The paper's task partition (equation (1)) equalises *predicted* work,
which is only fair on homogeneous ranks.  On a fleet where one node is
slow — thermal throttling, a noisy neighbour, a replacement rank warming
its caches after recovery — every level then waits on the slowest
shard.  This module watches the *realised* per-level population times
and, when the spread crosses a threshold, re-fences the next join and
repeat-elimination passes with
:func:`~repro.core.partition.proportional_splits` so the slow rank owns
a proportionally smaller pivot range.

Rebalancing never changes results: fences remain contiguous row ranges
whose rank-order concatenation reproduces the serial row order
bit-for-bit, so only message sizes and wall clock move.  Two rules keep
the fences *identical on every rank* (diverging fences would corrupt
the gathered fragments):

* speeds derive solely from the current level's allgathered elapsed
  vector — no per-rank history that a freshly booted replacement would
  lack;
* the driver resets the monitor when a recovery round restores an
  earlier level, so the first post-recovery join uses uniform fences on
  every rank.

The monitor is inert on the simulated-time backend: the virtual machine
models the paper's homogeneous SP2, and an extra allgather per level
would change the modelled message pattern.
"""

from __future__ import annotations

import numpy as np

from ..parallel.comm import Comm

#: re-fence only when the fastest rank is at least this much faster
#: than the slowest — below it the spread is noise, and uniform fences
#: keep the paper's schedule
REBALANCE_THRESHOLD = 1.5

#: cap on how much more work the fastest rank may take than the slowest
#: — one wild timing sample must not starve a healthy rank to zero rows
MAX_SPEED_RATIO = 4.0


class StragglerMonitor:
    """Per-rank view of the fleet's realised level times."""

    @classmethod
    def create(cls, params, comm: Comm) -> "StragglerMonitor | None":
        """A monitor when rebalancing applies, else ``None`` (single
        rank, rebalancing off, or the cost-modelling sim backend)."""
        if not getattr(params, "rebalance", False):
            return None
        if comm.size <= 1 or getattr(comm, "models_paper_costs", False):
            return None
        return cls(comm)

    def __init__(self, comm: Comm,
                 threshold: float | None = None) -> None:
        self._comm = comm
        self._threshold = threshold
        self._speeds: np.ndarray | None = None
        self.last_ratio = 1.0
        self.refences = 0

    def observe(self, level: int, elapsed: float) -> None:
        """Share this rank's population seconds for ``level`` with the
        fleet (one allgather; the vector — hence everything derived
        from it — is identical on every rank)."""
        times = np.asarray(
            self._comm.allgather(float(max(elapsed, 1e-9))),
            dtype=np.float64)
        self.last_ratio = float(times.max() / times.min())
        speeds = 1.0 / times
        speeds = np.minimum(speeds, float(speeds.min()) * MAX_SPEED_RATIO)
        self._speeds = speeds / speeds.sum()

    def shares(self) -> np.ndarray | None:
        """Per-rank work shares for the next join/dedup fences, or
        ``None`` when the fleet is balanced within the threshold (the
        paper's uniform fences then apply unchanged)."""
        if self._speeds is None:
            return None
        threshold = (REBALANCE_THRESHOLD if self._threshold is None
                     else self._threshold)
        if self.last_ratio <= threshold:
            return None
        self.refences += 1
        return self._speeds

    def reset(self) -> None:
        """Forget all timing state.  Called after a recovery restore:
        the replacement rank has no history, and fences must be derived
        from data every rank agrees on."""
        self._speeds = None
        self.last_ratio = 1.0
