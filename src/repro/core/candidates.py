"""Candidate dense unit generation — the MAFIA join (§3, §4.3).

CDUs in dimensionality ``k`` are formed "by merging any two dense cells,
represented by an ordered set of (k−1) dimensions, such that they share
any of the (k−2) dimensions" — unlike CLIQUE, which only joins units
sharing their *first* k−2 dimensions and therefore misses candidates
(the paper's {a1,b7,c8} + {b7,c8,d9} example).

Two level-(k−1) units join when

* their dimension sets overlap in exactly k−2 dimensions (union size k),
* and their bin indices agree on every shared dimension.

The joined CDU takes the union of the dimension sets (sorted) with the
corresponding bins.  :func:`join_block` processes rows ``[start, stop)``
against all later rows — the triangular workload that equation (1)
balances across ranks (:mod:`repro.core.partition`).

Two implementations produce bit-identical output:

* :func:`join_block` — the paper's pairwise test, vectorised per pivot
  row but still O(Ndu²) comparisons (Algorithm 3 verbatim).
* :func:`hash_join_block` — a **sub-signature hash join**.  Each
  level-``m`` unit emits its ``m`` "drop-one-token" sub-signatures
  (packed uint64 key words, :func:`repro.core.units.pack_tokens`); one
  vectorised sort groups entries by sub-signature, and two units join
  iff they meet in a bucket with differing leftover dimensions.  A valid
  pair shares exactly ``m−1`` (dim, bin) tokens, so it lands in exactly
  one bucket — near-linear grouping plus per-bucket pairing replaces the
  quadratic sweep.  Pairs are re-sorted by (pivot, partner) and
  assembled with the same union/argsort kernel, so the output rows —
  order included — match the pairwise path exactly for any row fences,
  while ``pairs_examined`` still reports the paper's pairwise count
  (the simulated-time cost model must not drift; see
  ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from .units import MAX_DIMS, UnitTable, group_starts, pack_tokens


@dataclass(frozen=True)
class JoinResult:
    """Output of one rank's share of the CDU join.

    Attributes
    ----------
    cdus:
        The CDUs built from this block's pairs (may contain units that
        duplicate each other or other blocks' output — repeat elimination
        is a separate phase, as in the paper).
    combined:
        Length-``Ndu`` mask, True for every dense unit (in the *whole*
        table) that participated in at least one successful join from
        this block.  Ranks OR these together; units never combined are
        registered as potential clusters of dimensionality k−1.
    pairs_examined:
        The comparisons this block is charged under the paper's cost
        model: ``sum(Ndu - i)`` over its rows.
    """

    cdus: UnitTable
    combined: np.ndarray
    pairs_examined: int


def join_block(dense: UnitTable, start: int = 0, stop: int | None = None
               ) -> JoinResult:
    """Join rows ``[start, stop)`` of ``dense`` against all later rows."""
    n = dense.n_units
    stop = n if stop is None else stop
    if not 0 <= start <= stop <= n:
        raise DataError(f"join range [{start}, {stop}) out of bounds for {n}")
    m = dense.level
    combined = np.zeros(n, dtype=bool)
    pairs = sum(n - i for i in range(start, stop))

    if n == 0 or stop == start:
        return JoinResult(cdus=UnitTable.empty(m + 1), combined=combined,
                          pairs_examined=pairs)

    dims = dense.dims.astype(np.int64)
    bins = dense.bins.astype(np.int64)
    out_dims: list[np.ndarray] = []
    out_bins: list[np.ndarray] = []

    # bin-by-dimension lookup rebuilt per pivot row
    bin_of = np.full(MAX_DIMS, -1, dtype=np.int64)
    for i in range(start, stop):
        rest_dims = dims[i + 1:]
        if rest_dims.size == 0:
            continue
        rest_bins = bins[i + 1:]
        # which dims of each later row appear in row i
        in_i = np.isin(rest_dims, dims[i])
        shared = in_i.sum(axis=1)
        bin_of[dims[i]] = bins[i]
        agree = bin_of[rest_dims] == rest_bins
        bin_of[dims[i]] = -1
        conflict = (in_i & ~agree).any(axis=1)
        valid = (shared == m - 1) & ~conflict
        if not valid.any():
            continue
        combined[i] = True
        combined[i + 1:][valid] = True

        new_mask = ~in_i[valid]                       # exactly one per row
        partners_dims = rest_dims[valid]
        partners_bins = rest_bins[valid]
        extra_dim = partners_dims[new_mask]
        extra_bin = partners_bins[new_mask]
        v = extra_dim.shape[0]
        union_dims = np.concatenate(
            [np.tile(dims[i], (v, 1)), extra_dim[:, None]], axis=1)
        union_bins = np.concatenate(
            [np.tile(bins[i], (v, 1)), extra_bin[:, None]], axis=1)
        order = np.argsort(union_dims, axis=1, kind="stable")
        out_dims.append(np.take_along_axis(union_dims, order, axis=1))
        out_bins.append(np.take_along_axis(union_bins, order, axis=1))

    if out_dims:
        cdus = UnitTable(dims=np.concatenate(out_dims).astype(np.uint8),
                         bins=np.concatenate(out_bins).astype(np.uint8))
    else:
        cdus = UnitTable.empty(m + 1)
    return JoinResult(cdus=cdus, combined=combined, pairs_examined=pairs)


def join_all(dense: UnitTable) -> JoinResult:
    """Full join over the whole table (the serial / below-τ path)."""
    return join_block(dense, 0, dense.n_units)


# -- sub-signature hash join --------------------------------------------------


@dataclass(frozen=True)
class HashJoinPlan:
    """All valid join pairs of a dense-unit table, sorted by
    ``(pivot, partner)``.

    Building the plan is the grouping work; slicing it per rank is a
    pair of ``searchsorted`` calls, so one plan serves every block of a
    parallel join.

    Attributes
    ----------
    left, right:
        Unit indices of each valid pair, ``left < right``, lexsorted by
        ``(left, right)`` — the exact order the pairwise sweep visits.
    right_token:
        The partner's leftover ``dim << 8 | bin`` token — the one entry
        of ``right`` outside the shared sub-signature, i.e. the column
        the joined CDU appends to the pivot's row.
    row_pair_counts:
        ``bincount(left, minlength=n)`` — realised join pairs per pivot
        row, the weights :func:`repro.core.partition.weighted_splits`
        balances instead of the triangular ``Ndu − i`` estimate.
    """

    left: np.ndarray
    right: np.ndarray
    right_token: np.ndarray
    row_pair_counts: np.ndarray
    n_units: int
    level: int

    @property
    def n_pairs(self) -> int:
        return int(self.left.shape[0])


def _empty_plan(n: int, m: int) -> HashJoinPlan:
    return HashJoinPlan(left=np.zeros(0, dtype=np.int64),
                        right=np.zeros(0, dtype=np.int64),
                        right_token=np.zeros(0, dtype=np.uint16),
                        row_pair_counts=np.zeros(n, dtype=np.int64),
                        n_units=n, level=m)


def hash_join_plan(dense: UnitTable,
                   tokens: np.ndarray | None = None) -> HashJoinPlan:
    """Group units by drop-one-token sub-signature and enumerate every
    valid join pair.

    ``tokens`` may pass a precomputed ``dense.tokens()`` matrix (the
    driver computes it on a background thread while the population
    reduce drains — see :func:`repro.core.pmafia.pmafia`).
    """
    n, m = dense.n_units, dense.level
    if tokens is None:
        tokens = dense.tokens()
    if n < 2:
        return _empty_plan(n, m)

    # one entry per (unit, dropped column): the m−1 surviving tokens are
    # the sub-signature, the dropped token is the leftover
    if m == 1:
        sub_words = np.zeros((n, 1), dtype=np.uint64)
        owner = np.arange(n, dtype=np.int64)
        leftover = tokens[:, 0]
    else:
        sub_tokens = np.concatenate(
            [np.delete(tokens, c, axis=1) for c in range(m)])
        sub_words = pack_tokens(sub_tokens)
        owner = np.tile(np.arange(n, dtype=np.int64), m)
        leftover = tokens.T.reshape(-1)

    # bucket-major order, ascending unit index within each bucket
    keys = (owner,) + tuple(sub_words[:, c]
                            for c in range(sub_words.shape[1] - 1, -1, -1))
    order = np.lexsort(keys)
    owner_s = owner[order]
    leftover_s = leftover[order]
    starts = group_starts(sub_words[order])
    del sub_words, owner, leftover, order

    # segmented all-pairs within each bucket: entry at position p pairs
    # with the `after[p]` entries between it and its bucket's end
    n_entries = owner_s.shape[0]
    run_start = np.flatnonzero(starts)
    run_id = np.cumsum(starts) - 1
    run_end = np.append(run_start[1:], n_entries)[run_id]
    pos = np.arange(n_entries)
    after = run_end - pos - 1
    total = int(after.sum())
    if total == 0:
        return _empty_plan(n, m)
    left_pos = np.repeat(pos, after)
    excl = np.cumsum(after) - after
    right_pos = left_pos + 1 + (np.arange(total) - np.repeat(excl, after))

    left = owner_s[left_pos]
    right = owner_s[right_pos]
    right_token = leftover_s[right_pos]
    # a bucket pair is a join iff the leftover *dimensions* differ (equal
    # dims would mean a bin conflict, or an identical unit)
    valid = (leftover_s[left_pos] >> np.uint16(8)) \
        != (right_token >> np.uint16(8))
    left, right, right_token = left[valid], right[valid], right_token[valid]

    pair_order = np.lexsort((right, left))
    return HashJoinPlan(left=left[pair_order], right=right[pair_order],
                        right_token=right_token[pair_order],
                        row_pair_counts=np.bincount(left, minlength=n),
                        n_units=n, level=m)


def assemble_unions(dense: UnitTable, left: np.ndarray,
                    right_token: np.ndarray) -> UnitTable:
    """Assemble the joined CDU rows for already-mined pairs: append each
    pair's leftover ``dim << 8 | bin`` token to its pivot row and
    dim-sort the union.

    This is the one kernel every join engine shares — pairwise, hash,
    fptree and direct mining all emit CDU rows through it, which is what
    makes their outputs comparable array-for-array.
    """
    extra_dim = (right_token >> np.uint16(8)).astype(np.uint8)
    extra_bin = (right_token & np.uint16(0xFF)).astype(np.uint8)
    union_dims = np.concatenate(
        [dense.dims[left], extra_dim[:, None]], axis=1)
    union_bins = np.concatenate(
        [dense.bins[left], extra_bin[:, None]], axis=1)
    order = np.argsort(union_dims, axis=1, kind="stable")
    return UnitTable(dims=np.take_along_axis(union_dims, order, axis=1),
                     bins=np.take_along_axis(union_bins, order, axis=1))


def hash_join_block(dense: UnitTable, start: int = 0, stop: int | None = None,
                    plan: HashJoinPlan | None = None) -> JoinResult:
    """Hash-join rows ``[start, stop)`` of ``dense`` against all later
    rows — drop-in for :func:`join_block`, bit-identical output.

    ``pairs_examined`` still reports the paper's pairwise comparison
    count for these rows: the simulated-time backend charges the cost
    model of the measured SP2 system, not our implementation's.
    """
    n = dense.n_units
    stop = n if stop is None else stop
    if not 0 <= start <= stop <= n:
        raise DataError(f"join range [{start}, {stop}) out of bounds for {n}")
    m = dense.level
    combined = np.zeros(n, dtype=bool)
    pairs = sum(n - i for i in range(start, stop))
    if n == 0 or stop == start:
        return JoinResult(cdus=UnitTable.empty(m + 1), combined=combined,
                          pairs_examined=pairs)
    if plan is None:
        plan = hash_join_plan(dense)

    lo = int(np.searchsorted(plan.left, start, side="left"))
    hi = int(np.searchsorted(plan.left, stop, side="left"))
    left = plan.left[lo:hi]
    right = plan.right[lo:hi]
    token = plan.right_token[lo:hi]
    if left.size == 0:
        return JoinResult(cdus=UnitTable.empty(m + 1), combined=combined,
                          pairs_examined=pairs)
    combined[left] = True
    combined[right] = True

    cdus = assemble_unions(dense, left, token)
    return JoinResult(cdus=cdus, combined=combined, pairs_examined=pairs)


def hash_join_all(dense: UnitTable,
                  plan: HashJoinPlan | None = None) -> JoinResult:
    """Full hash join over the whole table."""
    return hash_join_block(dense, 0, dense.n_units, plan=plan)
