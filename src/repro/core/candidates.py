"""Candidate dense unit generation — the MAFIA join (§3, §4.3).

CDUs in dimensionality ``k`` are formed "by merging any two dense cells,
represented by an ordered set of (k−1) dimensions, such that they share
any of the (k−2) dimensions" — unlike CLIQUE, which only joins units
sharing their *first* k−2 dimensions and therefore misses candidates
(the paper's {a1,b7,c8} + {b7,c8,d9} example).

Two level-(k−1) units join when

* their dimension sets overlap in exactly k−2 dimensions (union size k),
* and their bin indices agree on every shared dimension.

The joined CDU takes the union of the dimension sets (sorted) with the
corresponding bins.  :func:`join_block` processes rows ``[start, stop)``
against all later rows — the triangular workload that equation (1)
balances across ranks (:mod:`repro.core.partition`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from .units import MAX_DIMS, UnitTable


@dataclass(frozen=True)
class JoinResult:
    """Output of one rank's share of the CDU join.

    Attributes
    ----------
    cdus:
        The CDUs built from this block's pairs (may contain units that
        duplicate each other or other blocks' output — repeat elimination
        is a separate phase, as in the paper).
    combined:
        Length-``Ndu`` mask, True for every dense unit (in the *whole*
        table) that participated in at least one successful join from
        this block.  Ranks OR these together; units never combined are
        registered as potential clusters of dimensionality k−1.
    pairs_examined:
        The comparisons this block is charged under the paper's cost
        model: ``sum(Ndu - i)`` over its rows.
    """

    cdus: UnitTable
    combined: np.ndarray
    pairs_examined: int


def join_block(dense: UnitTable, start: int = 0, stop: int | None = None
               ) -> JoinResult:
    """Join rows ``[start, stop)`` of ``dense`` against all later rows."""
    n = dense.n_units
    stop = n if stop is None else stop
    if not 0 <= start <= stop <= n:
        raise DataError(f"join range [{start}, {stop}) out of bounds for {n}")
    m = dense.level
    combined = np.zeros(n, dtype=bool)
    pairs = sum(n - i for i in range(start, stop))

    if n == 0 or stop == start:
        return JoinResult(cdus=UnitTable.empty(m + 1), combined=combined,
                          pairs_examined=pairs)

    dims = dense.dims.astype(np.int64)
    bins = dense.bins.astype(np.int64)
    out_dims: list[np.ndarray] = []
    out_bins: list[np.ndarray] = []

    # bin-by-dimension lookup rebuilt per pivot row
    bin_of = np.full(MAX_DIMS, -1, dtype=np.int64)
    for i in range(start, stop):
        rest_dims = dims[i + 1:]
        if rest_dims.size == 0:
            continue
        rest_bins = bins[i + 1:]
        # which dims of each later row appear in row i
        in_i = np.isin(rest_dims, dims[i])
        shared = in_i.sum(axis=1)
        bin_of[dims[i]] = bins[i]
        agree = bin_of[rest_dims] == rest_bins
        bin_of[dims[i]] = -1
        conflict = (in_i & ~agree).any(axis=1)
        valid = (shared == m - 1) & ~conflict
        if not valid.any():
            continue
        combined[i] = True
        combined[i + 1:][valid] = True

        new_mask = ~in_i[valid]                       # exactly one per row
        partners_dims = rest_dims[valid]
        partners_bins = rest_bins[valid]
        extra_dim = partners_dims[new_mask]
        extra_bin = partners_bins[new_mask]
        v = extra_dim.shape[0]
        union_dims = np.concatenate(
            [np.tile(dims[i], (v, 1)), extra_dim[:, None]], axis=1)
        union_bins = np.concatenate(
            [np.tile(bins[i], (v, 1)), extra_bin[:, None]], axis=1)
        order = np.argsort(union_dims, axis=1, kind="stable")
        out_dims.append(np.take_along_axis(union_dims, order, axis=1))
        out_bins.append(np.take_along_axis(union_bins, order, axis=1))

    if out_dims:
        cdus = UnitTable(dims=np.concatenate(out_dims).astype(np.uint8),
                         bins=np.concatenate(out_bins).astype(np.uint8))
    else:
        cdus = UnitTable.empty(m + 1)
    return JoinResult(cdus=cdus, combined=combined, pairs_examined=pairs)


def join_all(dense: UnitTable) -> JoinResult:
    """Full join over the whole table (the serial / below-τ path)."""
    return join_block(dense, 0, dense.n_units)
