"""Core value types shared across the library.

A *grid* is a per-dimension list of variable-width bins, each with a
density threshold.  A *unit* is a hyper-rectangle identified by an ordered
set of dimensions and one bin index per dimension; units are stored in
bulk as flat byte arrays (see :mod:`repro.core.units`).  A *cluster* is a
union of connected dense units in one subspace, reported as a DNF
expression over bin intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .errors import DataError, GridError


@dataclass(frozen=True)
class BinInterval:
    """A half-open interval ``[low, high)`` in one dimension with its
    density threshold (minimum point count to be considered dense)."""

    low: float
    high: float
    threshold: float

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise GridError(f"empty bin [{self.low}, {self.high})")

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, x: float) -> bool:
        """Whether ``x`` lies in the half-open interval."""
        return self.low <= x < self.high


@dataclass(frozen=True)
class DimensionGrid:
    """The adaptive (or uniform) binning of a single dimension."""

    dim: int
    edges: tuple[float, ...]          # len == nbins + 1, strictly increasing
    thresholds: tuple[float, ...]     # len == nbins
    uniform: bool = False             # True when Algorithm 1 re-split an
                                      # equi-distributed dimension

    def __post_init__(self) -> None:
        if len(self.edges) < 2:
            raise GridError(f"dimension {self.dim}: needs at least one bin")
        if len(self.thresholds) != len(self.edges) - 1:
            raise GridError(
                f"dimension {self.dim}: {len(self.thresholds)} thresholds for "
                f"{len(self.edges) - 1} bins")
        e = np.asarray(self.edges, dtype=np.float64)
        if not np.all(np.diff(e) > 0):
            raise GridError(f"dimension {self.dim}: edges not increasing: {self.edges}")

    @property
    def nbins(self) -> int:
        return len(self.edges) - 1

    @property
    def low(self) -> float:
        return self.edges[0]

    @property
    def high(self) -> float:
        return self.edges[-1]

    def bin(self, index: int) -> BinInterval:
        """Return bin ``index`` as a :class:`BinInterval`."""
        return BinInterval(self.edges[index], self.edges[index + 1],
                           self.thresholds[index])

    def bins(self) -> Iterator[BinInterval]:
        """Iterate this dimension's bins in order."""
        for i in range(self.nbins):
            yield self.bin(i)

    def locate(self, values: np.ndarray) -> np.ndarray:
        """Vectorised bin index for each value (clipped to the domain).

        Values below the first edge map to bin 0 and values at or above
        the last edge map to the last bin, matching the out-of-core pass
        where every record must land somewhere.
        """
        values = np.asarray(values, dtype=np.float64)
        idx = np.searchsorted(np.asarray(self.edges[1:-1]), values, side="right")
        return idx.astype(np.int64)


@dataclass(frozen=True)
class Grid:
    """A full multi-dimensional grid: one :class:`DimensionGrid` per
    dimension of the data set."""

    dims: tuple[DimensionGrid, ...]

    def __post_init__(self) -> None:
        for i, dg in enumerate(self.dims):
            if dg.dim != i:
                raise GridError(f"grid dimension {i} labelled {dg.dim}")

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def __getitem__(self, i: int) -> DimensionGrid:
        return self.dims[i]

    def __iter__(self) -> Iterator[DimensionGrid]:
        return iter(self.dims)

    def nbins(self) -> tuple[int, ...]:
        """Bin count per dimension."""
        return tuple(dg.nbins for dg in self.dims)

    def locate_records(self, records: np.ndarray) -> np.ndarray:
        """Map an ``(n, d)`` record block to an ``(n, d)`` int bin-index
        matrix, one :meth:`DimensionGrid.locate` per column."""
        records = np.asarray(records, dtype=np.float64)
        if records.ndim != 2 or records.shape[1] != self.ndim:
            raise DataError(
                f"records shape {records.shape} does not match grid with "
                f"{self.ndim} dimensions")
        out = np.empty(records.shape, dtype=np.int64)
        for j, dg in enumerate(self.dims):
            out[:, j] = dg.locate(records[:, j])
        return out


@dataclass(frozen=True)
class Subspace:
    """An ordered set of dimension indices."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        dims = tuple(int(d) for d in self.dims)
        if list(dims) != sorted(set(dims)):
            raise DataError(f"subspace dims must be sorted and unique: {self.dims}")
        if dims and dims[0] < 0:
            raise DataError(f"negative dimension in subspace: {self.dims}")
        object.__setattr__(self, "dims", dims)

    @property
    def dimensionality(self) -> int:
        return len(self.dims)

    def issubset(self, other: "Subspace") -> bool:
        """Whether this subspace's dimensions all appear in ``other``."""
        return set(self.dims) <= set(other.dims)

    def __contains__(self, dim: int) -> bool:
        return dim in self.dims

    def __iter__(self) -> Iterator[int]:
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)


@dataclass(frozen=True)
class DNFTerm:
    """One conjunct of a cluster's DNF description: an interval per
    cluster dimension (a hyper-rectangle in the cluster's subspace)."""

    subspace: Subspace
    intervals: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.intervals) != len(self.subspace.dims):
            raise DataError("one interval per subspace dimension required")
        for lo, hi in self.intervals:
            if not hi > lo:
                raise DataError(f"empty DNF interval [{lo}, {hi})")

    def contains(self, record: Sequence[float]) -> bool:
        """Whether a full-dimensional record falls inside this term."""
        return all(lo <= record[d] < hi
                   for d, (lo, hi) in zip(self.subspace.dims, self.intervals))


@dataclass(frozen=True)
class Cluster:
    """A discovered cluster: connected dense units in one subspace.

    Attributes
    ----------
    subspace:
        The dimensions the cluster lives in.
    units_bins:
        ``(n_units, k)`` int array of bin indices, one row per dense unit,
        columns following ``subspace.dims``.
    dnf:
        Minimal DNF description (union of hyper-rectangles).
    point_count:
        Total records contained in the cluster's dense units (records in
        several units are counted once per unit; units are disjoint).
    """

    subspace: Subspace
    units_bins: np.ndarray
    dnf: tuple[DNFTerm, ...]
    point_count: int = 0

    def __post_init__(self) -> None:
        bins = np.asarray(self.units_bins, dtype=np.int64)
        if bins.ndim != 2 or bins.shape[1] != self.subspace.dimensionality:
            raise DataError(
                f"units_bins shape {bins.shape} does not match subspace "
                f"{self.subspace.dims}")
        object.__setattr__(self, "units_bins", bins)

    @property
    def dimensionality(self) -> int:
        return self.subspace.dimensionality

    @property
    def n_units(self) -> int:
        return int(self.units_bins.shape[0])

    def contains(self, record: Sequence[float]) -> bool:
        """Whether a full-dimensional record lies in the cluster's DNF."""
        return any(term.contains(record) for term in self.dnf)

    def describe(self) -> str:
        """Human-readable DNF, e.g. ``(d1:[2,5) & d3:[0,10)) | ...``."""
        parts = []
        for term in self.dnf:
            conj = " & ".join(
                f"d{d}:[{lo:g},{hi:g})"
                for d, (lo, hi) in zip(term.subspace.dims, term.intervals))
            parts.append(f"({conj})")
        return " | ".join(parts)
