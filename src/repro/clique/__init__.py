"""The CLIQUE baseline (Agrawal et al., SIGMOD'98) the paper compares
against: uniform grids, global density threshold, prefix join with
a-priori pruning, optional MDL subspace pruning, greedy rectangle
cover — serial and parallel."""

from .clique import clique, clique_clusters, clique_rank, pclique
from .cover import box_cells, minimal_cover
from .grid import uniform_grid
from .join import apriori_prune, prefix_join_all, prefix_join_block
from .mdl import mdl_cut, prune_units, subspace_coverage

__all__ = [
    "apriori_prune",
    "box_cells",
    "clique",
    "clique_clusters",
    "clique_rank",
    "mdl_cut",
    "minimal_cover",
    "pclique",
    "prefix_join_all",
    "prefix_join_block",
    "prune_units",
    "subspace_coverage",
    "uniform_grid",
]
