"""The CLIQUE driver — serial and parallel baseline (paper §3, §5).

Structure mirrors the pMAFIA driver (Algorithm 2) with CLIQUE's choices
swapped in:

* **uniform grid** of ξ equal bins per dimension with a single global
  density threshold τ (both user inputs — the supervision the paper
  criticises);
* **prefix join** sharing the first k−2 dimensions, with a-priori
  candidate pruning; or the paper's §5.5 *modified* CLIQUE, which uses
  MAFIA's any-(k−2) join on the uniform grid (``modified_join=True``);
* optional **MDL subspace pruning** after each level (off by default —
  the paper disables it to preserve quality);
* clusters reported from *maximal* dense units with CLIQUE's
  greedy-growth rectangle cover over the fixed grid.

The task/data parallel scaffolding (equation-(1) splits, gathers,
Reduces) is shared with pMAFIA, so the paper's "parallelized version of
CLIQUE" (§5.8) comes for free.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.identify import dense_units
from ..core.mafia import PMafiaRun
from ..core.pmafia import (Registered, _eliminate_repeat_cdus,
                           _find_candidate_dense_units, _identify_dense,
                           _local_view, _maximal_registrations)
from ..core.population import populate_global
from ..core.result import ClusteringResult, LevelTrace
from ..core.units import UnitTable
from ..core.histogram import global_domains
from ..core.merge import face_adjacent_components
from ..errors import DataError
from ..params import CliqueParams
from ..parallel.comm import Comm
from ..parallel.machine import MachineSpec
from ..parallel.serial import SerialComm
from ..parallel.spmd import run_spmd
from ..types import Cluster, DNFTerm, Grid, Subspace
from .cover import minimal_cover
from .grid import uniform_grid
from .join import apriori_prune, prefix_join_block
from ..core.candidates import join_block as mafia_join_block


def _level_one_units(grid: Grid) -> UnitTable:
    dims = []
    bins = []
    for dg in grid:
        dims.extend([dg.dim] * dg.nbins)
        bins.extend(range(dg.nbins))
    return UnitTable(dims=np.asarray(dims, dtype=np.uint8)[:, None],
                     bins=np.asarray(bins, dtype=np.uint8)[:, None])


def clique_clusters(grid: Grid, registered: Registered
                    ) -> tuple[Cluster, ...]:
    """CLIQUE's cluster reports: connected dense units covered by
    greedily-minimised maximal rectangles on the uniform grid."""
    clusters: list[Cluster] = []
    for table, counts in registered:
        if table.n_units == 0:
            continue
        for dims, rows in table.group_by_subspace().items():
            subspace = Subspace(dims)
            bins = table.bins[rows].astype(np.int64)
            labels = face_adjacent_components(bins)
            for label in range(int(labels.max()) + 1):
                member_bins = bins[labels == label]
                terms = []
                for box in minimal_cover(member_bins):
                    intervals = tuple(
                        (grid[d].edges[lo], grid[d].edges[hi + 1])
                        for d, (lo, hi) in zip(subspace.dims, box))
                    terms.append(DNFTerm(subspace=subspace,
                                         intervals=intervals))
                clusters.append(Cluster(
                    subspace=subspace,
                    units_bins=member_bins,
                    dnf=tuple(terms),
                    point_count=int(counts[rows][labels == label].sum()),
                ))
    clusters.sort(key=lambda c: (-c.dimensionality, c.subspace.dims,
                                 c.units_bins.tolist()))
    return tuple(clusters)


def clique_rank(comm: Comm, data: Any, params: CliqueParams | None = None,
                domains: np.ndarray | None = None) -> ClusteringResult:
    """Run one rank of (parallel) CLIQUE."""
    params = params or CliqueParams()
    source, start, stop = _local_view(comm, data)
    n_local = stop - start
    n_records = int(comm.allreduce(np.array([n_local], dtype=np.int64),
                                   op="sum")[0])
    if n_records == 0:
        raise DataError("cannot cluster an empty data set")
    if domains is None:
        domains = global_domains(source, comm, params.chunk_records,
                                 start, stop)
    else:
        domains = np.asarray(domains, dtype=np.float64)

    grid = uniform_grid(domains, params.bins_for(source.n_dims),
                        n_records, params.threshold)

    if params.modified_join:
        block_join = mafia_join_block
    else:
        block_join = prefix_join_block

    def level_pass(cdus: UnitTable, raw_count: int, level: int) -> LevelTrace:
        counts = populate_global(source, comm, grid, cdus,
                                 params.chunk_records, start, stop)
        mask, ndu = _identify_dense(comm, cdus, counts, grid, params.tau)
        dense, dense_counts = dense_units(cdus, counts, mask)
        if params.mdl_prune and dense.n_units:
            from .mdl import mdl_cut, prune_units, subspace_coverage
            selected = mdl_cut(subspace_coverage(dense, dense_counts))
            dense, dense_counts = prune_units(dense, dense_counts, selected)
            ndu = dense.n_units
        return LevelTrace(level=level, n_cdus_raw=raw_count,
                          n_cdus=cdus.n_units, n_dense=ndu,
                          dense=dense, dense_counts=dense_counts)

    cdus = _level_one_units(grid)
    trace: list[LevelTrace] = [level_pass(cdus, cdus.n_units, 1)]
    current = trace[-1]
    while current.n_dense > 0 and current.level < params.max_dimensionality:
        # the prefix join expects canonical order; sorting keeps counts
        # aligned by re-deriving dense from the sorted table
        dense_sorted = current.dense.sort()
        raw, _combined = _find_candidate_dense_units(
            comm, dense_sorted, params.tau, block_join)
        if raw.n_units == 0:
            break
        cdus, _ = _eliminate_repeat_cdus(comm, raw, params.tau)
        if params.apriori_prune and cdus.n_units:
            keep = apriori_prune(cdus, dense_sorted)
            comm.charge_pairs(cdus.n_units)
            cdus = cdus.select(keep)
            if cdus.n_units == 0:
                break
        nxt = level_pass(cdus, raw.n_units, current.level + 1)
        trace.append(nxt)
        current = nxt

    registered = _maximal_registrations(tuple(trace))
    if comm.rank == 0:
        clusters = clique_clusters(grid, registered)
    else:
        clusters = None
    clusters = comm.bcast(clusters, root=0)
    return ClusteringResult(grid=grid, clusters=clusters,
                            trace=tuple(trace), params=params,
                            n_records=n_records)


def clique(data: Any, params: CliqueParams | None = None,
           domains: np.ndarray | None = None) -> ClusteringResult:
    """Serial CLIQUE (baseline for every head-to-head in the paper)."""
    return clique_rank(SerialComm(), data, params, domains)


def pclique(data: Any, nprocs: int, params: CliqueParams | None = None,
            *, backend: str = "thread", machine: MachineSpec | None = None,
            collectives: str = "flat",
            domains: np.ndarray | None = None) -> PMafiaRun:
    """Parallel CLIQUE on ``nprocs`` ranks (§5.4/§5.8 comparisons)."""
    if nprocs == 1 and backend == "thread":
        backend = "serial"
    ranks = run_spmd(clique_rank, nprocs, backend=backend, machine=machine,
                     collectives=collectives, args=(data, params, domains))
    results = [r.value for r in ranks]
    first = results[0]
    for other in results[1:]:
        if (other.cdus_per_level() != first.cdus_per_level()
                or other.dense_per_level() != first.dense_per_level()
                or len(other.clusters) != len(first.clusters)):
            raise DataError("ranks disagree on the clustering result")
    return PMafiaRun(result=first, nprocs=nprocs, backend=backend,
                     rank_times=tuple(r.time for r in ranks),
                     counters=tuple(r.counters for r in ranks))
