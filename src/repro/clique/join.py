"""CLIQUE's prefix self-join and a-priori candidate pruning.

"In [CLIQUE] candidate dense cells in any k dimensions are obtained by
merging the dense cells in (k−1) dimensions which share the first (k−2)
dimensions" (paper §3) — the Apriori-style join: two level-(k−1) units
join when their first k−2 (dimension, bin) pairs are identical and their
last dimensions differ, the smaller-dimension unit first.  The paper's
{a1,b7,c8} + {b7,c8,d9} example shows candidates this join misses and
MAFIA's any-(k−2) join finds.

CLIQUE then prunes candidates having any non-dense (k−1)-projection.
"""

from __future__ import annotations

import numpy as np

from ..core.candidates import JoinResult
from ..core.units import UnitTable
from ..errors import DataError


def prefix_join_block(dense: UnitTable, start: int = 0,
                      stop: int | None = None) -> JoinResult:
    """Prefix-join rows ``[start, stop)`` of ``dense`` against all later
    rows.  ``dense`` must be in canonical (lexicographic) order so that
    join partners share a contiguous prefix region; the caller sorts."""
    n = dense.n_units
    stop = n if stop is None else stop
    if not 0 <= start <= stop <= n:
        raise DataError(f"join range [{start}, {stop}) out of bounds for {n}")
    m = dense.level
    combined = np.zeros(n, dtype=bool)
    pairs = sum(n - i for i in range(start, stop))
    if n == 0 or stop == start:
        return JoinResult(cdus=UnitTable.empty(m + 1), combined=combined,
                          pairs_examined=pairs)

    dims = dense.dims.astype(np.int64)
    bins = dense.bins.astype(np.int64)
    out_dims: list[np.ndarray] = []
    out_bins: list[np.ndarray] = []
    for i in range(start, stop):
        rest_dims = dims[i + 1:]
        if rest_dims.size == 0:
            continue
        rest_bins = bins[i + 1:]
        prefix_ok = np.ones(rest_dims.shape[0], dtype=bool)
        if m > 1:
            prefix_ok &= (rest_dims[:, :m - 1] == dims[i, :m - 1]).all(axis=1)
            prefix_ok &= (rest_bins[:, :m - 1] == bins[i, :m - 1]).all(axis=1)
        # last dimensions must differ; canonical order makes row i's last
        # dimension the smaller one within an equal prefix group
        prefix_ok &= rest_dims[:, m - 1] != dims[i, m - 1]
        if not prefix_ok.any():
            continue
        combined[i] = True
        combined[i + 1:][prefix_ok] = True
        extra_dim = rest_dims[prefix_ok, m - 1]
        extra_bin = rest_bins[prefix_ok, m - 1]
        v = extra_dim.shape[0]
        union_dims = np.concatenate(
            [np.tile(dims[i], (v, 1)), extra_dim[:, None]], axis=1)
        union_bins = np.concatenate(
            [np.tile(bins[i], (v, 1)), extra_bin[:, None]], axis=1)
        order = np.argsort(union_dims, axis=1, kind="stable")
        out_dims.append(np.take_along_axis(union_dims, order, axis=1))
        out_bins.append(np.take_along_axis(union_bins, order, axis=1))

    if out_dims:
        cdus = UnitTable(dims=np.concatenate(out_dims).astype(np.uint8),
                         bins=np.concatenate(out_bins).astype(np.uint8))
    else:
        cdus = UnitTable.empty(m + 1)
    return JoinResult(cdus=cdus, combined=combined, pairs_examined=pairs)


def prefix_join_all(dense: UnitTable) -> JoinResult:
    """Full prefix join over the whole (canonically ordered) table."""
    return prefix_join_block(dense, 0, dense.n_units)


def apriori_prune(candidates: UnitTable, dense: UnitTable) -> np.ndarray:
    """Keep-mask over ``candidates``: True where *every* (k−1)-projection
    of the candidate is a known dense unit."""
    if candidates.n_units == 0:
        return np.zeros(0, dtype=bool)
    if candidates.level != dense.level + 1:
        raise DataError(
            f"candidates level {candidates.level} does not extend dense "
            f"level {dense.level}")
    keep = np.ones(candidates.n_units, dtype=bool)
    k = candidates.level
    for drop in range(k):
        cols = [j for j in range(k) if j != drop]
        proj = UnitTable(dims=candidates.dims[:, cols],
                         bins=candidates.bins[:, cols])
        keep &= dense.contains_rows(proj)
    return keep
