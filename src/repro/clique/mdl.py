"""CLIQUE's MDL-based subspace pruning (optional).

CLIQUE sorts the subspaces found dense at a level by their *coverage*
(the fraction of records inside their dense units) and keeps the prefix
that minimises a minimum-description-length code: selected subspaces are
coded against the mean coverage of the selected set, pruned ones against
the mean of the pruned set.

The paper deliberately does **not** use this pruning in pMAFIA because
"this could result in missing some dense units in the pruned subspaces"
(§3); it is provided here to complete the CLIQUE baseline and for the
ablation benches.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.units import UnitTable
from ..errors import DataError


def subspace_coverage(units: UnitTable, counts: np.ndarray
                      ) -> dict[tuple[int, ...], int]:
    """Total dense-unit record count per subspace."""
    counts = np.asarray(counts)
    if counts.shape != (units.n_units,):
        raise DataError(f"counts shape {counts.shape} != ({units.n_units},)")
    out: dict[tuple[int, ...], int] = {}
    for dims, rows in units.group_by_subspace().items():
        out[dims] = int(counts[rows].sum())
    return out


def _code_length(values: list[int]) -> float:
    """Bits to code ``values`` as deviations from their (ceil) mean."""
    if not values:
        return 0.0
    mean = math.ceil(sum(values) / len(values))
    bits = math.log2(mean) if mean > 0 else 0.0
    for v in values:
        dev = abs(v - mean)
        bits += math.log2(dev) if dev > 0 else 0.0
    return bits


def mdl_cut(coverage: dict[tuple[int, ...], int]) -> set[tuple[int, ...]]:
    """The subspaces *selected* (kept) by the MDL criterion.

    Subspaces are sorted by decreasing coverage; every cut position is
    scored as CL(i) = bits(selected | mean_S) + bits(pruned | mean_P) and
    the minimum wins.  At least one subspace is always kept.
    """
    if not coverage:
        return set()
    ordered = sorted(coverage.items(), key=lambda kv: (-kv[1], kv[0]))
    xs = [v for _, v in ordered]
    best_i, best_cl = 1, math.inf
    for i in range(1, len(xs) + 1):
        cl = _code_length(xs[:i]) + _code_length(xs[i:])
        if cl < best_cl:
            best_i, best_cl = i, cl
    return {dims for dims, _ in ordered[:best_i]}


def prune_units(units: UnitTable, counts: np.ndarray,
                selected: set[tuple[int, ...]]
                ) -> tuple[UnitTable, np.ndarray]:
    """Drop dense units living in subspaces outside ``selected``."""
    if units.n_units == 0:
        return units, np.asarray(counts)
    keep = np.zeros(units.n_units, dtype=bool)
    for dims, rows in units.group_by_subspace().items():
        if dims in selected:
            keep[rows] = True
    return units.select(keep), np.asarray(counts)[keep]
