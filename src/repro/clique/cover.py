"""CLIQUE's greedy-growth cluster cover (paper §3.2).

CLIQUE post-processes each cluster (a connected set of dense units) by
covering it with maximal rectangles and greedily discarding redundant
ones, yielding the cluster's DNF over the *fixed uniform grid* — which
is why its reported boundaries are only as accurate as the grid (Figure
1.2a vs 1.2b).  The rectangle growth itself is shared with pMAFIA
(:mod:`repro.core.dnf`); this module adds the redundancy-removal step of
the original CLIQUE description.
"""

from __future__ import annotations

from itertools import product as iter_product

import numpy as np

from ..core.dnf import greedy_cover
from ..errors import DataError


def box_cells(box: tuple[tuple[int, int], ...]) -> set[tuple[int, ...]]:
    """All grid cells inside an inclusive box."""
    return set(iter_product(*(range(lo, hi + 1) for lo, hi in box)))


def minimal_cover(bins: np.ndarray) -> list[tuple[tuple[int, int], ...]]:
    """Greedy maximal-rectangle cover with redundant rectangles removed.

    After the growth phase, rectangles whose cells are all covered by the
    remaining rectangles are discarded smallest-first (CLIQUE's "remove
    covers that are covered by others" heuristic — an approximation, as
    minimum cover is NP-hard).
    """
    bins = np.asarray(bins, dtype=np.int64)
    if bins.ndim != 2:
        raise DataError(f"bins must be 2-D, got {bins.shape}")
    boxes = greedy_cover(bins)
    if len(boxes) <= 1:
        return boxes
    cells_of = [box_cells(b) for b in boxes]
    order = sorted(range(len(boxes)), key=lambda i: len(cells_of[i]))
    alive = [True] * len(boxes)
    for i in order:
        others: set[tuple[int, ...]] = set()
        for j in range(len(boxes)):
            if j != i and alive[j]:
                others |= cells_of[j]
        if cells_of[i] <= others:
            alive[i] = False
    return [b for i, b in enumerate(boxes) if alive[i]]
