"""CLIQUE's uniform grid (Agrawal et al., SIGMOD'98; paper §3).

Each dimension is partitioned into a user-specified number ξ of equal
intervals, and a unit is dense when the fraction of total records inside
it exceeds a global density threshold τ.  Reusing
:class:`~repro.types.Grid` with every bin's threshold set to ``τ·N``
lets CLIQUE share pMAFIA's population / identification machinery — the
max-of-bin-thresholds rule degenerates to the single global threshold.
"""

from __future__ import annotations

import numpy as np

from ..errors import GridError
from ..types import DimensionGrid, Grid


def uniform_grid(domains: np.ndarray, bins_per_dim: tuple[int, ...],
                 n_records: int, threshold: float) -> Grid:
    """Build the uniform CLIQUE grid.

    Parameters
    ----------
    domains:
        ``(d, 2)`` per-dimension (low, high) extents.
    bins_per_dim:
        ξ for each dimension (CLIQUE proper uses one global ξ; the
        paper's Table 3 "variable bins" run varies it per dimension).
    n_records:
        Total record count N.
    threshold:
        Global density threshold τ as a fraction of N.
    """
    domains = np.asarray(domains, dtype=np.float64)
    if domains.ndim != 2 or domains.shape[1] != 2:
        raise GridError(f"domains must be (d, 2), got {domains.shape}")
    if len(bins_per_dim) != domains.shape[0]:
        raise GridError(
            f"{len(bins_per_dim)} bin counts for {domains.shape[0]} dimensions")
    if not 0.0 < threshold < 1.0:
        raise GridError(f"threshold must be in (0, 1), got {threshold}")
    count_threshold = threshold * n_records
    dims = []
    for j, xi in enumerate(bins_per_dim):
        lo, hi = domains[j]
        if not hi > lo:
            raise GridError(f"dimension {j}: empty domain [{lo}, {hi})")
        edges = np.linspace(lo, hi, xi + 1)
        dims.append(DimensionGrid(
            dim=j,
            edges=tuple(float(e) for e in edges),
            thresholds=(float(count_threshold),) * xi,
            uniform=True,
        ))
    return Grid(dims=tuple(dims))
