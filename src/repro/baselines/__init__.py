"""Additional baseline algorithms the paper positions pMAFIA against
(beyond CLIQUE): PROCLUS projected clustering (§2, §5.9.2)."""

from .proclus import ProclusCluster, ProclusResult, proclus

__all__ = ["ProclusCluster", "ProclusResult", "proclus"]
