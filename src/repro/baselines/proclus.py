"""PROCLUS — projected clustering (Aggarwal et al., SIGMOD'99).

The paper's other point of comparison (§2, §5.9(2)): a k-medoid
algorithm that finds *projected* clusters — each cluster is a set of
records plus a set of dimensions — but requires the user to supply
``k`` (the number of clusters) and ``l`` (the average cluster
dimensionality), "both of which are not possible to be known apriori
for real data sets".  On the ionosphere set the paper reports PROCLUS
returning one 31-d and one 33-d cluster, which it attributes to a
mis-chosen ``l`` — the supervision failure mode pMAFIA is designed to
avoid.  This implementation follows the published three-phase
structure:

1. **Initialization** — greedy farthest-point selection of an A·k
   candidate medoid set from a sample;
2. **Iterative phase** — hill-climbing over k-medoid subsets: per
   medoid, a locality radius (distance to the nearest other medoid),
   per-dimension mean locality distances, dimension selection by the
   smallest standardised z-scores (k·l picks, ≥ 2 per medoid), point
   assignment by Manhattan *segmental* distance over each medoid's
   dimensions, objective = mean within-cluster segmental dispersion;
   the worst medoid is swapped against random candidates until no
   improvement persists;
3. **Refinement** — dimensions recomputed on the final clusters, one
   reassignment pass, and outlier marking (points farther from every
   medoid than that medoid's cluster radius).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datagen.icg import np_rng
from ..errors import DataError, ParameterError


@dataclass(frozen=True)
class ProclusCluster:
    """One projected cluster: members plus the dimensions it lives in."""

    medoid_index: int
    dims: tuple[int, ...]
    members: np.ndarray

    @property
    def dimensionality(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        return int(self.members.shape[0])


@dataclass(frozen=True)
class ProclusResult:
    """Outcome of a PROCLUS run."""

    clusters: tuple[ProclusCluster, ...]
    outliers: np.ndarray
    objective: float

    def dimensionalities(self) -> list[int]:
        """Per-cluster projected dimensionality (the user forced the
        average to be l)."""
        return [c.dimensionality for c in self.clusters]


def _greedy_candidates(data: np.ndarray, count: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Farthest-point greedy selection of candidate medoid indices."""
    n = data.shape[0]
    count = min(count, n)
    chosen = [int(rng.integers(0, n))]
    dist = np.abs(data - data[chosen[0]]).sum(axis=1)
    while len(chosen) < count:
        nxt = int(np.argmax(dist))
        chosen.append(nxt)
        dist = np.minimum(dist, np.abs(data - data[nxt]).sum(axis=1))
    return np.asarray(chosen)


def _find_dimensions(data: np.ndarray, medoids: np.ndarray, l: int
                     ) -> list[np.ndarray]:
    """Per-medoid dimension selection by standardised locality scores."""
    k = len(medoids)
    d = data.shape[1]
    points = data[medoids]
    # locality radius: L1 distance to the nearest other medoid
    pairwise = np.abs(points[:, None, :] - points[None, :, :]).sum(axis=2)
    np.fill_diagonal(pairwise, np.inf)
    deltas = pairwise.min(axis=1)

    X = np.empty((k, d))
    for i, m in enumerate(medoids):
        dist = np.abs(data - data[m]).sum(axis=1)
        local = data[dist <= deltas[i]]
        if local.shape[0] < 2:
            local = data[np.argsort(dist)[:max(2, data.shape[0] // 50)]]
        X[i] = np.abs(local - data[m]).mean(axis=0)
    Y = X.mean(axis=1, keepdims=True)
    sigma = np.sqrt(((X - Y) ** 2).sum(axis=1, keepdims=True) / (d - 1))
    sigma[sigma == 0] = 1e-12
    Z = (X - Y) / sigma

    total = k * l
    picks: list[list[int]] = [[] for _ in range(k)]
    # two best dimensions per medoid first (the published constraint)
    order_per_medoid = np.argsort(Z, axis=1)
    used = set()
    for i in range(k):
        for j in order_per_medoid[i, :2]:
            picks[i].append(int(j))
            used.add((i, int(j)))
    # remaining picks: globally smallest z-scores
    flat = [(Z[i, j], i, j) for i in range(k) for j in range(d)
            if (i, j) not in used]
    flat.sort()
    for _, i, j in flat:
        if sum(len(p) for p in picks) >= total:
            break
        picks[i].append(int(j))
    return [np.asarray(sorted(p)) for p in picks]


def _assign(data: np.ndarray, medoids: np.ndarray,
            dims: list[np.ndarray]) -> np.ndarray:
    """Assign each record to the medoid of smallest Manhattan segmental
    distance over that medoid's dimensions."""
    n = data.shape[0]
    scores = np.empty((len(medoids), n))
    for i, m in enumerate(medoids):
        cols = dims[i]
        scores[i] = np.abs(data[:, cols] - data[m, cols]).mean(axis=1)
    return scores.argmin(axis=0)


def _objective(data: np.ndarray, medoids: np.ndarray,
               dims: list[np.ndarray], labels: np.ndarray) -> float:
    total = 0.0
    for i, m in enumerate(medoids):
        members = np.flatnonzero(labels == i)
        if members.size == 0:
            continue
        cols = dims[i]
        total += np.abs(data[np.ix_(members, cols)]
                        - data[m, cols]).mean(axis=1).sum()
    return total / data.shape[0]


def proclus(data: np.ndarray, k: int, l: int, *, seed: int = 0,
            candidate_factor: int = 8, max_no_improve: int = 12,
            outlier_fraction: float = 0.05) -> ProclusResult:
    """Run PROCLUS with user-supplied ``k`` clusters of average
    dimensionality ``l`` (the supervision the paper criticises).

    Returns the projected clusters, the outlier index array, and the
    final objective value.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] < 2:
        raise DataError("PROCLUS needs a 2-D data set with >= 2 records")
    n, d = data.shape
    if not 1 <= k <= n // 2:
        raise ParameterError(f"k must be in [1, n/2], got {k}")
    if not 2 <= l <= d:
        raise ParameterError(f"l must be in [2, d], got {l}")

    rng = np_rng(seed)
    candidates = _greedy_candidates(data, candidate_factor * k, rng)
    current = rng.choice(candidates, size=k, replace=False)

    def evaluate(medoids: np.ndarray):
        dims = _find_dimensions(data, medoids, l)
        labels = _assign(data, medoids, dims)
        return _objective(data, medoids, dims, labels), dims, labels

    best_score, best_dims, best_labels = evaluate(current)
    best_medoids = current.copy()
    stale = 0
    while stale < max_no_improve:
        # swap the medoid of the smallest cluster against a random
        # candidate (the "bad medoid" heuristic)
        sizes = np.bincount(best_labels, minlength=k)
        worst = int(np.argmin(sizes))
        trial = best_medoids.copy()
        replacement = int(rng.choice(candidates))
        if replacement in trial:
            stale += 1
            continue
        trial[worst] = replacement
        score, dims, labels = evaluate(trial)
        if score < best_score:
            best_score, best_dims, best_labels = score, dims, labels
            best_medoids = trial
            stale = 0
        else:
            stale += 1

    # refinement: recompute dimensions on the clusters, reassign once
    refined_dims = []
    for i, m in enumerate(best_medoids):
        members = np.flatnonzero(best_labels == i)
        if members.size < 2:
            refined_dims.append(best_dims[i])
            continue
        spread = np.abs(data[members] - data[m]).mean(axis=0)
        order = np.argsort(spread)
        refined_dims.append(np.sort(order[:max(2, len(best_dims[i]))]))
    labels = _assign(data, best_medoids, refined_dims)

    # outliers: per cluster radius, points beyond every medoid's radius
    radii = np.empty(k)
    seg = np.empty((k, n))
    for i, m in enumerate(best_medoids):
        cols = refined_dims[i]
        seg[i] = np.abs(data[:, cols] - data[m, cols]).mean(axis=1)
        members = np.flatnonzero(labels == i)
        radii[i] = (np.quantile(seg[i][members], 1 - outlier_fraction)
                    if members.size else 0.0)
    outlier_mask = (seg > radii[:, None]).all(axis=0)

    clusters = []
    for i, m in enumerate(best_medoids):
        members = np.flatnonzero((labels == i) & ~outlier_mask)
        clusters.append(ProclusCluster(
            medoid_index=int(m),
            dims=tuple(int(j) for j in refined_dims[i]),
            members=members))
    return ProclusResult(
        clusters=tuple(clusters),
        outliers=np.flatnonzero(outlier_mask),
        objective=float(best_score))
