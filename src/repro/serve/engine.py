"""Batch membership scoring: the naive reference scorer and the server.

:func:`score_batch_naive` is the obvious implementation — one NumPy
interval comparison per term condition, looped in Python — kept as the
ground truth the compiled engine is property-tested (and benchmarked)
against.

:class:`ClusterServer` is the front door: it loads a
:class:`~repro.core.result.ClusteringResult` (or its JSON export, or a
pre-compiled model), scores record batches through the compiled
evaluator, and short-circuits hot traffic through an LRU cache keyed
by bin signature.  Within one batch, duplicate signatures are
evaluated once; across batches, previously seen signatures are
answered from the cache without touching the evaluator at all.  A
batch whose signatures are mostly novel bypasses the cache fill and
evaluates vectorized — cold random traffic is never slower than the
cache-less path by more than the key grouping.

The hot probe never walks a Python loop over the batch: alongside the
LRU dict the server keeps a *sorted probe snapshot* — one sorted
uint64 key array plus the matching membership rows — so a whole batch
is probed with a single ``searchsorted`` and answered with one row
gather.  The snapshot may briefly retain entries the LRU has already
evicted; that is stale-but-*correct* (membership is a pure function of
the signature), costs only memory, and the snapshot is re-filtered
against the live dict once it grows past twice the cache capacity.

The server is thread-safe (one lock around cache sections) and
daemon-friendly: :meth:`ClusterServer.ascore_batch` awaits the scoring
on an executor so an asyncio service can serve concurrent requests,
and all counters are exposed via :meth:`ClusterServer.stats` and —
when constructed with an observer — as ``serve.*`` metrics and spans
(see ``docs/SERVING.md``).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..errors import DataError
from ..types import Cluster
from .cache import SignatureCache
from .compile import CompiledModel, compile_result


def _group(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``np.unique(keys, return_index=True, return_inverse=True)``, but
    through a stable argsort — radix sort on integer keys, several
    times faster than unique's comparison sort on large batches.
    Non-integer (void-view) keys fall back to ``np.unique``."""
    if keys.dtype.kind not in "ui":
        return np.unique(keys, return_index=True, return_inverse=True)
    order = np.argsort(keys, kind="stable")
    ranked = keys[order]
    starts = np.empty(len(ranked), dtype=bool)
    starts[0] = True
    np.not_equal(ranked[1:], ranked[:-1], out=starts[1:])
    group_of_rank = np.cumsum(starts) - 1
    inverse = np.empty(len(ranked), dtype=np.int64)
    inverse[order] = group_of_rank
    return ranked[starts], order[starts], inverse


def score_batch_naive(clusters: Sequence[Cluster], records: np.ndarray
                      ) -> np.ndarray:
    """Reference scorer: ``(n, n_clusters)`` bool membership via a
    per-term NumPy loop over the raw interval comparisons — exactly
    ``Cluster.contains`` vectorized over records, nothing cleverer."""
    records = np.atleast_2d(np.asarray(records, dtype=np.float64))
    n = records.shape[0]
    member = np.zeros((n, len(clusters)), dtype=bool)
    for ci, cluster in enumerate(clusters):
        acc = member[:, ci]
        for term in cluster.dnf:
            hit = np.ones(n, dtype=bool)
            for dim, (lo, hi) in zip(term.subspace.dims, term.intervals):
                col = records[:, dim]
                hit &= (col >= lo) & (col < hi)
            acc |= hit
    return member


@dataclass(frozen=True)
class BatchScores:
    """One scored batch: membership plus the cluster metadata needed to
    answer "which clusters, in which subspaces" without re-touching the
    model."""

    #: (n, n_clusters) bool — record i belongs to cluster c
    membership: np.ndarray
    #: per cluster, its subspace dims
    subspaces: tuple[tuple[int, ...], ...]

    def __len__(self) -> int:
        return int(self.membership.shape[0])

    @property
    def n_clusters(self) -> int:
        return int(self.membership.shape[1])

    def cluster_ids(self, i: int) -> list[int]:
        """The cluster indices record ``i`` belongs to."""
        return np.nonzero(self.membership[i])[0].tolist()

    def record_subspaces(self, i: int) -> list[tuple[int, ...]]:
        """The subspaces of record ``i``'s clusters, in cluster order."""
        return [self.subspaces[c] for c in self.cluster_ids(i)]

    def subspace_masks(self) -> np.ndarray:
        """Per record, the union of its clusters' dimensions as packed
        uint64 bit masks: ``(n, ceil(maxdim/64))``, bit ``d`` of the
        row set iff the record matched a cluster whose subspace
        contains dimension ``d``."""
        maxdim = max((d for dims in self.subspaces for d in dims),
                     default=-1)
        n_words = max(1, -(-(maxdim + 1) // 64))
        cluster_bits = np.zeros((self.n_clusters, n_words),
                                dtype=np.uint64)
        for c, dims in enumerate(self.subspaces):
            for d in dims:
                cluster_bits[c, d // 64] |= np.uint64(1) << np.uint64(d % 64)
        out = np.zeros((len(self), n_words), dtype=np.uint64)
        for c in range(self.n_clusters):
            out[self.membership[:, c]] |= cluster_bits[c]
        return out

    def counts(self) -> np.ndarray:
        """Members per cluster over this batch: ``(n_clusters,)``."""
        return self.membership.sum(axis=0)


class ClusterServer:
    """Serve cluster membership for record batches at array speed.

    Parameters
    ----------
    model:
        A :class:`CompiledModel`, a ``ClusteringResult`` or its
        ``result_to_dict`` payload — anything :func:`compile_result`
        accepts.
    cache_size:
        LRU entries (distinct bin signatures) to retain; ``0`` disables
        the cache entirely.
    bypass_fraction:
        When a batch's distinct signatures exceed this fraction of its
        records, the per-key cache probe is skipped and the batch is
        evaluated vectorized (the cache is left untouched).  ``1.0``
        never bypasses.
    obs:
        An optional :class:`repro.obs.RankObs`; when given, every batch
        records a ``score_batch`` span and ``serve.*`` metrics.  The
        ``None`` default is the zero-cost path.
    """

    def __init__(self, model: Any, *, cache_size: int = 65_536,
                 bypass_fraction: float = 0.25, obs: Any = None) -> None:
        if isinstance(model, CompiledModel):
            self.model = model
        else:
            self.model = compile_result(model)
        if not 0.0 <= bypass_fraction <= 1.0:
            raise DataError(f"bypass_fraction must be in [0, 1], "
                            f"got {bypass_fraction}")
        self.cache = SignatureCache(cache_size) if cache_size > 0 else None
        self.bypass_fraction = float(bypass_fraction)
        self._obs = obs
        self._lock = threading.Lock()
        self._batches = 0
        self._records = 0
        self._bypasses = 0
        self._evaluated = 0
        # sorted probe snapshot: a uint64 key array (ascending) plus
        # the matching membership rows, so a whole batch is probed
        # with one searchsorted instead of a per-key dict loop.  May
        # briefly retain LRU-evicted keys (stale-but-correct).
        self._probe_keys: np.ndarray | None = None
        self._probe_rows: np.ndarray | None = None

    # -- construction ----------------------------------------------------
    @classmethod
    def from_json(cls, text: str, **kwargs: Any) -> "ClusterServer":
        """Build from a result or compiled-model JSON string (the two
        versioned export formats of :mod:`repro.core.export`)."""
        from ..core.export import model_from_dict, result_from_dict
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DataError(f"invalid model JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise DataError("model JSON must be an object")
        if payload.get("format") == "pmafia-compiled-model":
            return cls(model_from_dict(payload), **kwargs)
        return cls(result_from_dict(payload), **kwargs)

    @classmethod
    def from_file(cls, path: str | Path, **kwargs: Any) -> "ClusterServer":
        """Build from a result / compiled-model JSON file on disk."""
        return cls.from_json(Path(path).read_text(), **kwargs)

    # -- scoring ---------------------------------------------------------
    def score_batch(self, records: np.ndarray) -> BatchScores:
        """Score one record block: ``BatchScores`` with an ``(n,
        n_clusters)`` membership matrix.  Identical to
        :func:`score_batch_naive` bit for bit, for any cache state."""
        records = np.atleast_2d(np.asarray(records, dtype=np.float64))
        n = records.shape[0]
        t0 = time.perf_counter()
        span = (self._obs.span("score_batch", cat="serve", n_records=n)
                if self._obs is not None else nullcontext())
        with span:
            idx = self.model.digitize(records)
            hits = misses = evaluated = 0
            bypassed = False
            if self.cache is None:
                membership = self.model.eval_idx(idx)
                misses = evaluated = n
            else:
                membership, hits, misses, evaluated, bypassed = \
                    self._score_cached(idx, n)
        seconds = time.perf_counter() - t0
        self._batches += 1
        self._records += n
        self._evaluated += evaluated
        if bypassed:
            self._bypasses += 1
        if self._obs is not None:
            self._obs.serve_batch(n, seconds, hits=hits, misses=misses,
                                  evaluated=evaluated, bypassed=bypassed)
        return BatchScores(membership=membership,
                           subspaces=self.model.subspaces)

    def _score_cached(self, idx: np.ndarray, n: int
                      ) -> tuple[np.ndarray, int, int, int, bool]:
        """The cached path: probe the sorted snapshot with one
        ``searchsorted``, answer hits with one row gather, then group
        only the missing records and evaluate each novel signature
        once.  Cache hit/miss counters are record-granular here (the
        fast path never probes the dict per key)."""
        if n == 0:
            return (np.zeros((0, self.model.n_clusters), dtype=bool),
                    0, 0, 0, False)
        keys = self.model.group_keys(idx)
        if keys.dtype.kind not in "ui":
            return self._score_grouped(keys, idx, n)

        with self._lock:
            pk, pr = self._probe_keys, self._probe_rows
        if pk is not None and len(pk):
            pos = np.searchsorted(pk, keys)
            np.minimum(pos, len(pk) - 1, out=pos)
            hit = pk[pos] == keys
            n_hit = int(np.count_nonzero(hit))
        else:
            pos = hit = None
            n_hit = 0
        if n_hit == n:
            membership = pr[pos]
            with self._lock:
                self.cache.hits += n
            return membership, n, 0, 0, False

        if hit is None:
            miss_idx = None
            miss_keys = keys
        else:
            miss_idx = np.nonzero(~hit)[0]
            miss_keys = keys[miss_idx]
        uniq, first, inverse = _group(miss_keys)
        u = len(uniq)
        if u > self.bypass_fraction * n:
            # mostly-novel traffic: filling the cache would cost more
            # than it saves, so evaluate vectorized and leave the
            # cache untouched
            return self.model.eval_idx(idx), 0, n, n, True

        first_global = first if miss_idx is None else miss_idx[first]
        fresh = self.model.eval_idx(idx[first_global])
        if miss_idx is None:
            membership = fresh[inverse]
        else:
            membership = np.empty((n, self.model.n_clusters),
                                  dtype=bool)
            membership[hit] = pr[pos[hit]]
            membership[miss_idx] = fresh[inverse]
        n_miss = n - n_hit
        with self._lock:
            self.cache.hits += n_hit
            self.cache.misses += n_miss
            for i in range(u):
                self.cache.put(uniq[i].tobytes(), fresh[i])
            self._merge_probe(uniq, fresh)
        return membership, n_hit, n_miss, u, False

    def _merge_probe(self, new_keys: np.ndarray,
                     new_rows: np.ndarray) -> None:
        """Fold freshly evaluated signatures into the sorted probe
        snapshot (caller holds the lock; ``new_keys`` is ascending —
        :func:`_group` output).  Concurrent batches may append the
        same novel key twice; duplicates are harmless (identical rows)
        and are dropped at the next re-filter."""
        if self._probe_keys is None or not len(self._probe_keys):
            self._probe_keys = new_keys
            self._probe_rows = np.ascontiguousarray(new_rows)
            return
        merged = np.concatenate([self._probe_keys, new_keys])
        rows = np.concatenate([self._probe_rows, new_rows])
        order = np.argsort(merged, kind="stable")
        self._probe_keys = merged[order]
        self._probe_rows = rows[order]
        if len(self._probe_keys) > 2 * self.cache.maxsize:
            # drop snapshot entries the LRU has since evicted
            live = np.fromiter(
                (k.tobytes() in self.cache for k in self._probe_keys),
                dtype=bool, count=len(self._probe_keys))
            self._probe_keys = self._probe_keys[live]
            self._probe_rows = self._probe_rows[live]

    def _score_grouped(self, keys: np.ndarray, idx: np.ndarray, n: int
                       ) -> tuple[np.ndarray, int, int, int, bool]:
        """Fallback cached path for void-view keys (serve-bin count
        product past 2**64): per-unique dict probe, no snapshot."""
        uniq, first, inverse = _group(keys)
        u = len(uniq)
        if u > self.bypass_fraction * n:
            return self.model.eval_idx(idx), 0, n, n, True

        rows = np.empty((u, self.model.n_clusters), dtype=bool)
        missing: list[int] = []
        with self._lock:
            for i in range(u):
                row = self.cache.get(uniq[i].tobytes())
                if row is None:
                    missing.append(i)
                else:
                    rows[i] = row
        if missing:
            miss_pos = np.asarray(missing, dtype=np.int64)
            fresh = self.model.eval_idx(idx[first[miss_pos]])
            rows[miss_pos] = fresh
            with self._lock:
                for j, i in enumerate(missing):
                    self.cache.put(uniq[i].tobytes(), fresh[j])
        membership = rows[inverse]
        per_sig = np.bincount(inverse, minlength=u)
        missed_records = int(per_sig[missing].sum()) if missing else 0
        return (membership, n - missed_records, missed_records,
                len(missing), False)

    def score_one(self, record: Sequence[float]) -> BatchScores:
        """Score a single record (a length-1 batch)."""
        return self.score_batch(np.asarray(record, dtype=np.float64)
                                .reshape(1, -1))

    async def ascore_batch(self, records: np.ndarray,
                           executor: Any = None) -> BatchScores:
        """Asyncio-friendly scoring: runs :meth:`score_batch` on the
        event loop's default (or the given) executor so a daemon can
        serve concurrent requests without blocking the loop."""
        import asyncio
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            executor, self.score_batch, records)

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Lifetime serving counters plus the cache's own (JSON-ready).
        """
        out: dict[str, Any] = {
            "batches": self._batches,
            "records": self._records,
            "evaluations": self._evaluated,
            "cache_bypasses": self._bypasses,
            "n_clusters": self.model.n_clusters,
            "n_terms": self.model.n_terms,
            "cache": self.cache.stats() if self.cache is not None
            else None,
        }
        return out
