"""Cluster serving: compiled DNF membership scoring at batch speed.

The millions-of-users front door over a finished clustering.  Compile
a :class:`~repro.core.result.ClusteringResult`'s minimal DNF cluster
descriptions once (:func:`compile_result`), then answer "which clusters
does this record belong to, in which subspaces" for whole record
batches via vectorized packed-interval evaluation — with an LRU result
cache keyed by per-record bin signature so hot traffic skips
evaluation entirely.

Entry points
------------
* :class:`ClusterServer` — load a result (object, dict or JSON file),
  call :meth:`~ClusterServer.score_batch`; thread-safe, asyncio-aware
  (:meth:`~ClusterServer.ascore_batch`), optionally metered through a
  :class:`repro.obs.RankObs` (``serve.*`` metrics + spans).
* :func:`compile_result` / :func:`compile_clusters` — build the
  reusable :class:`CompiledModel` directly.
* :func:`score_batch_naive` — the per-term reference scorer the
  compiled engine is property-tested and benchmarked against.
* ``repro.core.export.model_to_json`` / ``model_from_json`` — the
  versioned compiled-model interchange format.

See ``docs/SERVING.md`` for the full query API, cache semantics and
performance numbers, and ``examples/score_stream.py`` for an
end-to-end walkthrough.
"""

from __future__ import annotations

from .cache import SignatureCache
from .compile import (CompiledModel, compile_arrays, compile_clusters,
                      compile_result)
from .engine import BatchScores, ClusterServer, score_batch_naive

__all__ = [
    "BatchScores",
    "ClusterServer",
    "CompiledModel",
    "SignatureCache",
    "compile_arrays",
    "compile_clusters",
    "compile_result",
    "score_batch_naive",
]
