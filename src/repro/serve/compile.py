"""Compile minimal DNF cluster descriptions into a vectorized evaluator.

A clustering's end product is a set of DNF expressions — per cluster, a
union of hyper-rectangles over adaptive-grid bin boundaries.  Serving
them naively walks every term of every cluster per record; this module
compiles the whole cluster set once into a *packed-interval* evaluator
so a batch of records is scored with a handful of array operations:

1.  **Digitize** — per serving dimension (the union of all cluster
    subspace dims), the distinct term boundary values form one sorted
    edge array; ``np.searchsorted(edges, col, side="right")`` maps each
    record to a small integer *serve bin* per dimension, exactly once
    per batch.  Because the edges are the terms' own ``lo``/``hi``
    floats, bin membership reproduces the direct comparisons
    ``lo <= x < hi`` bit for bit — including records sitting exactly on
    a bin edge (property-tested in ``tests/test_serve.py``).
2.  **Interval masks** — every DNF term owns one bit of a packed uint64
    mask; per serving dimension a small lookup table maps each serve
    bin to the mask of terms whose interval on that dimension contains
    the bin (terms without a condition on the dimension are don't-care:
    their bit stays set).  ANDing the per-dimension lookups leaves
    exactly the bits of the terms the record satisfies.
3.  **Cluster reduction** — terms of one cluster occupy a contiguous
    bit range padded to never straddle a word, so membership is one
    masked word test per cluster (``hit_words[:, w] & mask != 0``)
    rather than a per-term loop.

The per-record serve-bin row doubles as the record's *bin signature*:
packed through :func:`repro.core.units.pack_tokens`, it keys the
serving cache (:mod:`repro.serve.cache`) — records in the same grid
cell provably score identically, so hot traffic short-circuits
evaluation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Sequence

import numpy as np

from ..core.dnf import TermArrays, term_arrays
from ..errors import DataError
from ..core.units import pack_tokens
from ..types import Cluster

#: serve bins are packed as uint16 tokens, so a dimension may have at
#: most this many distinct term boundaries (adaptive grids give <= 257)
MAX_BOUNDARIES = 65_534

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class CompiledModel:
    """One cluster set compiled for batch membership scoring.

    Built by :func:`compile_clusters` / :func:`compile_result`; see the
    module docstring for the evaluation scheme.  All arrays are
    read-only at serve time, so one model may be shared across threads.
    """

    #: data-set dimensionality records must match
    ndim: int
    #: per cluster, its subspace dims (reported alongside membership)
    subspaces: tuple[tuple[int, ...], ...]
    #: per cluster, the training-time record count (metadata)
    point_counts: tuple[int, ...]
    #: the flat condition table the model was compiled from (kept for
    #: versioned export/import — see repro.core.export)
    terms: TermArrays
    #: (s,) sorted dims that actually appear in any term
    serve_dims: np.ndarray
    #: per serve dim, sorted unique term boundary values
    boundaries: tuple[np.ndarray, ...]
    #: per serve dim, (n_bins, n_words) uint64 term-mask lookup table
    luts: tuple[np.ndarray, ...]
    #: packed term-mask words per record after the AND-reduction
    n_words: int
    #: per cluster, the word index and mask of its (contiguous) term bits
    cluster_word: np.ndarray
    cluster_mask: np.ndarray

    # -- shapes ----------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        return len(self.subspaces)

    @property
    def n_terms(self) -> int:
        return self.terms.n_terms

    @property
    def n_serve_dims(self) -> int:
        return int(len(self.serve_dims))

    @property
    def signature_words(self) -> int:
        """uint64 words per record bin signature (>= 1)."""
        return max(1, -(-self.n_serve_dims // 4))

    @cached_property
    def _radix_strides(self) -> np.ndarray | None:
        """Mixed-radix strides collapsing a serve-bin row to ONE uint64
        grouping key, or ``None`` when the bin-count product overflows
        a word (then grouping falls back to the packed signature rows).
        Adaptive-grid DNFs have a handful of boundaries per dim, so the
        single-word key is the overwhelmingly common case — and sorting
        uint64 keys is several times faster than sorting byte rows."""
        total = 1
        for edges in self.boundaries:
            total *= len(edges) + 1
        if total > (1 << 64):
            return None
        strides = np.empty(self.n_serve_dims, dtype=np.uint64)
        acc = 1
        for j in range(self.n_serve_dims - 1, -1, -1):
            strides[j] = acc
            acc *= len(self.boundaries[j]) + 1
        return strides

    # -- evaluation ------------------------------------------------------
    def digitize(self, records: np.ndarray) -> np.ndarray:
        """Map an ``(n, ndim)`` record block to its ``(n, s)`` uint16
        serve-bin matrix — one ``searchsorted`` per serving dimension,
        the only place record values are read.  The result is
        column-major so each dimension's bins stay contiguous for the
        gathers downstream; columns are searched on a contiguous copy
        (``searchsorted`` on a strided column is ~3x slower)."""
        records = np.atleast_2d(np.asarray(records, dtype=np.float64))
        if records.ndim != 2 or records.shape[1] != self.ndim:
            raise DataError(
                f"records shape {records.shape} does not match model "
                f"with {self.ndim} dimensions")
        idx = np.empty((records.shape[0], self.n_serve_dims),
                       dtype=np.uint16, order="F")
        for j, dim in enumerate(self.serve_dims):
            col = np.ascontiguousarray(records[:, dim])
            idx[:, j] = np.searchsorted(self.boundaries[j], col,
                                        side="right")
        return idx

    def signatures(self, idx: np.ndarray) -> np.ndarray:
        """Pack a digitized ``(n, s)`` matrix into ``(n, ceil(s/4))``
        uint64 bin-signature words (the serving-cache key space)."""
        return pack_tokens(np.ascontiguousarray(
            idx.astype(np.uint64, copy=False)))

    def group_keys(self, idx: np.ndarray) -> np.ndarray:
        """One hashable grouping key per digitized record: records with
        equal keys provably score identically.  A ``(n,)`` uint64 array
        via the mixed-radix collapse when it fits, else the packed
        signature rows as an opaque void view."""
        strides = self._radix_strides
        if strides is None:
            from ..core.units import row_keys
            return row_keys(self.signatures(idx))
        n = idx.shape[0]
        key = np.zeros(n, dtype=np.uint64)
        for j in range(self.n_serve_dims):
            np.multiply(key, np.uint64(len(self.boundaries[j]) + 1),
                        out=key)
            np.add(key, idx[:, j], out=key, casting="unsafe")
        return key

    def eval_idx(self, idx: np.ndarray) -> np.ndarray:
        """Membership from an already-digitized ``(n, s)`` matrix:
        ``(n, n_clusters)`` bool, True where the record satisfies at
        least one DNF term of the cluster.

        Runs in ~64k-record blocks so the gathered mask words stay
        cache-resident instead of round-tripping batch-sized
        temporaries through memory."""
        n = idx.shape[0]
        if self.n_terms == 0 or n == 0:
            return np.zeros((n, self.n_clusters), dtype=bool)
        member = np.empty((n, self.n_clusters), dtype=bool, order="F")
        block = min(n, 65_536)
        hits = np.empty((block, self.n_words), dtype=np.uint64)
        gathered = np.empty_like(hits)
        for start in range(0, n, block):
            m = min(block, n - start)
            h, g = hits[:m], gathered[:m]
            h[...] = _ALL_ONES
            for j in range(self.n_serve_dims):
                np.take(self.luts[j], idx[start:start + m, j], axis=0,
                        out=g)
                np.bitwise_and(h, g, out=h)
            for c in range(self.n_clusters):
                np.not_equal(h[:, self.cluster_word[c]]
                             & self.cluster_mask[c], 0,
                             out=member[start:start + m, c])
        return member

    def score(self, records: np.ndarray) -> np.ndarray:
        """Digitize + evaluate in one call: ``(n, n_clusters)`` bool."""
        return self.eval_idx(self.digitize(records))

    # -- introspection ---------------------------------------------------
    def describe(self) -> str:
        return (f"CompiledModel({self.n_clusters} clusters, "
                f"{self.n_terms} terms, {self.terms.n_conditions} "
                f"conditions over {self.n_serve_dims} of {self.ndim} "
                f"dims, {self.n_words} mask word(s))")


def compile_clusters(clusters: Sequence[Cluster], ndim: int
                     ) -> CompiledModel:
    """Compile a cluster sequence (e.g. ``result.clusters``) for
    serving against ``ndim``-dimensional records."""
    return compile_arrays(term_arrays(clusters), ndim,
                          subspaces=tuple(c.subspace.dims
                                          for c in clusters),
                          point_counts=tuple(int(c.point_count)
                                             for c in clusters))


def compile_result(result: Any) -> CompiledModel:
    """Compile a :class:`~repro.core.result.ClusteringResult` (or its
    ``result_to_dict`` payload) into a serving model."""
    if isinstance(result, dict):
        from ..core.export import result_from_dict
        result = result_from_dict(result)
    return compile_clusters(result.clusters, result.grid.ndim)


def compile_arrays(terms: TermArrays, ndim: int, *,
                   subspaces: Sequence[Sequence[int]],
                   point_counts: Sequence[int] | None = None
                   ) -> CompiledModel:
    """Build the evaluator from a flat condition table (the import path
    of the versioned model export, and the core of the compilers above).
    """
    if len(subspaces) != terms.n_clusters:
        raise DataError(f"{len(subspaces)} subspaces for "
                        f"{terms.n_clusters} clusters")
    if point_counts is None:
        point_counts = (0,) * terms.n_clusters
    subspaces = tuple(tuple(int(d) for d in dims) for dims in subspaces)
    for dims in subspaces:
        for d in dims:
            if not 0 <= d < ndim:
                raise DataError(f"subspace dim {d} outside the "
                                f"{ndim}-dimensional data space")
    if terms.n_conditions and int(terms.cond_dim.max()) >= ndim:
        raise DataError("term condition references a dim outside the "
                        f"{ndim}-dimensional data space")
    terms = _grouped_by_cluster(terms)

    # bit layout: terms of one cluster are contiguous (enforced above)
    # and padded so no cluster straddles a word — membership then
    # costs one masked word test per cluster
    bit_of_term, cluster_word, cluster_mask, n_words = _layout_bits(terms)

    serve_dims = np.unique(terms.cond_dim) if terms.n_conditions \
        else np.empty(0, dtype=np.int64)
    boundaries: list[np.ndarray] = []
    luts: list[np.ndarray] = []
    for dim in serve_dims:
        on_dim = terms.cond_dim == dim
        edges = np.unique(np.concatenate([terms.cond_lo[on_dim],
                                          terms.cond_hi[on_dim]]))
        if len(edges) > MAX_BOUNDARIES:
            raise DataError(
                f"dim {int(dim)} has {len(edges)} distinct term "
                f"boundaries; serving supports at most {MAX_BOUNDARIES}")
        n_bins = len(edges) + 1     # searchsorted lands in [0, len(edges)]
        lut = np.full((n_bins, n_words), _ALL_ONES, dtype=np.uint64)
        lo_idx = np.searchsorted(edges, terms.cond_lo[on_dim])
        hi_idx = np.searchsorted(edges, terms.cond_hi[on_dim])
        for t, a, b in zip(terms.cond_term[on_dim], lo_idx, hi_idx):
            # the term accepts serve bin v iff a < v <= b (side="right"
            # digitizing maps x == edges[a] to a + 1): clear its bit
            # everywhere outside that interval
            word, bit = divmod(int(bit_of_term[t]), 64)
            clear = ~(np.uint64(1) << np.uint64(bit))
            lut[:a + 1, word] &= clear
            lut[b + 1:, word] &= clear
        boundaries.append(np.ascontiguousarray(edges))
        luts.append(lut)

    return CompiledModel(
        ndim=int(ndim), subspaces=subspaces,
        point_counts=tuple(int(p) for p in point_counts),
        terms=terms, serve_dims=serve_dims,
        boundaries=tuple(boundaries), luts=tuple(luts),
        n_words=n_words, cluster_word=cluster_word,
        cluster_mask=cluster_mask)


def _grouped_by_cluster(terms: TermArrays) -> TermArrays:
    """Reorder a condition table so terms of one cluster are contiguous
    in cluster order (``term_arrays`` already emits this layout; a
    hand-built or imported table may not)."""
    order = np.argsort(terms.term_cluster, kind="stable")
    if np.array_equal(order, np.arange(terms.n_terms)):
        return terms
    new_of_old = np.empty(terms.n_terms, dtype=np.int64)
    new_of_old[order] = np.arange(terms.n_terms)
    cond_order = np.argsort(new_of_old[terms.cond_term], kind="stable")
    return TermArrays(
        n_clusters=terms.n_clusters,
        term_cluster=terms.term_cluster[order],
        cond_term=new_of_old[terms.cond_term][cond_order],
        cond_dim=terms.cond_dim[cond_order],
        cond_lo=terms.cond_lo[cond_order],
        cond_hi=terms.cond_hi[cond_order])


def _layout_bits(terms: TermArrays
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Assign each term a bit so every cluster's terms share one word.

    Returns ``(bit_of_term, cluster_word, cluster_mask, n_words)``.
    A cluster's bit range is padded to never straddle a word boundary,
    which caps clusters at 64 DNF terms — adaptive-grid DNFs are far
    below that (the greedy cover emits one box per uncovered region);
    a pathological cluster fails loudly at compile time rather than
    silently mis-scoring.
    """
    n_clusters = terms.n_clusters
    counts = np.zeros(n_clusters, dtype=np.int64)
    if terms.n_terms:
        counts += np.bincount(terms.term_cluster, minlength=n_clusters)
    bit_of_term = np.zeros(terms.n_terms, dtype=np.int64)
    cluster_word = np.zeros(n_clusters, dtype=np.int64)
    cluster_mask = np.zeros(n_clusters, dtype=np.uint64)
    next_bit = 0
    term_cursor = 0
    for c in range(n_clusters):
        k = int(counts[c])
        if k > 64:
            raise DataError(
                f"cluster {c} has {k} DNF terms; the packed evaluator "
                f"supports at most 64 per cluster")
        word_pos = next_bit % 64
        if k and word_pos + k > 64:     # pad to the next word boundary
            next_bit += 64 - word_pos
        start = next_bit
        bit_of_term[term_cursor:term_cursor + k] = \
            np.arange(start, start + k)
        cluster_word[c] = start // 64
        if k:
            span = (_ALL_ONES >> np.uint64(64 - k)) \
                << np.uint64(start % 64)
            cluster_mask[c] = span
        term_cursor += k
        next_bit += k
    n_words = max(1, -(-next_bit // 64))
    return bit_of_term, cluster_word, cluster_mask, n_words
