"""The serving result cache: LRU over packed bin signatures.

Two records that digitize to the same serve-bin row provably score
identically (membership is a pure function of the bin signature), so
the server caches one membership row per *signature* rather than per
record.  Keys are the raw bytes of the record's packed uint64
signature words (:meth:`repro.serve.compile.CompiledModel.signatures`);
values are the ``(n_clusters,)`` bool membership row.

The store is a plain ``OrderedDict`` in LRU order — a hit moves the
key to the back, inserting past ``maxsize`` evicts from the front.
Mutation is cheap (two dict ops), so the server holds its lock across
whole-batch probe/fill sections rather than per key.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np


class SignatureCache:
    """Bounded LRU map from bin-signature bytes to membership rows."""

    __slots__ = ("maxsize", "_store", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 65_536) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._store: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: bytes) -> bool:
        return key in self._store

    def get(self, key: bytes) -> np.ndarray | None:
        """The cached membership row for ``key`` (refreshing its LRU
        position), or ``None`` on a miss."""
        row = self._store.get(key)
        if row is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return row

    def put(self, key: bytes, row: np.ndarray) -> None:
        """Insert (or refresh) one membership row, evicting the least
        recently used entry when full."""
        store = self._store
        if key in store:
            store.move_to_end(key)
            store[key] = row
            return
        if len(store) >= self.maxsize:
            store.popitem(last=False)
            self.evictions += 1
        store[key] = row

    def clear(self) -> None:
        self._store.clear()

    def stats(self) -> dict[str, int]:
        """Lifetime counters as a plain dict (JSON-ready)."""
        return {"entries": len(self._store), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}
