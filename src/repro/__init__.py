"""repro — reproduction of *"A Scalable Parallel Subspace Clustering
Algorithm for Massive Data Sets"* (Nagesh, Goil, Choudhary — ICPP 2000).

Public API highlights:

* :func:`repro.mafia` / :func:`repro.pmafia` — the paper's algorithm,
  serial and SPMD-parallel (thread or simulated-IBM-SP2 backends);
* :func:`repro.clique.clique` — the CLIQUE baseline it is evaluated
  against;
* :mod:`repro.datagen` — the §5.1 synthetic generator plus surrogates
  for the paper's real data sets;
* :mod:`repro.parallel` — the from-scratch message-passing substrate;
* :mod:`repro.analysis` — clustering quality metrics and the paper's
  closed-form complexity model;
* :mod:`repro.obs` — per-rank tracing and metrics
  (``MafiaParams(trace=True, metrics=True)``, Chrome-trace export).
"""

from .core import (ClusteringResult, PMafiaRun, mafia, pmafia,
                   pmafia_resumable, pmafia_supervised)
from .errors import (CheckpointError, ChecksumError, CommAborted, CommError,
                     CommTimeoutError, DataError, GridError, ParameterError,
                     RecordFileError, ReproError)
from .obs import (RankObsData, RunObs, as_run_obs, write_chrome_trace,
                  write_metrics_snapshot)
from .params import CliqueParams, MafiaParams
from .parallel import (CrashPoint, FaultPlan, MachineSpec, MessageFault,
                       ReadFault, RecoveryReport, SupervisePolicy, run_spmd)
from .types import Cluster, DimensionGrid, DNFTerm, Grid, Subspace

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "ChecksumError",
    "CliqueParams",
    "Cluster",
    "ClusteringResult",
    "CommAborted",
    "CommError",
    "CommTimeoutError",
    "CrashPoint",
    "DNFTerm",
    "DataError",
    "DimensionGrid",
    "FaultPlan",
    "Grid",
    "GridError",
    "MachineSpec",
    "MessageFault",
    "MafiaParams",
    "PMafiaRun",
    "ParameterError",
    "RankObsData",
    "ReadFault",
    "RecordFileError",
    "RecoveryReport",
    "ReproError",
    "RunObs",
    "Subspace",
    "SupervisePolicy",
    "__version__",
    "as_run_obs",
    "mafia",
    "pmafia",
    "pmafia_resumable",
    "pmafia_supervised",
    "run_spmd",
    "write_chrome_trace",
    "write_metrics_snapshot",
]
