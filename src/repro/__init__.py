"""repro — reproduction of *"A Scalable Parallel Subspace Clustering
Algorithm for Massive Data Sets"* (Nagesh, Goil, Choudhary — ICPP 2000).

Public API highlights:

* :func:`repro.mafia` / :func:`repro.pmafia` — the paper's algorithm,
  serial and SPMD-parallel (thread or simulated-IBM-SP2 backends);
* :func:`repro.clique.clique` — the CLIQUE baseline it is evaluated
  against;
* :mod:`repro.datagen` — the §5.1 synthetic generator plus surrogates
  for the paper's real data sets;
* :mod:`repro.parallel` — the from-scratch message-passing substrate;
* :mod:`repro.analysis` — clustering quality metrics and the paper's
  closed-form complexity model.
"""

from .core import ClusteringResult, PMafiaRun, mafia, pmafia
from .errors import (CommAborted, CommError, DataError, GridError,
                     ParameterError, RecordFileError, ReproError)
from .params import CliqueParams, MafiaParams
from .parallel import MachineSpec, run_spmd
from .types import Cluster, DimensionGrid, DNFTerm, Grid, Subspace

__version__ = "1.0.0"

__all__ = [
    "CliqueParams",
    "Cluster",
    "ClusteringResult",
    "CommAborted",
    "CommError",
    "DNFTerm",
    "DataError",
    "DimensionGrid",
    "Grid",
    "GridError",
    "MachineSpec",
    "MafiaParams",
    "PMafiaRun",
    "ParameterError",
    "RecordFileError",
    "ReproError",
    "Subspace",
    "__version__",
    "mafia",
    "pmafia",
    "run_spmd",
]
