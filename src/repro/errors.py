"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its valid range."""


class DataError(ReproError, ValueError):
    """Input data is malformed (wrong shape, dtype, empty, NaNs...)."""


class CommError(ReproError, RuntimeError):
    """A communication primitive was misused or failed."""


class CommAborted(CommError):
    """A peer rank raised, aborting the SPMD program."""


class CommTimeoutError(CommError):
    """A blocked receive exceeded its deadline — the peer is presumed
    lost (crashed, hung or partitioned) and the program should abort
    promptly instead of waiting forever."""


class RecordFileError(ReproError, OSError):
    """A record file is missing, truncated or has a bad header."""


class ChecksumError(RecordFileError):
    """A record-file chunk failed its CRC32 check: the bytes on disk do
    not match what was written.  Never retried — corruption is not
    transient."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing, corrupt, or incompatible with the
    run attempting to resume from it."""


class GridError(ReproError, RuntimeError):
    """Adaptive grid construction failed (e.g. degenerate domain)."""


class StreamError(ReproError, RuntimeError):
    """A streaming session or delta source was misused (ingest after
    close, spill on a multi-rank session, resume without a manifest,
    put on a closed delta queue...)."""
