"""Algorithm parameter bundles for pMAFIA and the CLIQUE baseline.

The paper stresses that pMAFIA is *unsupervised*: the only knobs are the
density deviation factor ``alpha`` (>1.5 is "significant" per the paper)
and the window-merge threshold percentage ``beta`` (any value in the
25-75 % plateau works, §4.4).  Everything else here is an implementation
constant with a paper-faithful default.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from .errors import ParameterError


def _check_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")


#: the full CDU join strategy set — the single source for
#: ``MafiaParams.join_strategy`` validation and the CLI
#: ``--join-strategy`` choices
JOIN_STRATEGIES = ("auto", "pairwise", "hash", "fptree", "direct")


@dataclass(frozen=True)
class MafiaParams:
    """Parameters of the (p)MAFIA algorithm.

    Attributes
    ----------
    alpha:
        Density deviation factor: a bin of width ``a`` in a dimension of
        extent ``D`` is dense when its count exceeds ``alpha * N * a / D``.
        The paper uses values >= 1.5 ("significant deviation").
    beta:
        Adjacent-window merge threshold, as a fraction in (0, 1).  Two
        adjacent windows merge when their histogram values differ by less
        than ``beta`` relative to the larger of the two.  Paper: 25-75 %.
    fine_bins:
        Number of fine intervals the domain of every dimension is divided
        into before windowing (Algorithm 1's "windows of some small size").
    window_size:
        Number of adjacent fine intervals collapsed into one window by
        taking their maximum histogram value.
    uniform_split:
        Number of equal partitions an equi-distributed dimension (whose
        bins all merged into one) is re-split into.
    uniform_alpha_boost:
        Multiplier applied on top of ``alpha`` for the re-split bins of an
        equi-distributed dimension ("set a high threshold as this
        dimension is less likely to be part of a cluster").
    tau:
        Task-parallel threshold τ: unit-table work is partitioned across
        ranks only when the number of units exceeds ``tau``; below it all
        ranks redundantly process everything (saves latency on tiny jobs).
    chunk_records:
        ``B`` — number of records read from disk per chunk (out-of-core
        buffer size).
    max_dimensionality:
        Safety cap on the highest subspace level explored (the paper's
        loop is unbounded; real data terminates on its own).
    min_bin_points:
        Bins whose raw 1-D histogram count is below this many points are
        never promoted to candidate dense units (cheap noise filter; 0
        disables it).
    report:
        Which dense units seed reported clusters.  ``"merged"``
        (default) reports maximal dense units except boundary slivers
        face-adjacent to a higher cluster's projection — matching the
        paper's printed outputs (subset clusters eliminated, no edge
        artefacts) while keeping clusters that stop extending early.
        ``"paper"`` registers a unit only when it combined with no other
        unit during CDU generation (plus the top level) — the literal
        Algorithm 3 rule.  ``"maximal"`` reports every dense unit that
        is not a projection of a dense unit one level up (strictly
        lossless, may surface marginal boundary leftovers).
    bin_cache:
        Where the staged bin-index store lives.  Once the adaptive grid
        is fixed, each rank converts its local records to per-dimension
        bin indices exactly once; every level pass then streams those
        compact columns instead of re-reading and re-locating the float
        records.  ``"memory"`` (default) keeps the store in RAM (n x d
        bytes per rank), ``"disk"`` writes it next to the rank's staged
        record file (reused across runs while the grid fingerprint
        matches), ``"off"`` disables the cache and re-locates records
        every pass.  Results and simulated runtimes are identical under
        all three policies.
    join_strategy:
        How CDUs are generated from the dense units of the level below.
        ``"pairwise"`` runs the paper's O(Ndu²) triangular sweep
        (Algorithm 3 verbatim); ``"hash"`` runs the sub-signature hash
        join (near-linear grouping, bit-identical output);
        ``"fptree"`` mines the pairs from a prefix trie (FP-tree)
        with support pruning — fastest on prefix-sparse lattices, the
        high-dimensionality regime; ``"direct"`` engages the direct
        transaction-mining engine (:mod:`repro.core.directmine`) as
        soon as its budgets allow: one pass over the staged bin-index
        columns mines exact supports for every remaining level, and
        the classic engines serve any level the budgets decline;
        ``"auto"`` (default) picks per level from realised lattice
        stats: pairwise below a small-Ndu threshold, then from level 4
        up the fptree support prune is probed — a sparse lattice
        engages direct mining (from ``direct_min_level``, budgets
        permitting) or falls back to the fptree engine, hash otherwise
        — and always pairwise on the simulated-time backend, so
        virtual SP2 runtimes keep the paper's cost model.  Clusters
        are identical under all values.
    direct_mining:
        Master switch for the direct transaction-mining engine.  When
        False neither ``"auto"`` nor ``"direct"`` ever engages it (the
        classic per-level engines run everywhere).  Results are
        bit-identical either way; the engine changes wall clock only.
    direct_min_level:
        Earliest lattice level the ``"auto"`` policy may hand to the
        direct miner (an explicit ``join_strategy="direct"`` tries
        every level).  Shallow lattices have wide transactions whose
        subset enumeration explodes; by level 4 the dense-bin alphabet
        has collapsed enough for one-shot mining to win.
    direct_max_subsets:
        Budget on the global subset-enumeration size (itemset table
        entries, summed over ranks) the direct miner may materialise.
        Engagement is declined — symmetrically on every rank — when
        the estimate exceeds this.
    direct_max_transactions:
        Per-rank budget on distinct dense-bin transactions after
        projection; engagement is declined when any rank exceeds it.
    prefetch:
        When True, level passes double-buffer their chunk reads: the
        next chunk of the binned store (or float records) is staged on
        a background thread while the current chunk's counting runs.
        Results and simulated runtimes are unaffected.
    bitmap_index:
        Whether each rank keeps a persistent per-(dim, bin) membership
        bitmap index for the lifetime of the run.  Built once right
        after the adaptive grid is fixed, the index turns every level
        pass into pure AND + popcount over cached bitmaps — zero
        re-reads of the staged columns and zero repeated ``packbits``.
        ``"auto"`` (default) keeps the index resident in RAM when it
        fits ``bitmap_budget`` bytes and spills it to an mmap-tiled
        on-disk format (CRC-checked, grid-fingerprint-invalidated)
        otherwise; ``"resident"`` / ``"mmap"`` force one mode;
        ``"off"`` disables the index and level passes stream the
        binned store (or float records) as before.  Clusters, CDU
        counts and simulated runtimes are bit-identical under every
        value — the index changes wall clock only.
    bitmap_budget:
        Byte budget (per rank) shared by the resident bitmap index and
        the memoized prefix-AND cache on top of it.  Default 256 MiB.
    compute_threads:
        Intra-rank threads tiling the indexed engine's AND/popcount
        loop (numpy releases the GIL).  1 (default) stays serial;
        counts are bit-identical for any value.
    trace:
        When True, every rank records per-span timing (wall and
        virtual clocks) of phases, collectives, level passes and
        checkpoint activity into :mod:`repro.obs` — exported on
        ``ClusteringResult.obs`` / ``PMafiaRun.obs`` and writable as
        Chrome ``trace_event`` JSON.  Results and simulated runtimes
        are bit-identical with tracing on or off.
    metrics:
        When True, every rank keeps the :mod:`repro.obs` counter/gauge/
        histogram registry (records read, bytes per collective, pairs
        examined, per-level lattice sizes, retries, checkpoint bytes,
        prefetch hits).  Same bit-identity guarantee as ``trace``.
    rebalance:
        When True (and more than one rank, on a wall-clock backend),
        the driver watches realised per-level population times and
        re-fences the next join/repeat-elimination passes so a
        straggling rank owns proportionally less pivot work (see
        :mod:`repro.core.rebalance`).  Fences stay contiguous row
        ranges, so clusters and CDU tables are bit-identical with
        rebalancing on or off — only wall clock and message sizes move.
        Inert on the simulated-time backend (it would change the
        modelled message pattern).
    """

    alpha: float = 1.5
    beta: float = 0.35
    fine_bins: int = 1000
    window_size: int = 5
    uniform_split: int = 5
    uniform_alpha_boost: float = 1.0
    tau: int = 64
    chunk_records: int = 50_000
    max_dimensionality: int = 64
    min_bin_points: int = 0
    report: str = "merged"
    bin_cache: str = "memory"
    join_strategy: str = "auto"
    direct_mining: bool = True
    direct_min_level: int = 4
    direct_max_subsets: int = 4_000_000
    direct_max_transactions: int = 262_144
    prefetch: bool = False
    bitmap_index: str = "auto"
    bitmap_budget: int = 1 << 28
    compute_threads: int = 1
    trace: bool = False
    metrics: bool = False
    rebalance: bool = False

    def __post_init__(self) -> None:
        if self.report not in ("merged", "paper", "maximal"):
            raise ParameterError(
                f"report must be 'merged', 'paper' or 'maximal', "
                f"got {self.report!r}")
        if self.bin_cache not in ("memory", "disk", "off"):
            raise ParameterError(
                f"bin_cache must be 'memory', 'disk' or 'off', "
                f"got {self.bin_cache!r}")
        if self.join_strategy not in JOIN_STRATEGIES:
            choices = ", ".join(repr(s) for s in JOIN_STRATEGIES)
            raise ParameterError(
                f"join_strategy must be one of {choices}, "
                f"got {self.join_strategy!r}")
        if self.bitmap_index not in ("auto", "resident", "mmap", "off"):
            raise ParameterError(
                f"bitmap_index must be 'auto', 'resident', 'mmap' or "
                f"'off', got {self.bitmap_index!r}")
        for name in ("bitmap_budget", "compute_threads",
                     "direct_min_level", "direct_max_subsets",
                     "direct_max_transactions"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ParameterError(
                    f"{name} must be a positive int, got {value!r}")
        for name in ("prefetch", "trace", "metrics", "rebalance",
                     "direct_mining"):
            value = getattr(self, name)
            if not isinstance(value, bool):
                raise ParameterError(
                    f"{name} must be a bool, got {value!r}")
        _check_positive("alpha", self.alpha)
        if not 0.0 < self.beta < 1.0:
            raise ParameterError(f"beta must be in (0, 1), got {self.beta!r}")
        for name in ("fine_bins", "window_size", "uniform_split",
                     "chunk_records", "max_dimensionality"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ParameterError(f"{name} must be a positive int, got {value!r}")
        if self.window_size > self.fine_bins:
            raise ParameterError(
                f"window_size ({self.window_size}) cannot exceed "
                f"fine_bins ({self.fine_bins})")
        if self.tau < 0:
            raise ParameterError(f"tau must be >= 0, got {self.tau!r}")
        if self.min_bin_points < 0:
            raise ParameterError(
                f"min_bin_points must be >= 0, got {self.min_bin_points!r}")
        _check_positive("uniform_alpha_boost", self.uniform_alpha_boost)

    def with_(self, **changes: Any) -> "MafiaParams":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class CliqueParams:
    """Parameters of the CLIQUE baseline (Agrawal et al., SIGMOD'98).

    CLIQUE is *supervised* by two user inputs the paper criticises:
    ``bins`` (ξ, equal intervals per dimension) and ``threshold``
    (global density threshold τ as a fraction of N).

    Attributes
    ----------
    bins:
        Number of equal-width intervals per dimension.  May also be a
        per-dimension sequence (the "variable bins" run of Table 3).
    threshold:
        Global density threshold as a fraction of the total record count:
        a unit is dense when ``count > threshold * N``.
    modified_join:
        When True, use MAFIA's any-(k−2)-shared-dimensions join instead of
        CLIQUE's first-(k−2) prefix join (the §5.5 "modified CLIQUE").
    apriori_prune:
        Drop candidates having a non-dense (k−1)-subunit (CLIQUE's
        candidate pruning).  Only meaningful for the prefix join.
    mdl_prune:
        Apply CLIQUE's MDL-based subspace pruning after each level (the
        paper disables this in its comparisons to preserve quality).
    chunk_records / tau / max_dimensionality:
        As in :class:`MafiaParams`.
    """

    bins: int | tuple[int, ...] = 10
    threshold: float = 0.01
    modified_join: bool = False
    apriori_prune: bool = True
    mdl_prune: bool = False
    chunk_records: int = 50_000
    tau: int = 64
    max_dimensionality: int = 64

    def __post_init__(self) -> None:
        if isinstance(self.bins, int):
            if self.bins <= 0:
                raise ParameterError(f"bins must be positive, got {self.bins!r}")
        else:
            bins = tuple(self.bins)
            if not bins or any((not isinstance(b, int)) or b <= 0 for b in bins):
                raise ParameterError(f"bins must be positive ints, got {self.bins!r}")
            object.__setattr__(self, "bins", bins)
        if not 0.0 < self.threshold < 1.0:
            raise ParameterError(
                f"threshold must be a fraction in (0, 1), got {self.threshold!r}")
        if self.chunk_records <= 0:
            raise ParameterError(
                f"chunk_records must be positive, got {self.chunk_records!r}")
        if self.tau < 0:
            raise ParameterError(f"tau must be >= 0, got {self.tau!r}")
        if self.max_dimensionality <= 0:
            raise ParameterError(
                f"max_dimensionality must be positive, got {self.max_dimensionality!r}")

    def bins_for(self, d: int) -> tuple[int, ...]:
        """Per-dimension bin counts for a ``d``-dimensional data set."""
        if isinstance(self.bins, int):
            return (self.bins,) * d
        if len(self.bins) != d:
            raise ParameterError(
                f"bins has {len(self.bins)} entries but data has {d} dimensions")
        return self.bins

    def with_(self, **changes: Any) -> "CliqueParams":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)
