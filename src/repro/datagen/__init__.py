"""Synthetic data generation: the paper's §5.1 generator (unit-cube
coverage, union-of-box cluster shapes, 10 % noise), an inversive
congruential generator built from scratch, and surrogates for the
paper's three real-world data sets."""

from .generator import SCALE, SyntheticDataset, generate
from .icg import DEFAULT_MODULUS, ICG, icg_entropy, np_rng
from .real import dax_like, eachmovie_like, ionosphere_like
from .stream import generate_to_file
from .spec import Box, ClusterSpec, Interval

__all__ = [
    "Box",
    "ClusterSpec",
    "DEFAULT_MODULUS",
    "ICG",
    "Interval",
    "SCALE",
    "SyntheticDataset",
    "dax_like",
    "eachmovie_like",
    "generate",
    "generate_to_file",
    "icg_entropy",
    "ionosphere_like",
    "np_rng",
]
