"""Synthetic data generator (paper §5.1).

Reproduces the paper's generator faithfully:

* the user specifies cluster extents per subspace dimension (arbitrary
  union-of-box shapes);
* cluster dimensions are scaled to ``[0, 100]`` and points are placed so
  that **each unit cube of the cluster region contains at least one
  point** (when the region has no more unit cubes than points — the
  paper's guarantee is only satisfiable in that regime), the rest falling
  uniformly inside the region;
* values are scaled back to the user's attribute ranges;
* non-cluster dimensions take values uniform over their full domain;
* an additional ``noise_fraction`` (paper: 10 %) of records is drawn
  uniform in *all* dimensions;
* record order is randomly permuted.

Randomness comes from a numpy generator seeded through the from-scratch
inversive congruential generator (:mod:`repro.datagen.icg`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import DataError, ParameterError
from .icg import np_rng
from .spec import ClusterSpec, Interval

#: scaled space the paper places cluster points in
SCALE = 100.0
#: refuse to enumerate more unit cubes than this per cluster
MAX_COVER_CUBES = 2_000_000


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated data set plus its ground truth."""

    records: np.ndarray              # (n_total, d) float64
    labels: np.ndarray               # (n_total,) int: cluster index or -1
    clusters: tuple[ClusterSpec, ...]
    domains: tuple[Interval, ...]
    n_noise: int

    @property
    def n_records(self) -> int:
        return int(self.records.shape[0])

    @property
    def n_dims(self) -> int:
        return int(self.records.shape[1])

    def cluster_records(self, index: int) -> np.ndarray:
        """The records generated for cluster ``index``."""
        return self.records[self.labels == index]


def _scale_to_unit_grid(box, dims, domains):
    """Map a box from attribute units into the [0, SCALE] space."""
    scaled = []
    for (lo, hi), dim in zip(box, dims):
        dlo, dhi = domains[dim]
        width = dhi - dlo
        scaled.append(((lo - dlo) / width * SCALE, (hi - dlo) / width * SCALE))
    return scaled


def _cover_cube_counts(scaled_box) -> tuple[list[np.ndarray], int]:
    """Integer unit-cube index ranges overlapping a scaled box, and the
    total cube count."""
    axes = []
    total = 1
    for lo, hi in scaled_box:
        first = int(np.floor(lo))
        last = int(np.ceil(hi))  # cubes [first, last)
        axes.append(np.arange(first, max(last, first + 1)))
        total *= len(axes[-1])
    return axes, total


def _points_in_box(rng, scaled_box, n, ensure_coverage):
    """``n`` points inside one scaled box, covering each unit cube with at
    least one point when feasible.  Returns an ``(n, k)`` array."""
    k = len(scaled_box)
    if n <= 0:
        return np.empty((0, k))
    points = []
    remaining = n
    if ensure_coverage:
        axes, n_cubes = _cover_cube_counts(scaled_box)
        if 0 < n_cubes <= min(n, MAX_COVER_CUBES):
            mesh = np.meshgrid(*axes, indexing="ij")
            corners = np.stack([m.ravel() for m in mesh], axis=1).astype(np.float64)
            lo = np.array([b[0] for b in scaled_box])
            hi = np.array([b[1] for b in scaled_box])
            cube_lo = np.maximum(corners, lo)
            cube_hi = np.minimum(corners + 1.0, hi)
            keep = np.all(cube_hi > cube_lo, axis=1)
            cube_lo, cube_hi = cube_lo[keep], cube_hi[keep]
            u = rng.random(cube_lo.shape)
            points.append(cube_lo + u * (cube_hi - cube_lo))
            remaining = n - len(cube_lo)
    if remaining > 0:
        lo = np.array([b[0] for b in scaled_box])
        hi = np.array([b[1] for b in scaled_box])
        points.append(lo + rng.random((remaining, k)) * (hi - lo))
    out = np.concatenate(points, axis=0)
    if len(out) > n:  # coverage used more points than allocated
        out = out[rng.permutation(len(out))[:n]]
    return out


def _allocate(total: int, weights: np.ndarray) -> np.ndarray:
    """Split ``total`` into integer shares proportional to ``weights``."""
    shares = np.floor(total * weights / weights.sum()).astype(int)
    for i in range(total - int(shares.sum())):
        shares[i % len(shares)] += 1
    return shares


def generate(
    n_records: int,
    n_dims: int,
    clusters: Sequence[ClusterSpec] = (),
    *,
    domains: Sequence[Interval] | None = None,
    noise_fraction: float = 0.10,
    seed: int = 0,
    shuffle: bool = True,
    ensure_coverage: bool = True,
) -> SyntheticDataset:
    """Generate a synthetic data set per §5.1.

    ``n_records`` cluster records are split across ``clusters`` by their
    weights; ``noise_fraction * n_records`` additional uniform noise
    records are appended; rows are then permuted.  With no clusters, all
    records are uniform background (label -1).
    """
    if n_records < 0:
        raise ParameterError(f"n_records must be >= 0, got {n_records}")
    if n_dims <= 0:
        raise ParameterError(f"n_dims must be positive, got {n_dims}")
    if not 0.0 <= noise_fraction <= 1.0:
        raise ParameterError(
            f"noise_fraction must be in [0, 1], got {noise_fraction}")
    if domains is None:
        domains = tuple((0.0, 100.0) for _ in range(n_dims))
    else:
        domains = tuple((float(lo), float(hi)) for lo, hi in domains)
        if len(domains) != n_dims:
            raise ParameterError(
                f"{len(domains)} domains given for {n_dims} dimensions")
        for lo, hi in domains:
            if not hi > lo:
                raise ParameterError(f"empty domain [{lo}, {hi})")
    clusters = tuple(clusters)
    for spec in clusters:
        if spec.dims and spec.dims[-1] >= n_dims:
            raise DataError(
                f"cluster dims {spec.dims} exceed data dimensionality {n_dims}")
        for box in spec.boxes:
            for (lo, hi), dim in zip(box, spec.dims):
                dlo, dhi = domains[dim]
                if lo < dlo or hi > dhi:
                    raise DataError(
                        f"cluster extent [{lo}, {hi}) outside domain "
                        f"[{dlo}, {dhi}) of dimension {dim}")

    rng = np_rng(seed)
    dom_lo = np.array([lo for lo, _ in domains])
    dom_hi = np.array([hi for _, hi in domains])

    blocks: list[np.ndarray] = []
    labels: list[np.ndarray] = []

    if clusters and n_records > 0:
        weights = np.array([spec.weight for spec in clusters])
        shares = _allocate(n_records, weights)
        for index, (spec, share) in enumerate(zip(clusters, shares)):
            if share == 0:
                continue
            volumes = spec.box_volumes()
            box_shares = _allocate(int(share), volumes)
            sub_points = []
            for box, box_share in zip(spec.boxes, box_shares):
                if box_share == 0:
                    continue
                scaled_box = _scale_to_unit_grid(box, spec.dims, domains)
                pts = _points_in_box(rng, scaled_box, int(box_share),
                                     ensure_coverage)
                sub_points.append(pts)
            scaled = np.concatenate(sub_points, axis=0)
            block = dom_lo + rng.random((len(scaled), n_dims)) * (dom_hi - dom_lo)
            for j, dim in enumerate(spec.dims):
                lo, width = dom_lo[dim], dom_hi[dim] - dom_lo[dim]
                block[:, dim] = lo + scaled[:, j] / SCALE * width
            blocks.append(block)
            labels.append(np.full(len(block), index, dtype=np.int64))
    elif n_records > 0:
        block = dom_lo + rng.random((n_records, n_dims)) * (dom_hi - dom_lo)
        blocks.append(block)
        labels.append(np.full(n_records, -1, dtype=np.int64))

    n_noise = int(round(noise_fraction * n_records))
    if n_noise > 0:
        noise = dom_lo + rng.random((n_noise, n_dims)) * (dom_hi - dom_lo)
        blocks.append(noise)
        labels.append(np.full(n_noise, -1, dtype=np.int64))

    if blocks:
        records = np.concatenate(blocks, axis=0)
        label_arr = np.concatenate(labels)
    else:
        records = np.empty((0, n_dims))
        label_arr = np.empty(0, dtype=np.int64)

    if shuffle and len(records) > 1:
        order = rng.permutation(len(records))
        records, label_arr = records[order], label_arr[order]

    return SyntheticDataset(records=records, labels=label_arr,
                            clusters=clusters, domains=domains,
                            n_noise=n_noise)
