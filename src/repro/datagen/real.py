"""Surrogates for the paper's three real-world data sets.

The originals (DAX one-day-ahead panel, UCI Ionosphere, DEC EachMovie)
are not redistributable / not fetchable offline, so each is replaced by
a synthetic generator that reproduces the *structure the paper's results
depend on* (see DESIGN.md §2).

The key device is the **partial-participation regime**: a regime ties a
set of ``k`` dimensions to narrow value bands, but each member record
participates in all of them *except a random ``drop``-subset*.  A
specific ``l``-subset of the regime's dimensions then has expected count
``size * C(k-l, drop) / C(k, drop)`` — a sharp staircase over ``l`` that
hits zero for ``l > k - drop``.  This is exactly how partially
correlated real data produces many *maximal* low-dimensional clusters
(dense triples of indicators that never co-occur as quadruples), the
behaviour behind Table 4's per-dimensionality cluster counts.

Regime member sets are kept **disjoint** so regimes never interact
(overlapping regimes breed combinatorially many cross-regime dense
subsets), and value bands are aligned to the adaptive grid's window
pitch so bin widths — and hence the α·N·a/D thresholds — are exact.
Each surrogate therefore ships a companion ``*_params()`` helper with
the grid geometry its margins were engineered for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..params import MafiaParams
from .icg import np_rng


@dataclass(frozen=True)
class Regime:
    """One partial-participation regime (see module docstring)."""

    dims: tuple[int, ...]
    centers: tuple[float, ...]
    width: float
    members: np.ndarray          # record indices
    drop: int                    # dims dropped per member

    @property
    def die_level(self) -> int:
        """Highest dimensionality with any joint members: subsets larger
        than ``k - drop`` are empty."""
        return len(self.dims) - self.drop


def apply_regime(rng: np.random.Generator, records: np.ndarray,
                 regime: Regime) -> None:
    """Write the regime's bands into its members' records, each member
    skipping a uniformly random ``drop``-subset of the dims."""
    k = len(regime.dims)
    n = len(regime.members)
    if n == 0:
        return
    order = np.argsort(rng.random((n, k)), axis=1)
    participate = order >= regime.drop     # drop the `drop` smallest ranks
    for j, dim in enumerate(regime.dims):
        rows = regime.members[participate[:, j]]
        lo = regime.centers[j] - regime.width / 2.0
        records[rows, dim] = lo + rng.random(len(rows)) * regime.width


def _partition_members(rng: np.random.Generator, n_records: int,
                       sizes: list[int]) -> list[np.ndarray]:
    """Split a random permutation of all records into disjoint member
    sets of the requested sizes."""
    if sum(sizes) > n_records:
        raise ParameterError(
            f"regimes need {sum(sizes)} members, only {n_records} records")
    perm = rng.permutation(n_records)
    out, at = [], 0
    for s in sizes:
        out.append(perm[at:at + s])
        at += s
    return out


# --------------------------------------------------------------------------
# DAX (Table 4)


def dax_params() -> tuple[MafiaParams, np.ndarray]:
    """The (MafiaParams, domains) :func:`dax_like` is engineered for:
    α = 2 as in §5.9(1), 200 fine bins over [0, 100) windowed in pairs —
    a 1.0-wide window pitch the regime bands align to."""
    params = MafiaParams(alpha=2.0, fine_bins=200, window_size=2,
                         chunk_records=3000)
    return params, np.array([[0.0, 100.0]] * 22)


def dax_like(n_records: int = 2757, n_dims: int = 22,
             seed: int = 1998) -> np.ndarray:
    """Synthetic DAX-style indicator panel (22 dims, 2757 records).

    Five disjoint market regimes with staircase participation produce
    maximal clusters at dimensionalities 3-6 whose counts decrease with
    the dimensionality — Table 4's shape under α = 2 (run with
    :func:`dax_params`).
    """
    if n_records < 2000 or n_dims < 12:
        raise ParameterError(
            "dax_like needs n_records >= 2000 and n_dims >= 12")
    rng = np_rng(seed)
    records = rng.random((n_records, n_dims)) * 100.0

    scale = n_records / 2757.0
    # (k, drop, size): die level = k - drop; expected count of an
    # l-subset is size * C(k-l, drop) / C(k, drop).  Band width 2.0 on
    # the 1.0 window pitch gives bin threshold 2*N*2/100 = 0.04*N = 110.
    plans = [
        (4, 1, int(572 * scale)),   # die@3: 143 per triple, 4 clusters
        (4, 1, int(572 * scale)),   # die@3: 4 more
        (5, 1, int(715 * scale)),   # die@4: 143 per quad, 5 clusters
        (5, 0, int(160 * scale)),   # die@5: one 5-d cluster
        (6, 0, int(160 * scale)),   # die@6: one 6-d cluster
    ]
    members = _partition_members(rng, n_records, [s for _, _, s in plans])
    # regimes may reuse dimensions (members are disjoint) but two bands
    # in one dimension must stay >= 4 apart or the adaptive grid merges
    # them into one wide bin, inflating its threshold past the counts
    used_centers: dict[int, list[float]] = {}

    def pick_center(dim: int) -> float:
        for _ in range(200):
            c = float(rng.choice(np.arange(6, 48) * 2))
            if all(abs(c - other) >= 4.0 for other in used_centers.get(dim, [])):
                used_centers.setdefault(dim, []).append(c)
                return c
        raise ParameterError(f"cannot place a band in dimension {dim}")

    for (k, drop, _size), member in zip(plans, members):
        dims = np.sort(rng.choice(n_dims, size=k, replace=False))
        centers = tuple(pick_center(int(d)) for d in dims)
        apply_regime(rng, records, Regime(
            dims=tuple(int(d) for d in dims), centers=centers,
            width=2.0, members=member, drop=drop))
    return np.clip(records, 0.0, 99.999)


# --------------------------------------------------------------------------
# Ionosphere (§5.9(2))


def ionosphere_params(alpha: float = 2.0) -> tuple[MafiaParams, np.ndarray]:
    """The (MafiaParams, domains) :func:`ionosphere_like` is engineered
    for: 60 fine bins over [-1, 1) windowed in pairs — a window pitch of
    1/30 of the domain, giving two-window bins of 1/15."""
    params = MafiaParams(alpha=alpha, fine_bins=60, window_size=2,
                         chunk_records=400)
    return params, np.array([[-1.0, 1.0]] * 34)


def ionosphere_like(n_records: int = 351, n_dims: int = 34,
                    seed: int = 1989) -> np.ndarray:
    """Synthetic ionosphere-style radar returns (34 dims, 351 records).

    One dominant "good return" mode holds 60 % of records in a tight
    3-d band (dense at any reasonable α); eleven weak pulse modes sized
    between the α = 2 and α = 3 thresholds occupy 3-d and 4-d bands.
    Run with :func:`ionosphere_params`: at α = 2 pMAFIA reports many 3-d
    clusters plus several 4-d ones, at α = 3 exactly one 3-d cluster —
    the §5.9(2) behaviour.
    """
    if n_records < 200 or n_dims < 24:
        raise ParameterError(
            "ionosphere_like needs n_records >= 200, n_dims >= 24")
    rng = np_rng(seed)
    records = rng.random((n_records, n_dims)) * 2.0 - 1.0

    window = 2.0 / 30.0          # ionosphere_params window pitch
    bin_width = 2 * window       # weak bands fill two windows exactly

    def aligned_center(idx: int) -> float:
        return -1.0 + (2 * idx + 2) * window  # centre of windows [2i, 2i+2)

    strong_dims = (0, 2, 4)
    n_strong = int(0.6 * n_records)
    apply_regime(rng, records, Regime(
        dims=strong_dims,
        centers=(aligned_center(5), aligned_center(12), aligned_center(20)),
        width=bin_width, members=np.arange(n_strong), drop=0))

    # weak modes: count ~ 0.16*N sits between T(alpha=2) = 2*N/15 and
    # T(alpha=3) = N/5 for a two-window bin.
    weak_size = int(round(0.16 * n_records))
    weak_plans = [3] * 7 + [4] * 2   # 29 dims, all disjoint
    pool = rng.permutation([d for d in range(n_dims)
                            if d not in strong_dims])
    # weak members avoid the strong mode's records (mixing would leak
    # marginal strong+weak 4-d cells at alpha = 2); weak records belong
    # to several modes, which is safe because mode dims are disjoint
    weak_pool = np.arange(n_strong, n_records)
    at = 0
    for k in weak_plans:
        dims = np.sort(pool[at:at + k])
        at += k
        centers = tuple(aligned_center(int(i))
                        for i in rng.integers(0, 14, size=k))
        members = weak_pool[rng.choice(len(weak_pool), size=weak_size,
                                       replace=False)]
        apply_regime(rng, records, Regime(
            dims=tuple(int(d) for d in dims), centers=centers,
            width=bin_width, members=members, drop=0))
    return np.clip(records, -1.0, 0.999)


# --------------------------------------------------------------------------
# EachMovie (Table 5, §5.9(3))


def eachmovie_params(n_records: int = 300_000
                     ) -> tuple[MafiaParams, np.ndarray | None]:
    """The (MafiaParams, domains) :func:`eachmovie_like` is engineered
    for (domains are data-derived: None)."""
    params = MafiaParams(alpha=1.5, fine_bins=200, window_size=2,
                         chunk_records=max(10_000, n_records // 10))
    return params, None


def eachmovie_like(n_records: int = 300_000, n_users: int = 7292,
                   n_movies: int = 1628, seed: int = 1997) -> np.ndarray:
    """Synthetic EachMovie-style rating log.

    Four columns per the paper: user-id, movie-id, score (0-1), weight
    (0-1).  Seven popularity blocks concentrate ~9 % of records each on
    tight (movie, score) or (user, movie) ranges, so pMAFIA finds
    exactly a handful of 2-dimensional clusters (§5.9.3) at any record
    count — the set scales for the Table 5 speedup runs.
    """
    if min(n_records, n_users, n_movies) <= 0:
        raise ParameterError("eachmovie_like sizes must be positive")
    if n_records < 1000:
        raise ParameterError("eachmovie_like needs n_records >= 1000")
    rng = np_rng(seed)
    user = rng.random(n_records) * n_users
    movie = rng.random(n_records) * n_movies
    score = rng.random(n_records)
    weight = rng.random(n_records)

    # (column-a, range-a, column-b, range-b, record fraction) — ranges
    # are fractions of the column domain and never overlap within a
    # column, so adaptive bins isolate each block.  A 4 %-wide bin has
    # threshold 1.5*N*0.04 = 0.06*N < 0.09*N block occupancy.
    blocks = [
        ("movie", (0.02, 0.06), "score", (0.82, 0.86), 0.09),
        ("movie", (0.10, 0.14), "score", (0.70, 0.74), 0.09),
        ("movie", (0.30, 0.34), "score", (0.06, 0.10), 0.09),
        ("user", (0.01, 0.05), "movie", (0.40, 0.44), 0.09),
        ("user", (0.20, 0.24), "movie", (0.60, 0.64), 0.09),
        ("user", (0.50, 0.54), "movie", (0.80, 0.84), 0.09),
        ("user", (0.70, 0.74), "movie", (0.90, 0.94), 0.09),
    ]
    columns = {"user": (user, n_users), "movie": (movie, n_movies),
               "score": (score, 1.0), "weight": (weight, 1.0)}
    row = 0
    for col_a, range_a, col_b, range_b, frac in blocks:
        count = int(frac * n_records)
        hi = min(row + count, n_records)
        for col, (lo, up) in ((col_a, range_a), (col_b, range_b)):
            values, domain = columns[col]
            values[row:hi] = (lo + rng.random(hi - row) * (up - lo)) * domain
        row = hi

    records = np.stack([user, movie, score, weight], axis=1)
    return records[rng.permutation(n_records)]
