"""Streaming synthetic data generation for massive data sets.

The paper's experiments reach 11.8 M records — more than comfortably
fits in memory alongside the clustering run.  :func:`generate_to_file`
produces the §5.1 workload directly into a binary record file in
bounded memory: each chunk draws its share of cluster and noise records
and is appended to the file, so peak memory is O(chunk), independent of
``n_records``.

Differences from the in-memory :func:`repro.datagen.generator.generate`
(documented, tested):

* points are placed uniformly at random inside each cluster's boxes —
  the per-unit-cube coverage guarantee needs a global view and is a
  validation device for small data, irrelevant at streaming scale where
  every unit cube receives points with overwhelming probability;
* records are shuffled within a chunk (noise and cluster records
  interleave); global order still carries no information the algorithm
  uses, as pMAFIA is order-independent (tested).
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from ..errors import ParameterError
from ..io.records import RecordFile, RecordFileWriter
from .generator import _allocate
from .icg import np_rng
from .spec import ClusterSpec, Interval


def _chunk_records(rng: np.random.Generator, size: int, n_dims: int,
                   clusters: tuple[ClusterSpec, ...],
                   shares: np.ndarray, n_noise: int,
                   dom_lo: np.ndarray, dom_hi: np.ndarray) -> np.ndarray:
    """One chunk: cluster shares plus noise, shuffled."""
    blocks = []
    for spec, share in zip(clusters, shares):
        if share == 0:
            continue
        block = dom_lo + rng.random((share, n_dims)) * (dom_hi - dom_lo)
        volumes = spec.box_volumes()
        box_shares = _allocate(int(share), volumes)
        at = 0
        for box, box_share in zip(spec.boxes, box_shares):
            if box_share == 0:
                continue
            rows = slice(at, at + box_share)
            for (lo, hi), dim in zip(box, spec.dims):
                block[rows, dim] = lo + rng.random(box_share) * (hi - lo)
            at += box_share
        blocks.append(block)
    if n_noise > 0:
        blocks.append(dom_lo + rng.random((n_noise, n_dims))
                      * (dom_hi - dom_lo))
    if not blocks:
        return np.empty((0, n_dims))
    chunk = np.concatenate(blocks, axis=0)
    return chunk[rng.permutation(len(chunk))]


def generate_to_file(
    path: str | os.PathLike,
    n_records: int,
    n_dims: int,
    clusters: Sequence[ClusterSpec] = (),
    *,
    domains: Sequence[Interval] | None = None,
    noise_fraction: float = 0.10,
    seed: int = 0,
    chunk_records: int = 100_000,
    dtype: str = "<f8",
) -> RecordFile:
    """Stream a §5.1-style data set into a record file in O(chunk)
    memory.  Semantics follow :func:`repro.datagen.generator.generate`
    (``n_records`` cluster records split by weight, plus
    ``noise_fraction·n_records`` uniform noise)."""
    if n_records < 0:
        raise ParameterError(f"n_records must be >= 0, got {n_records}")
    if n_dims <= 0:
        raise ParameterError(f"n_dims must be positive, got {n_dims}")
    if chunk_records <= 0:
        raise ParameterError(
            f"chunk_records must be positive, got {chunk_records}")
    if not 0.0 <= noise_fraction <= 1.0:
        raise ParameterError(
            f"noise_fraction must be in [0, 1], got {noise_fraction}")
    if domains is None:
        domains = tuple((0.0, 100.0) for _ in range(n_dims))
    else:
        domains = tuple((float(lo), float(hi)) for lo, hi in domains)
        if len(domains) != n_dims:
            raise ParameterError(
                f"{len(domains)} domains given for {n_dims} dimensions")
    clusters = tuple(clusters)
    for spec in clusters:
        if spec.dims and spec.dims[-1] >= n_dims:
            raise ParameterError(
                f"cluster dims {spec.dims} exceed dimensionality {n_dims}")

    rng = np_rng(seed)
    dom_lo = np.array([lo for lo, _ in domains])
    dom_hi = np.array([hi for _, hi in domains])
    total_noise = int(round(noise_fraction * n_records))
    total = n_records + total_noise

    weights = (np.array([s.weight for s in clusters])
               if clusters else np.array([]))
    cluster_totals = (_allocate(n_records, weights)
                      if clusters else np.array([], dtype=int))
    if not clusters and n_records:
        # no clusters: all records are uniform background
        total_noise += n_records
        cluster_totals = np.array([], dtype=int)

    written_cluster = np.zeros(len(clusters), dtype=int)
    written_noise = 0
    written = 0

    with RecordFileWriter(path, n_dims=n_dims, dtype=dtype) as writer:
        while written < total:
            size = min(chunk_records, total - written)
            frac_after = (written + size) / total
            # keep every stream's cumulative share proportional
            shares = np.minimum(
                cluster_totals,
                np.ceil(cluster_totals * frac_after).astype(int)
            ) - written_cluster
            noise_target = min(total_noise,
                               int(np.ceil(total_noise * frac_after)))
            n_noise = noise_target - written_noise
            # trim rounding overshoot to the chunk size
            while shares.sum() + n_noise > size:
                if n_noise > 0:
                    n_noise -= 1
                else:
                    shares[int(np.argmax(shares))] -= 1
            # top up rounding undershoot from the largest remaining pool
            while shares.sum() + n_noise < size:
                remaining = cluster_totals - written_cluster - shares
                if remaining.size and remaining.max() > 0:
                    shares[int(np.argmax(remaining))] += 1
                else:
                    n_noise += 1
            chunk = _chunk_records(rng, size, n_dims, clusters, shares,
                                   n_noise, dom_lo, dom_hi)
            writer.append(chunk)
            written_cluster += shares
            written_noise += n_noise
            written += size
        return writer.close()
