"""Inversive congruential pseudo-random number generator (ICG).

The paper (§5.1) uses an ICG [Eichenauer-Herrmann & Grothe] for its data
generator "as long sequences of Unix random number generators (LCGs)
exhibit regular behavior by falling into specific planes".  This module
implements the classic prime-modulus ICG from scratch:

    x_{n+1} = (a * inv(x_n) + b) mod p          with inv(0) := 0

where ``inv`` is the modular inverse in GF(p).  With the standard
parameters ``p = 2^31 - 1, a = 1, b = 1`` the sequence has full period p
and provably avoids the lattice (hyperplane) structure of LCGs.

A pure-Python ICG produces ~1e5 numbers/second — fine for validation,
far too slow for the paper's multi-million-record data sets — so
:func:`np_rng` derives a fast numpy PCG64 generator whose seed entropy
comes from an ICG stream (documented substitution; see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ParameterError

#: default modulus: the Mersenne prime 2^31 - 1
DEFAULT_MODULUS = 2**31 - 1
DEFAULT_A = 1
DEFAULT_B = 1


class ICG:
    """Prime-modulus inversive congruential generator.

    Parameters
    ----------
    seed:
        Initial state in ``[0, modulus)``.
    a, b, modulus:
        Generator parameters; ``modulus`` must be prime (not verified for
        speed — the default is).  ``a`` must be non-zero mod ``modulus``.
    """

    def __init__(self, seed: int = 0, a: int = DEFAULT_A, b: int = DEFAULT_B,
                 modulus: int = DEFAULT_MODULUS) -> None:
        if modulus < 3:
            raise ParameterError(f"modulus must be >= 3, got {modulus}")
        if not 0 <= seed < modulus:
            raise ParameterError(f"seed must be in [0, {modulus}), got {seed}")
        if a % modulus == 0:
            raise ParameterError("multiplier a must be non-zero mod modulus")
        self.modulus = modulus
        self.a = a % modulus
        self.b = b % modulus
        self.state = seed

    def _inv(self, x: int) -> int:
        """Modular inverse in GF(modulus), with inv(0) defined as 0."""
        if x == 0:
            return 0
        # Fermat: x^(p-2) mod p; pow() is the fastest pure-Python route.
        return pow(x, self.modulus - 2, self.modulus)

    def next_int(self) -> int:
        """Advance one step; returns the new state in ``[0, modulus)``."""
        self.state = (self.a * self._inv(self.state) + self.b) % self.modulus
        return self.state

    def random(self) -> float:
        """One float uniform on ``[0, 1)``."""
        return self.next_int() / self.modulus

    def randoms(self, n: int) -> np.ndarray:
        """``n`` uniforms on ``[0, 1)`` as a float64 array."""
        if n < 0:
            raise ParameterError(f"n must be >= 0, got {n}")
        return np.array([self.random() for _ in range(n)], dtype=np.float64)

    def integers(self, n: int, high: int) -> np.ndarray:
        """``n`` integers uniform on ``[0, high)`` (by rejection-free
        scaling — bias is < high/modulus, negligible for high << 2^31)."""
        if high <= 0:
            raise ParameterError(f"high must be positive, got {high}")
        return (self.randoms(n) * high).astype(np.int64)

    def __iter__(self) -> Iterator[float]:
        while True:
            yield self.random()

    def spawn(self, n: int) -> list["ICG"]:
        """``n`` decorrelated child streams (distinct increments ``b`` and
        seeds drawn from this stream)."""
        children = []
        for i in range(n):
            seed = self.next_int()
            b = (self.b + 2 * i + 1) % self.modulus or 1
            children.append(ICG(seed=seed, a=self.a, b=b, modulus=self.modulus))
        return children


def icg_entropy(seed: int, words: int = 4) -> list[int]:
    """Derive ``words`` 31-bit entropy words from an ICG stream."""
    gen = ICG(seed=seed % DEFAULT_MODULUS)
    # discard a short warm-up so nearby seeds decorrelate
    for _ in range(8):
        gen.next_int()
    return [gen.next_int() for _ in range(words)]


def np_rng(seed: int) -> np.random.Generator:
    """A fast numpy generator seeded with ICG-derived entropy.

    Bulk data generation uses this (PCG64 has no LCG hyperplane
    structure either); the ICG itself remains available for exact
    paper-faithful small-scale generation.
    """
    return np.random.default_rng(icg_entropy(seed))
