"""Cluster specifications for the synthetic data generator.

The paper's generator "takes from the user the extents of the cluster in
every dimension of the subspace in which it is embedded" and supports
"arbitrary shapes instead of just hyper-rectangular regions" (§5.1).  A
:class:`ClusterSpec` is a union of axis-aligned boxes in one subspace —
unions of boxes approximate arbitrary shapes to grid resolution, which is
all a grid-based algorithm can distinguish anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import DataError
from ..types import Subspace

Interval = tuple[float, float]
Box = tuple[Interval, ...]


@dataclass(frozen=True)
class ClusterSpec:
    """One embedded cluster: a union of boxes in a subspace.

    Attributes
    ----------
    dims:
        The data dimensions the cluster is defined in (sorted, unique).
    boxes:
        One or more boxes; each box gives an ``(low, high)`` extent per
        dimension of ``dims`` (in raw attribute units).
    weight:
        Relative share of the cluster records this cluster receives when
        several clusters split a record budget.
    name:
        Optional label used in reports.
    """

    dims: tuple[int, ...]
    boxes: tuple[Box, ...]
    weight: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        subspace = Subspace(tuple(self.dims))  # validates sorted/unique
        object.__setattr__(self, "dims", subspace.dims)
        if not self.boxes:
            raise DataError("a cluster needs at least one box")
        normalised = []
        for box in self.boxes:
            if len(box) != len(self.dims):
                raise DataError(
                    f"box {box} has {len(box)} extents for "
                    f"{len(self.dims)} cluster dimensions")
            intervals = tuple((float(lo), float(hi)) for lo, hi in box)
            for lo, hi in intervals:
                if not hi > lo:
                    raise DataError(f"empty cluster extent [{lo}, {hi})")
            normalised.append(intervals)
        object.__setattr__(self, "boxes", tuple(normalised))
        if self.weight <= 0:
            raise DataError(f"weight must be positive, got {self.weight}")

    @classmethod
    def box(cls, dims: Sequence[int], extents: Sequence[Interval],
            weight: float = 1.0, name: str = "") -> "ClusterSpec":
        """Convenience constructor for a single hyper-rectangle."""
        return cls(dims=tuple(dims), boxes=(tuple(extents),),
                   weight=weight, name=name)

    @property
    def subspace(self) -> Subspace:
        return Subspace(self.dims)

    @property
    def dimensionality(self) -> int:
        return len(self.dims)

    def box_volumes(self) -> np.ndarray:
        """Volume of each box (attribute units)."""
        return np.array([
            float(np.prod([hi - lo for lo, hi in box])) for box in self.boxes
        ])

    def contains(self, values: np.ndarray) -> np.ndarray:
        """Membership mask for an ``(n, k)`` array of subspace values
        (columns follow ``dims``)."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or values.shape[1] != len(self.dims):
            raise DataError(
                f"values shape {values.shape} does not match "
                f"{len(self.dims)} cluster dimensions")
        mask = np.zeros(len(values), dtype=bool)
        for box in self.boxes:
            inside = np.ones(len(values), dtype=bool)
            for j, (lo, hi) in enumerate(box):
                inside &= (values[:, j] >= lo) & (values[:, j] < hi)
            mask |= inside
        return mask

    def contains_records(self, records: np.ndarray) -> np.ndarray:
        """Membership mask for full-dimensional ``(n, d)`` records."""
        records = np.asarray(records, dtype=np.float64)
        return self.contains(records[:, list(self.dims)])
