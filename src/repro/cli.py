"""Command-line interface.

Three subcommands cover the workflow a downstream user needs:

``pmafia generate``
    Build a synthetic data set (paper §5.1 generator) into a binary
    record file; cluster specs as ``dim:lo:hi`` triples, ``--cluster``
    repeatable.
``pmafia run``
    Cluster a record file (or .npy / CSV) with (p)MAFIA or the CLIQUE
    baseline, serially or on an SPMD backend; results print as text or
    JSON.
``pmafia info``
    Inspect a record file's header.
``pmafia score``
    Serve cluster membership for a record stream against a finished
    result (or a pre-compiled model): which clusters each record
    belongs to, in which subspaces, at batch speed through the
    compiled DNF engine (``docs/SERVING.md``).
``pmafia stream``
    Replay a record file as ordered deltas through the incremental
    streaming engine (``docs/STREAMING.md``): sliding-window ingest,
    periodic snapshots, optional spill/resume.  Every snapshot is
    bit-identical to a cold ``pmafia run`` over the live window.

Exposed as the ``pmafia`` console script and ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from . import __version__
from .core.export import result_to_json
from .core.mafia import mafia, pmafia, pmafia_resumable, pmafia_supervised
from .errors import ReproError
from .datagen.generator import generate
from .datagen.spec import ClusterSpec
from .io.records import RecordFile, read_header, write_records
from .obs import as_run_obs, write_chrome_trace, write_metrics_snapshot
from .obs.manifest import MANIFEST_NAME, build_manifest, write_manifest
from .params import JOIN_STRATEGIES, CliqueParams, MafiaParams


def _parse_cluster(text: str) -> ClusterSpec:
    """Parse ``dim:lo:hi[,dim:lo:hi...]`` into a ClusterSpec box."""
    dims: list[int] = []
    extents: list[tuple[float, float]] = []
    for part in text.split(","):
        pieces = part.split(":")
        if len(pieces) != 3:
            raise argparse.ArgumentTypeError(
                f"cluster extent {part!r} is not dim:lo:hi")
        dims.append(int(pieces[0]))
        extents.append((float(pieces[1]), float(pieces[2])))
    order = sorted(range(len(dims)), key=lambda i: dims[i])
    return ClusterSpec.box([dims[i] for i in order],
                           [extents[i] for i in order])


def _load_records(path: Path) -> np.ndarray:
    """Read records from a pmafia record file, .npy array or CSV."""
    if path.suffix == ".npy":
        records = np.load(path)
    elif path.suffix in (".csv", ".txt"):
        records = np.loadtxt(path, delimiter="," if path.suffix == ".csv"
                             else None)
    else:
        return RecordFile(path).read_all()
    return np.atleast_2d(np.asarray(records, dtype=np.float64))


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate(args.records, args.dims, args.cluster or [],
                       noise_fraction=args.noise, seed=args.seed)
    write_records(args.output, dataset.records)
    print(f"wrote {dataset.n_records} records x {dataset.n_dims} dims "
          f"({dataset.n_noise} noise) to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    info = read_header(args.data)
    print(f"{info.path}: {info.n_records} records x {info.n_dims} dims, "
          f"dtype {info.dtype}, {info.data_nbytes / 1e6:.2f} MB")
    return 0


def _write_observability(args: argparse.Namespace, run: object,
                         result: object, nprocs: int) -> None:
    """Export the run's trace / metrics / manifest as requested by
    ``--trace-out`` / ``--metrics-out``."""
    if args.trace_out is None and args.metrics_out is None:
        return
    run_obs = as_run_obs(run)
    if run_obs is None:  # pragma: no cover - params force obs on
        raise ReproError("run produced no observability data")
    if args.trace_out is not None:
        write_chrome_trace(args.trace_out, run_obs.merged_spans())
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
    if args.metrics_out is not None:
        write_metrics_snapshot(args.metrics_out, run_obs)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    out = args.trace_out if args.trace_out is not None else args.metrics_out
    manifest = build_manifest(result, phases=run_obs.phase_seconds(),
                              nprocs=nprocs,
                              virtual_seconds=getattr(run, "makespan", 0.0),
                              join_strategies=run_obs.join_strategies())
    write_manifest(Path(out).parent / MANIFEST_NAME, manifest)


def _cmd_score(args: argparse.Namespace) -> int:
    import json as _json

    from .core.export import (model_from_dict, model_to_json,
                              result_from_dict)
    from .obs import RankObs, RunObs, serve_summary
    from .serve import ClusterServer

    try:
        payload = _json.loads(Path(args.model).read_text())
    except _json.JSONDecodeError as exc:
        raise ReproError(f"invalid model JSON: {exc}") from exc
    result = None
    if isinstance(payload, dict) \
            and payload.get("format") == "pmafia-compiled-model":
        model = model_from_dict(payload)
    else:
        result = result_from_dict(payload)
        model = result

    obs = None
    if args.trace_out is not None or args.metrics_out is not None:
        obs = RankObs(0, trace=args.trace_out is not None,
                      metrics=args.metrics_out is not None)
    server = ClusterServer(
        model, cache_size=0 if args.no_cache else args.cache_size,
        obs=obs)

    if args.export_model is not None:
        Path(args.export_model).write_text(
            model_to_json(server.model) + "\n")
        print(f"wrote compiled model to {args.export_model}",
              file=sys.stderr)

    if str(args.data) == "-":
        records = np.atleast_2d(
            np.loadtxt(sys.stdin, delimiter=",", ndmin=2))
    else:
        records = _load_records(Path(args.data))
    n = records.shape[0]

    counts = np.zeros(server.model.n_clusters, dtype=np.int64)
    matched = 0
    for start in range(0, n, args.batch):
        scores = server.score_batch(records[start:start + args.batch])
        counts += scores.counts()
        member_any = scores.membership.any(axis=1)
        matched += int(member_any.sum())
        if args.summary_only:
            continue
        for i in range(len(scores)):
            ids = scores.cluster_ids(i)
            if args.json:
                print(_json.dumps(
                    {"record": start + i, "clusters": ids,
                     "subspaces": [list(s) for s
                                   in scores.record_subspaces(i)]},
                    separators=(",", ":")))
            else:
                print(f"{start + i}\t"
                      f"{','.join(map(str, ids)) if ids else '-'}")

    stats = server.stats()
    summary = {
        "records": n, "matched": matched,
        "clusters": {str(c): int(counts[c])
                     for c in range(len(counts)) if counts[c]},
        "server": stats,
    }
    if args.json and args.summary_only:
        print(_json.dumps(summary, indent=2))
    else:
        cache = stats.get("cache") or {}
        print(f"scored {n} records: {matched} in >=1 cluster; "
              f"{stats['evaluations']} evaluations, "
              f"{cache.get('hits', 0)} cache hits",
              file=sys.stderr)

    if obs is not None:
        run_obs = RunObs(ranks=(obs.export(),))
        if args.trace_out is not None:
            write_chrome_trace(args.trace_out, run_obs.merged_spans())
            print(f"wrote trace to {args.trace_out}", file=sys.stderr)
        if args.metrics_out is not None:
            write_metrics_snapshot(args.metrics_out, run_obs)
            print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
        if result is not None:
            # only a full result carries the params/grid the manifest
            # describes; a bare compiled model does not
            out = (args.trace_out if args.trace_out is not None
                   else args.metrics_out)
            manifest = build_manifest(
                result, phases=run_obs.phase_seconds(),
                serve=serve_summary(run_obs))
            write_manifest(Path(out).parent / MANIFEST_NAME, manifest)
    return 0


def _scan_domains(path: Path) -> np.ndarray:
    """Per-dimension ``[lo, hi]`` over the whole file.

    The streaming session needs the value domains up front (they fix
    the fine-histogram bin scale for the session's lifetime), so the
    CLI makes the one design call a library caller would make
    explicitly: scan the replayed file once for its extents.  A true
    deployment would pass known schema domains instead.
    """
    if path.suffix in (".npy", ".csv", ".txt"):
        records = _load_records(path)
        return np.stack([records.min(axis=0), records.max(axis=0)],
                        axis=1)
    rf = RecordFile(path)
    lo = np.full(rf.n_dims, np.inf)
    hi = np.full(rf.n_dims, -np.inf)
    step = 262_144
    for start in range(0, rf.n_records, step):
        block = rf.read_block(start, min(start + step, rf.n_records))
        lo = np.minimum(lo, block.min(axis=0))
        hi = np.maximum(hi, block.max(axis=0))
    return np.stack([lo, hi], axis=1)


def _stream_rank(comm: object, cfg: dict) -> dict:
    """One rank of ``pmafia stream`` (module-level so the process
    backend can pickle it).  Every rank replays the same file; the
    session broadcasts each delta from root, so identical local reads
    only save wire traffic."""
    from .stream import (BlockDeltaSource, RecordDeltaSource,
                         StreamingSession)

    path = Path(cfg["path"])
    if path.suffix in (".npy", ".csv", ".txt"):
        source: object = BlockDeltaSource(_load_records(path),
                                          cfg["delta_records"])
    else:
        source = RecordDeltaSource(path, cfg["delta_records"])
    session = StreamingSession(
        cfg["params"], comm=comm, domains=cfg["domains"],
        window_records=cfg["window"],
        drift_threshold=cfg["drift_threshold"],
        spill_dir=cfg["spill_dir"], resume=cfg["resume"])
    result = None
    applied = 0
    for delta in source:
        if not session.ingest(delta.block, seq=delta.seq):
            continue  # already applied by a resumed session
        applied += 1
        if cfg["snapshot_every"] and applied % cfg["snapshot_every"] == 0:
            result = session.snapshot()
            if comm.rank == 0:
                print(f"delta {delta.seq}: {session.n_live} live "
                      f"records, {len(result.clusters)} cluster(s)",
                      file=sys.stderr)
    if session.n_live and (result is None
                           or cfg["snapshot_every"] == 0
                           or applied % cfg["snapshot_every"]):
        result = session.snapshot()
    obs = session.obs.export() if session.obs is not None else None
    session.close()
    return {"result": result, "obs": obs, "applied": applied,
            "last_seq": session.last_seq}


def _cmd_stream(args: argparse.Namespace) -> int:
    from .obs import RunObs
    from .parallel.spmd import run_spmd

    params = MafiaParams(alpha=args.alpha, beta=args.beta,
                         fine_bins=args.fine_bins,
                         window_size=args.merge_window,
                         chunk_records=args.chunk,
                         report=args.report,
                         join_strategy=args.join_strategy,
                         metrics=args.metrics_out is not None)
    cfg = {
        "path": str(args.data),
        "delta_records": args.delta_records,
        "window": args.window,
        "drift_threshold": args.drift_threshold,
        "snapshot_every": args.snapshot_every,
        "spill_dir": (None if args.spill_dir is None
                      else str(args.spill_dir)),
        "resume": args.resume,
        "params": params,
        "domains": _scan_domains(Path(args.data)),
    }
    ranks = run_spmd(_stream_rank, args.procs, backend=args.backend,
                     args=(cfg,))
    rank0 = ranks[0].value
    result = rank0["result"]
    if result is None:
        print("stream drained with an empty window; nothing to report",
              file=sys.stderr)
        return 0
    print(f"applied {rank0['applied']} delta(s) through "
          f"seq {rank0['last_seq']}", file=sys.stderr)
    if args.metrics_out is not None:
        exports = tuple(r.value["obs"] for r in ranks
                        if r.value["obs"] is not None)
        write_metrics_snapshot(args.metrics_out, RunObs(ranks=exports))
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    if args.json:
        print(result_to_json(result))
    else:
        print(result.summary())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.algorithm == "clique":
        params = CliqueParams(bins=args.bins, threshold=args.threshold,
                              chunk_records=args.chunk)
        from .clique.clique import clique, pclique
        if args.procs == 1:
            result = clique(_load_records(Path(args.data)), params)
        else:
            result = pclique(_load_records(Path(args.data)), args.procs,
                             params, backend=args.backend).result
    else:
        params = MafiaParams(alpha=args.alpha, beta=args.beta,
                             fine_bins=args.fine_bins,
                             window_size=args.window,
                             chunk_records=args.chunk,
                             report=args.report,
                             bin_cache=args.bin_cache,
                             join_strategy=args.join_strategy,
                             direct_mining=args.direct_mining,
                             direct_min_level=args.direct_min_level,
                             direct_max_subsets=args.direct_max_subsets,
                             direct_max_transactions=(
                                 args.direct_max_transactions),
                             prefetch=args.prefetch,
                             bitmap_index=args.bitmap_index,
                             bitmap_budget=args.bitmap_budget,
                             compute_threads=args.compute_threads,
                             rebalance=args.rebalance,
                             trace=args.trace_out is not None,
                             metrics=args.metrics_out is not None)
        data: object = Path(args.data)
        if Path(args.data).suffix in (".npy", ".csv", ".txt"):
            data = _load_records(Path(args.data))
        scenario = None
        if args.chaos_scenario is not None:
            from .gameday import load_scenario
            scenario = load_scenario(args.chaos_scenario)
            print(f"chaos scenario {scenario.name!r}: "
                  f"{scenario.description}", file=sys.stderr)
        run = None
        if scenario is not None:
            from dataclasses import replace as _dc_replace
            if scenario.params:
                params = _dc_replace(params, **scenario.params)
            if scenario.recovery == "supervised":
                run = pmafia_supervised(data, args.procs, params,
                                        checkpoint_dir=args.checkpoint_dir,
                                        collectives=args.collectives,
                                        resume=args.resume,
                                        recv_timeout=scenario.recv_timeout,
                                        retry=scenario.retry,
                                        faults=scenario.faults,
                                        policy=scenario.supervise)
            else:
                run = pmafia_resumable(
                    data, args.procs, params,
                    checkpoint_dir=args.checkpoint_dir,
                    backend=args.backend, collectives=args.collectives,
                    resume=args.resume,
                    recv_timeout=scenario.recv_timeout,
                    retry=scenario.retry, faults=scenario.faults,
                    max_restarts=(scenario.max_restarts
                                  if scenario.recovery == "restart" else 0))
            result = run.result
            report = getattr(run, "recovery", None)
            if report is not None and report.replacements:
                print(f"recovered from {report.replacements} rank "
                      f"loss(es); worst RTO {report.worst_rto:.2f}s",
                      file=sys.stderr)
        elif args.supervised:
            run = pmafia_supervised(data, args.procs, params,
                                    checkpoint_dir=args.checkpoint_dir,
                                    collectives=args.collectives,
                                    resume=args.resume)
            result = run.result
        elif args.checkpoint_dir is not None:
            run = pmafia_resumable(data, args.procs, params,
                                   checkpoint_dir=args.checkpoint_dir,
                                   backend=args.backend,
                                   collectives=args.collectives,
                                   resume=args.resume)
            result = run.result
        elif args.procs == 1:
            result = mafia(data, params)
        else:
            run = pmafia(data, args.procs, params,
                         backend=args.backend,
                         collectives=args.collectives)
            result = run.result
        _write_observability(args, run if run is not None else result,
                             result, args.procs)

    if args.verify:
        from .analysis.verify import verify_result
        source = (_load_records(Path(args.data))
                  if Path(args.data).suffix in (".npy", ".csv", ".txt")
                  else RecordFile(Path(args.data)))
        report = verify_result(result, source, chunk_records=args.chunk)

    if args.json:
        print(result_to_json(result))
    else:
        print(result.summary())
    if args.verify:
        print(report.summary())
        if not report.ok:
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pmafia",
        description="pMAFIA subspace clustering (ICPP 2000 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="create a synthetic record file")
    gen.add_argument("output", type=Path, help="record file to write")
    gen.add_argument("--records", type=int, default=100_000)
    gen.add_argument("--dims", type=int, default=10)
    gen.add_argument("--cluster", action="append", type=_parse_cluster,
                     metavar="d:lo:hi[,d:lo:hi...]",
                     help="one embedded cluster (repeatable)")
    gen.add_argument("--noise", type=float, default=0.10,
                     help="noise fraction (paper: 0.10)")
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="inspect a record file header")
    info.add_argument("data", type=Path)
    info.set_defaults(func=_cmd_info)

    score = sub.add_parser(
        "score", help="serve cluster membership for a record stream")
    score.add_argument("model", type=Path,
                       help="result JSON (pmafia run --json) or compiled "
                            "model JSON (pmafia-compiled-model)")
    score.add_argument("data",
                       help="record file (.bin), .npy array, CSV, or - "
                            "for CSV on stdin")
    score.add_argument("--batch", type=int, default=65_536,
                       help="records scored per batch")
    score.add_argument("--cache-size", type=int, default=65_536,
                       dest="cache_size",
                       help="LRU signature-cache entries")
    score.add_argument("--no-cache", action="store_true", dest="no_cache",
                       help="disable the signature cache (every batch "
                            "evaluates vectorized)")
    score.add_argument("--json", action="store_true",
                       help="emit JSON: one object per record (or the "
                            "whole summary with --summary-only)")
    score.add_argument("--summary-only", action="store_true",
                       dest="summary_only",
                       help="suppress per-record output; print only "
                            "per-cluster counts and server stats")
    score.add_argument("--export-model", type=Path, default=None,
                       dest="export_model", metavar="PATH",
                       help="also write the compiled model as versioned "
                            "JSON for faster future loads")
    score.add_argument("--trace-out", type=Path, default=None,
                       dest="trace_out", metavar="PATH",
                       help="write the serving session's score_batch "
                            "spans as Chrome trace_event JSON")
    score.add_argument("--metrics-out", type=Path, default=None,
                       dest="metrics_out", metavar="PATH",
                       help="write the serve.* metrics snapshot as JSON; "
                            "when the model input is a full result, a "
                            "run_manifest.json with a serve section "
                            "lands next to the first output path")
    score.set_defaults(func=_cmd_score)

    stream = sub.add_parser(
        "stream", help="replay a data file as an incremental stream")
    stream.add_argument("data", type=Path,
                        help="record file (.bin), .npy array or CSV to "
                             "replay as ordered deltas")
    stream.add_argument("--delta-records", type=int, default=10_000,
                        dest="delta_records",
                        help="records per ingested delta")
    stream.add_argument("--window", type=int, default=None,
                        help="sliding-window size in records (default: "
                             "unbounded — no expiry)")
    stream.add_argument("--drift-threshold", type=float, default=0.25,
                        dest="drift_threshold",
                        help="normalized histogram-drift level that "
                             "triggers an eager index rebuild (latency "
                             "knob only; snapshots are exact at any "
                             "value — docs/STREAMING.md)")
    stream.add_argument("--snapshot-every", type=int, default=0,
                        dest="snapshot_every", metavar="N",
                        help="take a snapshot every N applied deltas "
                             "(default: only at end-of-stream)")
    stream.add_argument("--procs", type=int, default=1)
    stream.add_argument("--backend", choices=("thread", "sim", "process"),
                        default="thread")
    stream.add_argument("--spill-dir", type=Path, default=None,
                        dest="spill_dir",
                        help="stage segments + manifest here so a "
                             "killed session can --resume "
                             "(single-process sessions only)")
    stream.add_argument("--resume", action="store_true",
                        help="restore the session from --spill-dir's "
                             "manifest; already-applied deltas replay "
                             "as no-ops")
    stream.add_argument("--alpha", type=float, default=1.5)
    stream.add_argument("--beta", type=float, default=0.35)
    stream.add_argument("--fine-bins", type=int, default=1000,
                        dest="fine_bins")
    stream.add_argument("--merge-window", type=int, default=5,
                        dest="merge_window",
                        help="adaptive-bin merge window (pmafia run's "
                             "--window; renamed here to avoid clashing "
                             "with the sliding record window)")
    stream.add_argument("--chunk", type=int, default=50_000)
    stream.add_argument("--report", choices=("merged", "paper", "maximal"),
                        default="merged")
    stream.add_argument("--join-strategy", choices=JOIN_STRATEGIES,
                        default="auto", dest="join_strategy")
    stream.add_argument("--metrics-out", type=Path, default=None,
                        dest="metrics_out", metavar="PATH",
                        help="write the per-rank stream.* counter "
                             "snapshot as JSON")
    stream.add_argument("--json", action="store_true",
                        help="emit the final snapshot as JSON")
    stream.set_defaults(func=_cmd_stream)

    run = sub.add_parser("run", help="cluster a data file")
    run.add_argument("data", type=Path,
                     help="record file (.bin), .npy array or CSV")
    run.add_argument("--algorithm", choices=("mafia", "clique"),
                     default="mafia")
    run.add_argument("--procs", type=int, default=1)
    run.add_argument("--backend", choices=("thread", "sim", "process"),
                     default="thread")
    run.add_argument("--alpha", type=float, default=1.5,
                     help="density significance factor (paper: >= 1.5)")
    run.add_argument("--beta", type=float, default=0.35,
                     help="window merge threshold (paper: 0.25-0.75)")
    run.add_argument("--fine-bins", type=int, default=1000, dest="fine_bins")
    run.add_argument("--window", type=int, default=5)
    run.add_argument("--chunk", type=int, default=50_000,
                     help="records per out-of-core chunk (B)")
    run.add_argument("--report", choices=("merged", "paper", "maximal"),
                     default="merged",
                     help="cluster-reporting semantics (DESIGN.md 4.1)")
    run.add_argument("--bin-cache", choices=("memory", "disk", "off"),
                     default="memory", dest="bin_cache",
                     help="staged bin-index store policy: keep per-record "
                          "bin indices in RAM, on disk beside the staged "
                          "records, or re-locate records every pass")
    run.add_argument("--join-strategy", choices=JOIN_STRATEGIES,
                     default="auto", dest="join_strategy",
                     help="CDU join implementation: the paper's pairwise "
                          "sweep, the sub-signature hash join, the "
                          "prefix-trie fptree engine, the one-pass "
                          "direct transaction miner, or auto (picked "
                          "per level from realised lattice stats; always "
                          "pairwise on the sim backend); clusters are "
                          "identical under every choice")
    run.add_argument("--direct-mining", action="store_true", default=True,
                     dest="direct_mining",
                     help="allow the direct transaction-mining engine "
                          "(default; results identical either way)")
    run.add_argument("--no-direct-mining", action="store_false",
                     dest="direct_mining",
                     help="never engage the direct transaction-mining "
                          "engine, even under --join-strategy direct")
    run.add_argument("--direct-min-level", type=int, default=4,
                     dest="direct_min_level", metavar="L",
                     help="earliest level the auto policy may hand to "
                          "the direct miner")
    run.add_argument("--direct-max-subsets", type=int, default=4_000_000,
                     dest="direct_max_subsets", metavar="N",
                     help="global itemset-table budget above which the "
                          "direct miner declines to engage")
    run.add_argument("--direct-max-transactions", type=int,
                     default=262_144, dest="direct_max_transactions",
                     metavar="N",
                     help="per-rank distinct-transaction budget above "
                          "which the direct miner declines to engage")
    run.add_argument("--prefetch", action="store_true",
                     help="double-buffer chunk reads on a background "
                          "thread during level passes")
    run.add_argument("--bitmap-index",
                     choices=("auto", "resident", "mmap", "off"),
                     default="auto", dest="bitmap_index",
                     help="persistent per-(dim,bin) membership bitmap "
                          "index: auto keeps it in RAM under "
                          "--bitmap-budget and spills to an mmap tile "
                          "file over it; resident/mmap force one mode; "
                          "off streams the binned store every pass; "
                          "results are identical either way")
    run.add_argument("--bitmap-budget", type=int, default=1 << 28,
                     dest="bitmap_budget", metavar="BYTES",
                     help="byte budget shared by the resident bitmap "
                          "index and its prefix-AND memo "
                          "(default 256 MiB)")
    run.add_argument("--compute-threads", type=int, default=1,
                     dest="compute_threads", metavar="N",
                     help="intra-rank threads tiling the indexed "
                          "engine's AND/popcount loop (counts are "
                          "identical for any value)")
    run.add_argument("--collectives", choices=("flat", "tree"),
                     default="flat",
                     help="collective wire pattern for parallel runs")
    run.add_argument("--checkpoint-dir", type=Path, default=None,
                     dest="checkpoint_dir",
                     help="MAFIA only: write a checkpoint after every "
                          "completed level into this directory")
    run.add_argument("--resume", action="store_true",
                     help="restart from the newest checkpoint in "
                          "--checkpoint-dir instead of starting fresh")
    run.add_argument("--supervised", action="store_true",
                     help="MAFIA only: run under the rank-recovery "
                          "supervisor (process backend) so a lost or "
                          "hung rank is replaced mid-run instead of "
                          "failing the job; requires --checkpoint-dir")
    run.add_argument("--rebalance", action="store_true",
                     help="MAFIA only: re-fence the CDU partition "
                          "between levels when per-level population "
                          "times reveal a straggler rank (results are "
                          "identical either way)")
    run.add_argument("--chaos-scenario", type=Path, default=None,
                     dest="chaos_scenario", metavar="PATH",
                     help="MAFIA only: inject the named chaos scenario "
                          "(benchmarks/scenarios/*.json) into this run "
                          "and recover per its recovery mode; requires "
                          "--checkpoint-dir and --backend process")
    run.add_argument("--bins", type=int, default=10,
                     help="CLIQUE: uniform bins per dimension")
    run.add_argument("--threshold", type=float, default=0.01,
                     help="CLIQUE: global density threshold fraction")
    run.add_argument("--trace-out", type=Path, default=None,
                     dest="trace_out", metavar="PATH",
                     help="MAFIA only: enable tracing and write the "
                          "merged per-rank timeline as Chrome "
                          "trace_event JSON (open in chrome://tracing "
                          "or https://ui.perfetto.dev)")
    run.add_argument("--metrics-out", type=Path, default=None,
                     dest="metrics_out", metavar="PATH",
                     help="MAFIA only: enable metrics and write the "
                          "per-rank + merged counter snapshot as JSON; "
                          "a run_manifest.json lands next to the first "
                          "output path")
    run.add_argument("--json", action="store_true",
                     help="emit the full result as JSON")
    run.add_argument("--verify", action="store_true",
                     help="independently re-check every invariant of the "
                          "result against the data before reporting")
    run.set_defaults(func=_cmd_run)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "stream":
        if args.resume and args.spill_dir is None:
            parser.error("--resume requires --spill-dir")
        if args.spill_dir is not None and args.procs != 1:
            parser.error("--spill-dir requires --procs 1 (segment "
                         "spill files hold one rank's slice; a "
                         "multi-rank session cannot resume them)")
    if args.command == "run":
        if args.resume and args.checkpoint_dir is None:
            parser.error("--resume requires --checkpoint-dir")
        if args.supervised or args.chaos_scenario is not None:
            if args.checkpoint_dir is None:
                parser.error("--supervised/--chaos-scenario require "
                             "--checkpoint-dir (replacements boot from "
                             "its checkpoints and shard manifests)")
            if args.backend != "process":
                parser.error("--supervised/--chaos-scenario require "
                             "--backend process — only OS processes can "
                             "be killed and respawned independently")
            if args.algorithm == "clique":
                parser.error("--supervised/--chaos-scenario are not "
                             "supported with --algorithm clique")
        if args.rebalance and args.algorithm == "clique":
            parser.error("--rebalance is not supported with "
                         "--algorithm clique")
        if args.checkpoint_dir is not None and args.algorithm == "clique":
            parser.error("--checkpoint-dir is not supported with "
                         "--algorithm clique")
        if (args.algorithm == "clique"
                and (args.trace_out is not None
                     or args.metrics_out is not None)):
            parser.error("--trace-out/--metrics-out are not supported "
                         "with --algorithm clique")
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
