"""Chaos gameday: rehearse rank failures against RTO budgets.

A *scenario* is a small JSON file (see ``benchmarks/scenarios/``)
naming a deterministic :class:`~repro.parallel.faults.FaultPlan`, the
recovery mode that is expected to absorb it, and a recovery-time
budget.  The runner executes every scenario on the process backend,
demands the final clustering be **bit-identical** to a fault-free
reference run, and fails loudly when recovery blows its budget.

Three recovery modes map onto the repo's fault-tolerance layers:

``supervised``
    :func:`repro.core.mafia.pmafia_supervised` — the rank-recovery
    supervisor repairs the loss *mid-run*; the budget is checked
    against the supervisor's realised worst RTO (detection → resume).
``restart``
    :func:`repro.core.mafia.pmafia_resumable` with ``max_restarts`` —
    the whole world restarts from the last per-level checkpoint; the
    budget is checked against the call's wall-clock time.
``none``
    The fault plan must be absorbed below the recovery layer (e.g. a
    transient-EIO storm swallowed by the resilient reader's retries);
    the budget is checked against wall-clock time.

Run the suite from the command line::

    python -m repro.gameday benchmarks/scenarios --output recovery-trace.json

Exit status is non-zero when any scenario fails — wrong clusters, an
unexpected exception, or a busted RTO budget — which is what the CI
``gameday`` job gates on.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from .core.mafia import pmafia_resumable, pmafia_supervised
from .core.result import ClusteringResult
from .datagen.generator import generate
from .errors import ParameterError, ReproError
from .io.resilient import RetryPolicy
from .params import MafiaParams
from .parallel.faults import FaultPlan
from .parallel.supervisor import SupervisePolicy

SCENARIO_VERSION = 1

_RECOVERY_MODES = ("supervised", "restart", "none")


@dataclass(frozen=True)
class ChaosScenario:
    """One rehearsed failure: the fault plan, the recovery mode that
    must absorb it, and the recovery-time budget it must meet."""

    name: str
    description: str = ""
    nprocs: int = 3
    #: which fault-tolerance layer is expected to absorb the plan
    recovery: str = "supervised"
    #: seconds the recovery may take before the scenario fails
    rto_budget_seconds: float = 60.0
    faults: FaultPlan | None = None
    supervise: SupervisePolicy | None = None
    recv_timeout: float | None = 60.0
    #: restart mode only: in-process restart budget
    max_restarts: int = 1
    #: MafiaParams field overrides applied on top of the base params
    params: dict[str, Any] = field(default_factory=dict)
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.recovery not in _RECOVERY_MODES:
            raise ParameterError(
                f"scenario {self.name!r}: recovery must be one of "
                f"{_RECOVERY_MODES}, got {self.recovery!r}")
        if self.rto_budget_seconds <= 0:
            raise ParameterError(
                f"scenario {self.name!r}: rto_budget_seconds must be > 0")
        if self.nprocs < 1:
            raise ParameterError(
                f"scenario {self.name!r}: nprocs must be >= 1")

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "ChaosScenario":
        """Build a scenario from its JSON file form."""
        spec = dict(spec)
        version = spec.pop("version", SCENARIO_VERSION)
        if version != SCENARIO_VERSION:
            raise ParameterError(
                f"scenario version {version} not supported "
                f"(this build reads version {SCENARIO_VERSION})")
        faults = spec.pop("faults", None)
        supervise = spec.pop("supervise", None)
        retry = spec.pop("retry", None)
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(spec) - known
        if unknown:
            raise ParameterError(
                f"scenario {spec.get('name', '?')!r}: unknown fields "
                f"{sorted(unknown)}")
        return cls(
            faults=None if faults is None else FaultPlan.from_dict(faults),
            supervise=(None if supervise is None
                       else SupervisePolicy(**supervise)),
            retry=None if retry is None else RetryPolicy(**retry),
            **spec)


def load_scenario(path: str | os.PathLike) -> ChaosScenario:
    """Read one scenario JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return ChaosScenario.from_dict(json.load(fh))


def load_scenarios(directory: str | os.PathLike) -> list[ChaosScenario]:
    """Read every ``*.json`` scenario in a directory, sorted by name."""
    paths = sorted(Path(directory).glob("*.json"))
    if not paths:
        raise ParameterError(f"no scenario files (*.json) in {directory}")
    return [load_scenario(p) for p in paths]


def results_identical(result: ClusteringResult,
                      reference: ClusteringResult) -> bool:
    """Bit-identical clustering: per-level CDU/dense counts, the dense
    unit tables themselves, and the reported cluster DNFs all match."""
    if (result.cdus_per_level() != reference.cdus_per_level()
            or result.dense_per_level() != reference.dense_per_level()
            or len(result.trace) != len(reference.trace)):
        return False
    for got, want in zip(result.trace, reference.trace):
        if (not np.array_equal(got.dense.dims, want.dense.dims)
                or not np.array_equal(got.dense.bins, want.dense.bins)
                or not np.array_equal(got.dense_counts, want.dense_counts)):
            return False
    return ([c.dnf for c in result.clusters]
            == [c.dnf for c in reference.clusters])


@dataclass(frozen=True)
class GamedayResult:
    """Outcome of one scenario run."""

    scenario: ChaosScenario
    ok: bool
    identical: bool
    #: seconds charged against the scenario's RTO budget
    recovery_seconds: float
    wall_seconds: float
    #: supervised mode: one dict per recovery round (RecoveryEvent.to_dict)
    events: tuple[dict[str, Any], ...] = ()
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for the recovery trace artifact."""
        return {
            "scenario": self.scenario.name,
            "recovery": self.scenario.recovery,
            "ok": self.ok,
            "identical": self.identical,
            "recovery_seconds": self.recovery_seconds,
            "rto_budget_seconds": self.scenario.rto_budget_seconds,
            "wall_seconds": self.wall_seconds,
            "events": list(self.events),
            "error": self.error,
        }

    def summary(self) -> str:
        """One status line for the console report."""
        status = "PASS" if self.ok else "FAIL"
        line = (f"{status:4s} {self.scenario.name:28s} "
                f"[{self.scenario.recovery}] "
                f"rto={self.recovery_seconds:.2f}s/"
                f"{self.scenario.rto_budget_seconds:.0f}s "
                f"wall={self.wall_seconds:.1f}s")
        if self.error is not None:
            line += f"  ({self.error})"
        elif not self.identical:
            line += "  (result diverged from fault-free reference)"
        return line


def run_gameday(scenario: ChaosScenario, data: Any,
                params: MafiaParams, *,
                checkpoint_dir: str | os.PathLike,
                baseline: ClusteringResult,
                domains: np.ndarray | None = None) -> GamedayResult:
    """Execute one scenario and judge it against its budget.

    ``data`` must be shareable across processes (a record-file path or
    an array); ``baseline`` is the fault-free reference clustering the
    survivor's output must equal bit-for-bit.  ``checkpoint_dir`` must
    be empty or scenario-private — recovery state from one scenario
    must never leak into the next.
    """
    run_params = (replace(params, **scenario.params)
                  if scenario.params else params)
    start = time.perf_counter()
    events: tuple[dict[str, Any], ...] = ()
    try:
        if scenario.recovery == "supervised":
            run = pmafia_supervised(
                data, scenario.nprocs, run_params,
                checkpoint_dir=checkpoint_dir, domains=domains,
                recv_timeout=scenario.recv_timeout,
                retry=scenario.retry, faults=scenario.faults,
                policy=scenario.supervise)
            report = run.recovery
            assert report is not None
            recovery_seconds = report.worst_rto
            events = tuple(e.to_dict() for e in report.events)
            result = run.result
        else:
            run = pmafia_resumable(
                data, scenario.nprocs, run_params,
                checkpoint_dir=checkpoint_dir, domains=domains,
                backend="process", recv_timeout=scenario.recv_timeout,
                retry=scenario.retry, faults=scenario.faults,
                max_restarts=(scenario.max_restarts
                              if scenario.recovery == "restart" else 0))
            result = run.result
            recovery_seconds = (time.perf_counter() - start
                                if scenario.recovery == "restart" else 0.0)
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        wall = time.perf_counter() - start
        return GamedayResult(scenario=scenario, ok=False, identical=False,
                             recovery_seconds=wall, wall_seconds=wall,
                             error=f"{type(exc).__name__}: {exc}")
    wall = time.perf_counter() - start
    identical = results_identical(result, baseline)
    ok = identical and recovery_seconds <= scenario.rto_budget_seconds
    return GamedayResult(scenario=scenario, ok=ok, identical=identical,
                         recovery_seconds=recovery_seconds,
                         wall_seconds=wall, events=events)


def write_recovery_trace(path: str | os.PathLike,
                         results: Sequence[GamedayResult]) -> None:
    """Write the machine-readable gameday report (the CI artifact)."""
    payload = {
        "version": SCENARIO_VERSION,
        "scenarios": [r.to_dict() for r in results],
        "passed": sum(1 for r in results if r.ok),
        "failed": sum(1 for r in results if not r.ok),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def _gameday_dataset(n_records: int, n_dims: int):
    """The standing gameday workload: one 4-d box cluster in noise."""
    from .datagen.spec import ClusterSpec
    spec = ClusterSpec.box([1, 3, 5, 7],
                           [(20, 40), (10, 30), (50, 80), (60, 70)])
    return generate(n_records, n_dims, [spec], seed=7)


def main(argv: Sequence[str] | None = None) -> int:
    """Run a scenario directory end to end — the CI gameday job."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.gameday",
        description="run chaos scenarios against their RTO budgets")
    parser.add_argument("scenarios", type=Path,
                        help="scenario directory or a single .json file")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the recovery trace JSON here")
    parser.add_argument("--records", type=int, default=5000)
    parser.add_argument("--dims", type=int, default=10)
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", help="run only these scenarios "
                        "(repeatable)")
    parser.add_argument("--workdir", type=Path, default=None,
                        help="scratch directory for checkpoints "
                        "(default: a fresh temp dir)")
    args = parser.parse_args(argv)

    try:
        if args.scenarios.is_dir():
            scenarios = load_scenarios(args.scenarios)
        else:
            scenarios = [load_scenario(args.scenarios)]
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error loading scenarios: {exc}", file=sys.stderr)
        return 2
    if args.only:
        wanted = set(args.only)
        scenarios = [s for s in scenarios if s.name in wanted]
        missing = wanted - {s.name for s in scenarios}
        if missing:
            print(f"error: unknown scenarios {sorted(missing)}",
                  file=sys.stderr)
            return 2

    import tempfile
    workdir_cm = (tempfile.TemporaryDirectory()
                  if args.workdir is None else None)
    workdir = Path(workdir_cm.name if workdir_cm else args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    params = MafiaParams(fine_bins=200, window_size=2, chunk_records=2000)
    dataset = _gameday_dataset(args.records, args.dims)
    domains = np.array([[0.0, 100.0]] * args.dims)

    from .core.mafia import mafia
    print(f"gameday: {len(scenarios)} scenarios, "
          f"{args.records} records x {args.dims} dims", flush=True)
    baseline = mafia(dataset.records, params, domains)

    results: list[GamedayResult] = []
    try:
        for scenario in scenarios:
            ckpt = workdir / f"ckpt-{scenario.name}"
            ckpt.mkdir(parents=True, exist_ok=True)
            outcome = run_gameday(scenario, dataset.records, params,
                                  checkpoint_dir=ckpt, baseline=baseline,
                                  domains=domains)
            results.append(outcome)
            print(outcome.summary(), flush=True)
    finally:
        if workdir_cm is not None:
            workdir_cm.cleanup()

    if args.output is not None:
        write_recovery_trace(args.output, results)
        print(f"wrote recovery trace to {args.output}", file=sys.stderr)
    failed = [r for r in results if not r.ok]
    if failed:
        print(f"gameday FAILED: {len(failed)}/{len(results)} scenarios",
              file=sys.stderr)
        return 1
    print(f"gameday passed: {len(results)}/{len(results)} scenarios")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
