"""Mid-run rank recovery: the supervisor's kill matrix and its friends.

The acceptance bar for the supervisor is stricter than for the restart
layer in test_failure_injection.py: after losing any single rank at any
level the run must *finish in the same call*, with exactly one
replacement, and the clustering must be bit-identical to a fault-free
run — only the lost shard's state is rebuilt.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mafia import pmafia, pmafia_supervised
from repro.core.rebalance import StragglerMonitor
from repro.errors import CommError, ParameterError
from repro.parallel.faults import CrashPoint, FaultPlan, MessageFault
from repro.parallel.supervisor import (RecoveryEvent, RecoveryReport,
                                       SupervisePolicy)

from .conftest import DOMAINS_10D

pytestmark = pytest.mark.fault

#: fast failure detection for tests; production default is 1 s
FAST = SupervisePolicy(heartbeat_interval=0.2)


@pytest.fixture(scope="module")
def baseline(one_cluster_dataset, small_params):
    """The fault-free 3-rank reference clustering."""
    return pmafia(one_cluster_dataset.records, 3, small_params,
                  domains=DOMAINS_10D).result


def _assert_identical(result, reference):
    """Bit-identical clustering: counts, dense unit tables, DNFs."""
    assert result.cdus_per_level() == reference.cdus_per_level()
    assert result.dense_per_level() == reference.dense_per_level()
    assert len(result.trace) == len(reference.trace)
    for got, want in zip(result.trace, reference.trace):
        np.testing.assert_array_equal(got.dense.dims, want.dense.dims)
        np.testing.assert_array_equal(got.dense.bins, want.dense.bins)
        np.testing.assert_array_equal(got.dense_counts, want.dense_counts)
    assert [c.dnf for c in result.clusters] == \
        [c.dnf for c in reference.clusters]


class TestKillMatrix:
    """Lose each rank at each level; demand mid-run repair."""

    @pytest.mark.parametrize("rank", [0, 1, 2])
    @pytest.mark.parametrize("level", [1, 2, 4])
    def test_kill_any_rank_any_level(self, tmp_path, rank, level, baseline,
                                     one_cluster_dataset, small_params):
        if level > len(baseline.trace):
            pytest.skip(f"run has only {len(baseline.trace)} levels")
        plan = FaultPlan(crashes=(
            CrashPoint(rank=rank, site="populate", level=level),))
        run = pmafia_supervised(
            one_cluster_dataset.records, 3, small_params,
            checkpoint_dir=tmp_path, domains=DOMAINS_10D,
            faults=plan, policy=FAST, recv_timeout=60.0)
        _assert_identical(run.result, baseline)
        report = run.recovery
        assert report is not None and report.replacements == 1
        (event,) = report.events
        assert event.rank == rank
        assert event.reason == "InjectedFailure"
        # the replacement resumes from the last completed level —
        # never further back than the level before the kill
        assert 0 <= event.restore_level < level
        assert event.survivors == tuple(r for r in range(3) if r != rank)
        assert event.rto >= 0.0

    def test_hard_kill_detected_by_liveness(self, tmp_path, baseline,
                                            one_cluster_dataset,
                                            small_params):
        """os._exit leaves no error report; only process liveness (or a
        heartbeat stall) can notice, and recovery must still work."""
        plan = FaultPlan(crashes=(
            CrashPoint(rank=2, site="dedup", level=2, hard=True),))
        run = pmafia_supervised(
            one_cluster_dataset.records, 3, small_params,
            checkpoint_dir=tmp_path, domains=DOMAINS_10D,
            faults=plan, policy=FAST, recv_timeout=60.0)
        _assert_identical(run.result, baseline)
        report = run.recovery
        assert report.replacements == 1
        assert report.events[0].reason == "exit"

    def test_stalled_rank_replaced_before_delay_expires(
            self, tmp_path, baseline, one_cluster_dataset, small_params):
        """A 30 s message delay models a livelocked peer.  Stall
        detection fires at ~2 s and the whole run must finish well
        before the 30 s delay would have."""
        plan = FaultPlan(message_faults=(
            MessageFault(rank=1, action="delay", nth=7, delay=30.0),))
        policy = SupervisePolicy(heartbeat_interval=0.2, stall_timeout=2.0)
        run = pmafia_supervised(
            one_cluster_dataset.records, 3, small_params,
            checkpoint_dir=tmp_path, domains=DOMAINS_10D,
            faults=plan, policy=policy, recv_timeout=120.0)
        _assert_identical(run.result, baseline)
        report = run.recovery
        assert report.replacements == 1
        assert report.events[0].rank == 1
        assert report.events[0].reason == "stall"
        # detection-to-resume, not including the stall_timeout itself
        assert report.worst_rto < 30.0

    def test_two_sequential_losses_within_budget(self, tmp_path, baseline,
                                                 one_cluster_dataset,
                                                 small_params):
        """max_recoveries=2 (default) absorbs two separate rounds."""
        plan = FaultPlan(crashes=(
            CrashPoint(rank=1, site="populate", level=2),
            CrashPoint(rank=2, site="populate", level=3),))
        run = pmafia_supervised(
            one_cluster_dataset.records, 3, small_params,
            checkpoint_dir=tmp_path, domains=DOMAINS_10D,
            faults=plan, policy=FAST, recv_timeout=60.0)
        _assert_identical(run.result, baseline)
        assert run.recovery.replacements == 2
        assert [e.rank for e in run.recovery.events] == [1, 2]

    def test_recovery_budget_exhaustion_aborts(self, tmp_path,
                                               one_cluster_dataset,
                                               small_params):
        """More losses than max_recoveries must fail loudly, not hang."""
        plan = FaultPlan(crashes=(
            CrashPoint(rank=1, site="populate", level=2),
            CrashPoint(rank=2, site="populate", level=3),))
        policy = SupervisePolicy(heartbeat_interval=0.2, max_recoveries=1)
        with pytest.raises(CommError):
            pmafia_supervised(
                one_cluster_dataset.records, 3, small_params,
                checkpoint_dir=tmp_path, domains=DOMAINS_10D,
                faults=plan, policy=policy, recv_timeout=60.0)


class TestFaultFreeSupervision:
    """Supervision must be free when nothing goes wrong."""

    def test_no_fault_no_recovery(self, tmp_path, baseline,
                                  one_cluster_dataset, small_params):
        run = pmafia_supervised(
            one_cluster_dataset.records, 3, small_params,
            checkpoint_dir=tmp_path, domains=DOMAINS_10D, policy=FAST)
        _assert_identical(run.result, baseline)
        report = run.recovery
        assert report.replacements == 0
        assert report.events == ()
        assert report.worst_rto == 0.0

    def test_run_spmd_supervise_rejects_thread_backend(self):
        from repro.parallel.spmd import run_spmd
        with pytest.raises(CommError, match="process"):
            run_spmd(lambda comm: comm.rank, 2, backend="thread",
                     supervise=SupervisePolicy())


class TestRecoveryObservability:
    """recovery.* spans and counters land in the exported trace."""

    def test_recovery_events_in_trace(self, tmp_path, baseline,
                                      one_cluster_dataset, small_params):
        plan = FaultPlan(crashes=(
            CrashPoint(rank=1, site="populate", level=2),))
        run = pmafia_supervised(
            one_cluster_dataset.records, 3,
            small_params.with_(trace=True, metrics=True),
            checkpoint_dir=tmp_path, domains=DOMAINS_10D,
            faults=plan, policy=FAST, recv_timeout=60.0)
        _assert_identical(run.result, baseline)
        spans = run.obs.merged_spans()
        names = {s.name for s in spans if s.cat == "recovery"}
        # survivors parked and resumed; the replacement rebuilt its shard
        assert "recovery.park" in names
        assert "recovery.resumed" in names
        assert "recovery.rebuild" in names
        assert "recovery.rebuilt" in names
        rebuilds = [s for s in spans if s.name == "recovery.rebuild"]
        assert all(s.rank == 1 for s in rebuilds)
        total = run.obs.merged_metrics()["total"]
        assert any(key.startswith("recovery.events") for key in total)

    def test_report_to_dict_round_trips_json(self, tmp_path,
                                             one_cluster_dataset,
                                             small_params):
        import json
        plan = FaultPlan(crashes=(
            CrashPoint(rank=0, site="join", level=2),))
        run = pmafia_supervised(
            one_cluster_dataset.records, 3, small_params,
            checkpoint_dir=tmp_path, domains=DOMAINS_10D,
            faults=plan, policy=FAST, recv_timeout=60.0)
        blob = json.dumps(run.recovery.to_dict())
        parsed = json.loads(blob)
        assert parsed["replacements"] == 1
        assert parsed["events"][0]["rank"] == 0
        assert parsed["events"][0]["rto_seconds"] >= 0.0


class TestRebalance:
    """Mid-level re-fencing: identical results, monitor unit behavior."""

    def test_rebalanced_run_is_identical(self, tmp_path, baseline,
                                         one_cluster_dataset, small_params,
                                         monkeypatch):
        """Force re-fencing every level (threshold 1.0) and demand the
        clustering is still bit-identical — the fences move, the
        result must not."""
        monkeypatch.setattr("repro.core.rebalance.REBALANCE_THRESHOLD", 1.0)
        run = pmafia(one_cluster_dataset.records, 3,
                     small_params.with_(rebalance=True),
                     domains=DOMAINS_10D)
        _assert_identical(run.result, baseline)

    def test_monitor_inert_below_threshold(self):
        class FakeComm:
            size = 3
            rank = 0

            def allgather(self, value):
                return [value, value, value]  # perfectly balanced

        from repro.params import MafiaParams
        params = MafiaParams(rebalance=True)
        monitor = StragglerMonitor.create(params, FakeComm())
        assert monitor is not None
        monitor.observe(1, 1.0)
        assert monitor.shares() is None  # ratio 1.0 < threshold

    def test_monitor_detects_straggler(self):
        class SkewComm:
            size = 3
            rank = 0

            def allgather(self, value):
                return [1.0, 1.0, 4.0]  # rank 2 is 4x slower

        from repro.params import MafiaParams
        params = MafiaParams(rebalance=True)
        monitor = StragglerMonitor.create(params, SkewComm())
        monitor.observe(1, 1.0)
        shares = monitor.shares()
        assert shares is not None
        assert shares.shape == (3,)
        assert shares[2] < shares[0]  # the straggler gets less work
        assert np.isclose(shares.sum(), 1.0)
        assert monitor.last_ratio == pytest.approx(4.0)

    def test_monitor_disabled_paths(self, small_params):
        class Size1Comm:
            size = 1
            rank = 0

        from repro.params import MafiaParams
        assert StragglerMonitor.create(small_params, Size1Comm()) is None
        params = MafiaParams(rebalance=True)
        assert StragglerMonitor.create(params, Size1Comm()) is None


class TestPolicyValidation:

    def test_bad_policy_rejected(self):
        with pytest.raises(ParameterError):
            SupervisePolicy(heartbeat_interval=0.0)
        with pytest.raises(ParameterError):
            SupervisePolicy(max_recoveries=-1)

    def test_event_rto_property(self):
        event = RecoveryEvent(rank=1, epoch=1, reason="error",
                              restore_level=2, survivors=(0, 2),
                              detected=10.0, parked=10.5,
                              respawned=10.8, resumed=11.0)
        assert event.rto == pytest.approx(1.0)
        report = RecoveryReport(events=(event,), nprocs=3)
        assert report.replacements == 1
        assert report.worst_rto == pytest.approx(1.0)
