"""Tests for the ASCII chart helpers (repro.analysis.charts)."""

from __future__ import annotations

import pytest

from repro.analysis import bar_chart, scaling_chart
from repro.errors import DataError


class TestBarChart:
    def test_longest_bar_is_full_width(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert 4 <= lines[1].count("█") <= 5

    def test_labels_aligned_and_values_printed(self):
        text = bar_chart({"p1": 1.0, "p16": 2.0}, width=8)
        lines = text.splitlines()
        assert lines[0].startswith(" p1 |")
        assert lines[1].startswith("p16 |")
        assert "1" in lines[0] and "2" in lines[1]

    def test_title_and_unit(self):
        text = bar_chart({"x": 3.0}, title="T", unit="s")
        assert text.splitlines()[0] == "T"
        assert text.rstrip().endswith("3s")

    def test_zero_values_allowed(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in text

    def test_validation(self):
        with pytest.raises(DataError):
            bar_chart({})
        with pytest.raises(DataError):
            bar_chart({"a": -1.0})
        with pytest.raises(DataError):
            bar_chart({"a": 1.0}, width=0)


class TestScalingChart:
    def test_ratios_reveal_linear_series(self):
        text = scaling_chart({1: 10.0, 2: 20.0, 3: 30.0})
        assert "step ratios: 2.00, 1.50" in text

    def test_ratios_reveal_exponential_series(self):
        text = scaling_chart({1: 1.0, 2: 2.0, 3: 4.0, 4: 8.0})
        assert "2.00, 2.00, 2.00" in text

    def test_single_point_has_no_ratios(self):
        text = scaling_chart({1: 5.0})
        assert "step ratios" not in text

    def test_zero_to_value_ratio_is_inf(self):
        text = scaling_chart({1: 0.0, 2: 3.0})
        assert "inf" in text
