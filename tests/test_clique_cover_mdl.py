"""Unit tests for CLIQUE's cover and MDL internals
(repro.clique.{cover,mdl})."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.cover import box_cells, minimal_cover
from repro.clique.mdl import mdl_cut, prune_units, subspace_coverage
from repro.core.units import UnitTable
from repro.errors import DataError


class TestBoxCells:
    def test_enumerates_inclusive_ranges(self):
        cells = box_cells(((0, 1), (2, 2)))
        assert cells == {(0, 2), (1, 2)}

    def test_single_cell(self):
        assert box_cells(((3, 3),)) == {(3,)}


class TestMinimalCover:
    def test_rectangle_is_one_box(self):
        bins = np.array([[i, j] for i in range(3) for j in range(2)])
        assert minimal_cover(bins) == [((0, 2), (0, 1))]

    def test_l_shape_two_boxes(self):
        bins = np.array([[0, 0], [1, 0], [2, 0], [0, 1], [0, 2]])
        boxes = minimal_cover(bins)
        assert len(boxes) == 2
        covered = set()
        for b in boxes:
            covered |= box_cells(b)
        assert covered >= {tuple(r) for r in bins.tolist()}

    def test_redundant_box_removed(self):
        """A plus-shape: the greedy grower can emit overlapping maximal
        rectangles; fully covered ones must be dropped."""
        bins = np.array([[1, 0], [0, 1], [1, 1], [2, 1], [1, 2]])
        boxes = minimal_cover(bins)
        covered = set()
        for b in boxes:
            covered |= box_cells(b)
        assert covered >= {tuple(r) for r in bins.tolist()}
        # no box is redundant w.r.t. the others
        for i, b in enumerate(boxes):
            rest = set()
            for j, other in enumerate(boxes):
                if j != i:
                    rest |= box_cells(other)
            assert not box_cells(b) <= rest

    def test_single_cell_cluster(self):
        assert minimal_cover(np.array([[5, 5]])) == [((5, 5), (5, 5))]

    def test_shape_validation(self):
        with pytest.raises(DataError):
            minimal_cover(np.array([1, 2, 3]))


def table(*units):
    return UnitTable.from_pairs(list(units))


class TestSubspaceCoverage:
    def test_sums_counts_per_subspace(self):
        t = table([(0, 1), (1, 0)], [(0, 2), (1, 1)], [(2, 0), (3, 0)])
        cov = subspace_coverage(t, np.array([10, 20, 5]))
        assert cov == {(0, 1): 30, (2, 3): 5}

    def test_counts_shape_checked(self):
        with pytest.raises(DataError):
            subspace_coverage(table([(0, 0)]), np.array([1, 2]))


class TestMdlCut:
    def test_keeps_dominant_drops_trailing_noise(self):
        coverage = {(0, 1): 10_000, (2, 3): 9_500,
                    (4, 5): 40, (6, 7): 35, (8, 9): 30}
        selected = mdl_cut(coverage)
        assert (0, 1) in selected and (2, 3) in selected
        assert (8, 9) not in selected

    def test_always_keeps_at_least_one(self):
        assert len(mdl_cut({(0,): 5})) == 1
        assert mdl_cut({}) == set()

    def test_uniform_coverage_keeps_all_or_most(self):
        coverage = {(i, i + 1): 100 for i in range(0, 8, 2)}
        selected = mdl_cut(coverage)
        assert len(selected) >= len(coverage) - 1


class TestPruneUnits:
    def test_drops_unselected_subspaces(self):
        t = table([(0, 1), (1, 0)], [(2, 0), (3, 0)])
        counts = np.array([7, 9])
        kept, kept_counts = prune_units(t, counts, {(0, 1)})
        assert list(kept) == [((0, 1), (1, 0))]
        assert kept_counts.tolist() == [7]

    def test_empty_table(self):
        t = UnitTable.empty(2)
        kept, counts = prune_units(t, np.array([]), set())
        assert kept.n_units == 0
