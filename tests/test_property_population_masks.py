"""Property-based tests: population counting, prefix join semantics,
and the cluster-report masks (maximal / merged)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.join import prefix_join_all
from repro.core.dnf import maximal_mask, merged_mask, projections
from repro.core.population import populate_local
from repro.core.units import UnitTable
from repro.io import ArraySource
from repro.parallel import SerialComm
from repro.types import DimensionGrid, Grid


def uniform_grid(d: int, nbins: int) -> Grid:
    dims = []
    for j in range(d):
        edges = tuple(np.linspace(0, 100, nbins + 1))
        dims.append(DimensionGrid(dim=j, edges=edges,
                                  thresholds=(1.0,) * nbins))
    return Grid(dims=tuple(dims))


@st.composite
def records_and_units(draw):
    d = draw(st.integers(2, 5))
    nbins = draw(st.integers(2, 5))
    n = draw(st.integers(1, 200))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    records = rng.random((n, d)) * 100.0
    level = draw(st.integers(1, min(3, d)))
    n_units = draw(st.integers(1, 15))
    units = []
    for _ in range(n_units):
        dims = sorted(rng.choice(d, size=level, replace=False).tolist())
        units.append([(dim, int(rng.integers(0, nbins))) for dim in dims])
    return records, uniform_grid(d, nbins), UnitTable.from_pairs(units).unique()


class TestPopulationProperties:
    @given(records_and_units(), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force_for_any_chunking(self, setup, chunk):
        records, grid, units = setup
        got = populate_local(ArraySource(records), SerialComm(), grid,
                             units, chunk)
        idx = grid.locate_records(records)
        for i in range(units.n_units):
            mask = np.ones(len(records), dtype=bool)
            for d, b in units.unit(i):
                mask &= idx[:, d] == b
            assert got[i] == mask.sum()

    @given(records_and_units())
    @settings(max_examples=40, deadline=None)
    def test_counts_bounded_by_records(self, setup):
        records, grid, units = setup
        got = populate_local(ArraySource(records), SerialComm(), grid,
                             units, 50)
        assert (got >= 0).all() and (got <= len(records)).all()


@st.composite
def level_tables(draw, level, max_dim=6, max_bin=3, max_units=12):
    n = draw(st.integers(0, max_units))
    units = []
    for _ in range(n):
        dims = draw(st.lists(st.integers(0, max_dim - 1), min_size=level,
                             max_size=level, unique=True))
        units.append([(d, draw(st.integers(0, max_bin))) for d in sorted(dims)])
    if not units:
        return UnitTable.empty(level)
    return UnitTable.from_pairs(units).unique()


class TestPrefixJoinProperties:
    @given(level_tables(level=2))
    @settings(max_examples=50, deadline=None)
    def test_prefix_join_subset_of_mafia_join(self, dense):
        from repro.core.candidates import join_all
        dense = dense.sort()
        prefix = prefix_join_all(dense).cdus.unique()
        full = join_all(dense).cdus.unique()
        if prefix.n_units:
            assert full.contains_rows(prefix).all()

    @given(level_tables(level=2))
    @settings(max_examples=50, deadline=None)
    def test_prefix_join_matches_definition(self, dense):
        """Candidates are exactly the unions of unit pairs sharing their
        first k−2 (dim, bin) coordinates with distinct last dims."""
        dense = dense.sort()
        got = set(prefix_join_all(dense).cdus.unique()) \
            if dense.n_units else set()
        expected = set()
        units = list(dense)
        for i in range(len(units)):
            for j in range(len(units)):
                if i >= j:
                    continue
                u, v = units[i], units[j]
                if u[:-1] == v[:-1] and u[-1][0] != v[-1][0]:
                    expected.add(tuple(sorted(set(u) | set(v))))
        assert got == expected


class TestReportMaskProperties:
    @given(level_tables(level=3))
    @settings(max_examples=50, deadline=None)
    def test_merged_mask_implies_maximal_mask(self, higher):
        """merged suppresses a superset of what maximal suppresses."""
        if higher.n_units == 0:
            return
        lower = projections(higher).unique()
        maximal = maximal_mask(lower, higher)
        merged = merged_mask(lower, higher)
        assert (~maximal | ~merged | (maximal & merged)).all()
        assert (merged <= maximal).all()  # merged True -> maximal True

    @given(level_tables(level=3))
    @settings(max_examples=50, deadline=None)
    def test_projections_never_maximal(self, higher):
        if higher.n_units == 0:
            return
        lower = projections(higher).unique()
        assert not maximal_mask(lower, higher).any()

    @given(level_tables(level=2))
    @settings(max_examples=50, deadline=None)
    def test_unrelated_subspaces_survive_merged(self, higher):
        """A unit in dimensions disjoint from every higher unit is kept
        by both policies."""
        if higher.n_units == 0:
            return
        lower = UnitTable.from_pairs([[(200, 0)]])
        assert maximal_mask(lower, higher).all()
        assert merged_mask(lower, higher).all()
