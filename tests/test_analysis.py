"""Tests for quality metrics, the complexity model and report
formatting (repro.analysis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MafiaParams, mafia
from repro.analysis import (Workload, expected_cdus, format_table,
                            match_clusters, paper_vs_measured,
                            points_in_cluster, predicted_seconds,
                            predicted_speedup, speedup_series,
                            subspace_scores)
from repro.errors import DataError, ParameterError
from repro.parallel import MachineSpec
from repro.types import Cluster, DNFTerm, Subspace
from tests.conftest import DOMAINS_10D


def simple_cluster(dims, intervals):
    sub = Subspace(tuple(dims))
    term = DNFTerm(subspace=sub, intervals=tuple(intervals))
    return Cluster(subspace=sub, units_bins=np.zeros((1, len(dims)), int),
                   dnf=(term,))


class TestPointsInCluster:
    def test_union_of_terms(self):
        sub = Subspace((0,))
        c = Cluster(subspace=sub, units_bins=np.zeros((2, 1), int),
                    dnf=(DNFTerm(subspace=sub, intervals=((0.0, 1.0),)),
                         DNFTerm(subspace=sub, intervals=((5.0, 6.0),))))
        recs = np.array([[0.5], [3.0], [5.5]])
        assert points_in_cluster(c, recs).tolist() == [True, False, True]

    def test_only_subspace_dims_constrain(self):
        c = simple_cluster([1], [(10.0, 20.0)])
        recs = np.array([[999.0, 15.0, -999.0]])
        assert points_in_cluster(c, recs).all()


class TestSubspaceScores:
    def test_perfect_match(self, one_cluster_dataset, small_params):
        res = mafia(one_cluster_dataset.records, small_params,
                    domains=DOMAINS_10D)
        assert subspace_scores(res, one_cluster_dataset.clusters) == (1.0, 1.0)

    def test_spurious_clusters_hit_precision(self):
        from repro.core.result import ClusteringResult
        # hand-built result with one right and one wrong subspace
        from repro.datagen import ClusterSpec
        specs = [ClusterSpec.box([0, 1], [(0, 1), (0, 1)])]
        clusters = (simple_cluster([0, 1], [(0.0, 1.0), (0.0, 1.0)]),
                    simple_cluster([2, 3], [(0.0, 1.0), (0.0, 1.0)]))
        fake = ClusteringResult(
            grid=mafia(np.random.default_rng(0).random((100, 4)),
                       MafiaParams(fine_bins=20, window_size=2,
                                   chunk_records=100)).grid,
            clusters=clusters, trace=(), params=MafiaParams(), n_records=100)
        precision, recall = subspace_scores(fake, specs)
        assert precision == 0.5 and recall == 1.0


class TestMatchClusters:
    def test_full_pipeline(self, two_cluster_dataset):
        res = mafia(two_cluster_dataset.records,
                    MafiaParams(chunk_records=5000), domains=DOMAINS_10D)
        matches = match_clusters(res, two_cluster_dataset)
        assert len(matches) == 2
        for m in matches:
            assert m.subspace_exact
            assert m.recall > 0.9
            assert m.precision > 0.8
            assert m.boundary_error < 0.1


class TestComplexityModel:
    def test_expected_cdus_binomials(self):
        w = Workload(n_records=1000, n_dims=10, cluster_dim=4)
        cdus = expected_cdus(w)
        assert cdus[2] == 6 and cdus[3] == 4 and cdus[4] == 1 and cdus[5] == 0

    def test_time_monotone_in_records(self):
        m = MachineSpec.ibm_sp2()
        small = Workload(n_records=10**5, n_dims=10, cluster_dim=4)
        big = Workload(n_records=10**6, n_dims=10, cluster_dim=4)
        assert predicted_seconds(m, big) > predicted_seconds(m, small)

    def test_time_exponential_in_cluster_dim(self):
        """Fig 7 shape: growth between consecutive k accelerates."""
        m = MachineSpec.ibm_sp2()
        times = [predicted_seconds(m, Workload(
            n_records=10**5, n_dims=20, cluster_dim=k)) for k in (4, 6, 8, 10)]
        ratios = [b / a for a, b in zip(times, times[1:])]
        assert ratios[-1] > ratios[0] > 1.0

    def test_speedup_near_linear(self):
        m = MachineSpec.ibm_sp2()
        w = Workload(n_records=4 * 10**6, n_dims=20, cluster_dim=5)
        s16 = predicted_speedup(m, w, 16)
        assert 10 < s16 <= 16.5

    def test_validation(self):
        with pytest.raises(ParameterError):
            Workload(n_records=0, n_dims=5, cluster_dim=2)
        with pytest.raises(ParameterError):
            Workload(n_records=10, n_dims=5, cluster_dim=7)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [[1, 2.5], ["xx", 0.00001]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "---" in lines[2]
        assert len(lines) == 5

    def test_format_table_width_checked(self):
        with pytest.raises(DataError):
            format_table(["a"], [[1, 2]])

    def test_paper_vs_measured_keys_union(self):
        text = paper_vs_measured("X", "p", {1: 10, 2: 20}, {2: 19, 4: 9},
                                 note="shape only")
        assert "paper" in text and "measured" in text
        assert "shape only" in text
        assert "4" in text and "-" in text

    def test_speedup_series(self):
        s = speedup_series({1: 100.0, 2: 50.0, 4: 30.0})
        assert s[1] == pytest.approx(1.0)
        assert s[2] == pytest.approx(2.0)
        assert s[4] == pytest.approx(100 / 30)

    def test_speedup_series_empty(self):
        assert speedup_series({}) == {}


class TestAssignRecords:
    def test_labels_match_truth(self, two_cluster_dataset):
        from repro.analysis import assign_records
        res = mafia(two_cluster_dataset.records,
                    MafiaParams(chunk_records=5000), domains=DOMAINS_10D)
        labels = assign_records(res, two_cluster_dataset.records)
        # translate cluster index -> spec index via subspace identity
        for spec_index, spec in enumerate(two_cluster_dataset.clusters):
            [cluster_index] = [i for i, c in enumerate(res.clusters)
                               if c.subspace.dims == spec.dims]
            truth = two_cluster_dataset.labels == spec_index
            got = labels == cluster_index
            agreement = (truth & got).sum() / truth.sum()
            assert agreement > 0.95

    def test_outliers_stay_unlabelled(self, two_cluster_dataset):
        from repro.analysis import assign_records
        res = mafia(two_cluster_dataset.records,
                    MafiaParams(chunk_records=5000), domains=DOMAINS_10D)
        corner = np.full((5, 10), 99.5)
        labels = assign_records(res, corner)
        assert (labels == -1).all()

    def test_higher_cluster_wins_ties(self):
        from repro.analysis import assign_records
        from repro.core.result import ClusteringResult
        grid = mafia(np.random.default_rng(0).random((200, 3)) * 100,
                     MafiaParams(fine_bins=20, window_size=2,
                                 chunk_records=100)).grid
        low = simple_cluster([0], [(0.0, 50.0)])
        high = simple_cluster([0, 1], [(0.0, 50.0), (0.0, 50.0)])
        fake = ClusteringResult(grid=grid, clusters=(high, low), trace=(),
                                params=MafiaParams(), n_records=200)
        labels = assign_records(fake, np.array([[10.0, 10.0, 0.0],
                                                [10.0, 90.0, 0.0]]))
        assert labels.tolist() == [0, 1]

    def test_tie_break_validation(self, two_cluster_dataset):
        from repro.analysis import assign_records
        from repro.errors import DataError
        res = mafia(two_cluster_dataset.records,
                    MafiaParams(chunk_records=5000), domains=DOMAINS_10D)
        with pytest.raises(DataError):
            assign_records(res, two_cluster_dataset.records,
                           tie_break="random")
