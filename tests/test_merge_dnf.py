"""Tests for cluster merging and DNF construction
(repro.core.{merge,dnf})."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dnf import (dnf_terms, greedy_cover, grow_box, maximal_mask,
                            projections)
from repro.core.merge import UnionFind, face_adjacent_components
from repro.core.units import UnitTable
from repro.errors import DataError
from repro.types import DimensionGrid, Grid, Subspace


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert len(set(uf.labels().tolist())) == 4

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.union(3, 4)
        assert not uf.union(1, 0)  # already joined
        labels = uf.labels()
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3] != labels[2]

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(2, 3)
        assert len(set(uf.labels().tolist())) == 1

    def test_labels_first_appearance_order(self):
        uf = UnionFind(3)
        uf.union(1, 2)
        assert uf.labels().tolist() == [0, 1, 1]

    def test_negative_size_rejected(self):
        with pytest.raises(DataError):
            UnionFind(-1)


class TestFaceAdjacency:
    def test_adjacent_bins_connect(self):
        bins = np.array([[0, 0], [1, 0], [2, 0]])
        assert len(set(face_adjacent_components(bins).tolist())) == 1

    def test_diagonal_is_not_a_face(self):
        """§3: connectivity needs a common face — diagonal neighbours
        (differing in two coordinates) are separate."""
        bins = np.array([[0, 0], [1, 1]])
        assert len(set(face_adjacent_components(bins).tolist())) == 2

    def test_gap_disconnects(self):
        bins = np.array([[0], [1], [3], [4]])
        labels = face_adjacent_components(bins)
        assert labels[0] == labels[1] and labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_connected_through_common_cell(self):
        """Two cells connected transitively via a middle cell."""
        bins = np.array([[0, 0], [0, 1], [1, 1]])
        assert len(set(face_adjacent_components(bins).tolist())) == 1

    def test_l_shape_single_component(self):
        bins = np.array([[0, 0], [1, 0], [2, 0], [2, 1], [2, 2]])
        assert len(set(face_adjacent_components(bins).tolist())) == 1

    def test_single_and_empty(self):
        assert face_adjacent_components(np.array([[3, 3]])).tolist() == [0]
        assert face_adjacent_components(np.empty((0, 2))).size == 0

    def test_shape_validation(self):
        with pytest.raises(DataError):
            face_adjacent_components(np.array([1, 2, 3]))


class TestGrowBoxAndCover:
    def test_grow_full_rectangle(self):
        cells = {(i, j) for i in range(2, 5) for j in range(1, 3)}
        assert grow_box(cells, (3, 1)) == ((2, 4), (1, 2))

    def test_grow_blocked_by_missing_cell(self):
        cells = {(0, 0), (1, 0), (0, 1)}  # L-shape
        box = grow_box(cells, (0, 0))
        assert box in (((0, 1), (0, 0)), ((0, 0), (0, 1)))

    def test_seed_must_be_member(self):
        with pytest.raises(DataError):
            grow_box({(0, 0)}, (5, 5))

    def test_cover_covers_all_cells(self):
        bins = np.array([[0, 0], [1, 0], [0, 1], [2, 2]])
        boxes = greedy_cover(bins)
        covered = set()
        from itertools import product
        for box in boxes:
            covered |= set(product(*(range(lo, hi + 1) for lo, hi in box)))
        assert covered >= {tuple(r) for r in bins.tolist()}

    def test_rectangle_covered_by_one_box(self):
        bins = np.array([[i, j] for i in range(3) for j in range(4)])
        assert greedy_cover(bins) == [((0, 2), (0, 3))]

    def test_1d_runs(self):
        bins = np.array([[0], [1], [2], [7], [8]])
        assert sorted(greedy_cover(bins)) == [((0, 2),), ((7, 8),)]


class TestDnfTerms:
    def make_grid(self):
        return Grid(dims=(
            DimensionGrid(dim=0, edges=(0., 10., 20., 30.),
                          thresholds=(1., 1., 1.)),
            DimensionGrid(dim=1, edges=(0., 5., 50.), thresholds=(1., 1.)),
        ))

    def test_intervals_map_through_grid_edges(self):
        grid = self.make_grid()
        terms = dnf_terms(grid, Subspace((0, 1)), np.array([[1, 0], [2, 0]]))
        assert len(terms) == 1
        assert terms[0].intervals == ((10.0, 30.0), (0.0, 5.0))

    def test_disjoint_regions_give_multiple_terms(self):
        grid = self.make_grid()
        terms = dnf_terms(grid, Subspace((0,)), np.array([[0], [2]]))
        assert len(terms) == 2


class TestProjectionsAndMaximal:
    def test_projections_drop_each_dim(self):
        t = UnitTable.from_pairs([[(0, 1), (2, 3), (5, 7)]])
        proj = projections(t)
        got = set(proj)
        assert got == {((0, 1), (2, 3)), ((0, 1), (5, 7)), ((2, 3), (5, 7))}

    def test_projections_level1_rejected(self):
        with pytest.raises(DataError):
            projections(UnitTable.from_pairs([[(0, 1)]]))

    def test_maximal_mask_filters_covered_units(self):
        lower = UnitTable.from_pairs([[(0, 1), (2, 3)],   # covered
                                      [(0, 9), (2, 9)]])  # not covered
        higher = UnitTable.from_pairs([[(0, 1), (2, 3), (5, 7)]])
        np.testing.assert_array_equal(maximal_mask(lower, higher),
                                      [False, True])

    def test_maximal_mask_none_higher(self):
        lower = UnitTable.from_pairs([[(0, 1)]])
        assert maximal_mask(lower, None).all()
        assert maximal_mask(lower, UnitTable.empty(2)).all()

    def test_level_mismatch_rejected(self):
        lower = UnitTable.from_pairs([[(0, 1)]])
        higher = UnitTable.from_pairs([[(0, 1), (1, 1), (2, 2)]])
        with pytest.raises(DataError):
            maximal_mask(lower, higher)
