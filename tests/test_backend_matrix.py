"""Cross-backend/equivalence matrix and order-invariance guarantees.

The strongest correctness statement the substrate can make: the same
data produces byte-identical clusterings across every execution mode
(serial / threads / processes / simulated time, flat or tree
collectives, in-memory or staged-from-disk), and independent of record
order — pMAFIA is a counting algorithm, so §5.1's record permutation
must never change the result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MafiaParams, mafia, pmafia
from repro.core.pmafia import pmafia_rank
from repro.io import write_records
from repro.parallel import run_spmd
from tests.conftest import DOMAINS_10D


def fingerprint(result):
    return (
        result.cdus_per_level(),
        result.dense_per_level(),
        tuple(c.describe() for c in result.clusters),
        tuple(c.point_count for c in result.clusters),
    )


@pytest.fixture(scope="module")
def reference(one_cluster_dataset, small_params):
    return fingerprint(mafia(one_cluster_dataset.records, small_params,
                             domains=DOMAINS_10D))


class TestBackendMatrix:
    @pytest.mark.parametrize("backend,nprocs", [
        ("thread", 2), ("thread", 5), ("sim", 3), ("process", 2)])
    @pytest.mark.parametrize("collectives", ["flat", "tree"])
    def test_all_modes_identical(self, one_cluster_dataset, small_params,
                                 reference, backend, nprocs, collectives):
        ranks = run_spmd(pmafia_rank, nprocs, backend=backend,
                         collectives=collectives,
                         args=(one_cluster_dataset.records, small_params,
                               DOMAINS_10D))
        for rank in ranks:
            assert fingerprint(rank.value) == reference

    def test_file_vs_array_identical(self, tmp_path, one_cluster_dataset,
                                     small_params, reference):
        shared = tmp_path / "m.bin"
        write_records(shared, one_cluster_dataset.records)
        run = pmafia(shared, 3, small_params, domains=DOMAINS_10D)
        assert fingerprint(run.result) == reference

    def test_chunk_size_invariant(self, one_cluster_dataset, small_params,
                                  reference):
        for chunk in (137, 999, 10**6):
            res = mafia(one_cluster_dataset.records,
                        small_params.with_(chunk_records=chunk),
                        domains=DOMAINS_10D)
            assert fingerprint(res) == reference


class TestOrderInvariance:
    def test_record_permutation_changes_nothing(self, one_cluster_dataset,
                                                small_params, reference):
        rng = np.random.default_rng(99)
        for _ in range(3):
            shuffled = one_cluster_dataset.records[
                rng.permutation(one_cluster_dataset.n_records)]
            res = mafia(shuffled, small_params, domains=DOMAINS_10D)
            assert fingerprint(res) == reference

    def test_sorted_input_changes_nothing(self, one_cluster_dataset,
                                          small_params, reference):
        """Adversarial order: records sorted by the first cluster
        dimension (each rank's block sees a skewed value range)."""
        ordered = one_cluster_dataset.records[
            np.argsort(one_cluster_dataset.records[:, 1])]
        res = mafia(ordered, small_params, domains=DOMAINS_10D)
        assert fingerprint(res) == reference
        run = pmafia(ordered, 4, small_params, domains=DOMAINS_10D)
        assert fingerprint(run.result) == reference
