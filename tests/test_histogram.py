"""Tests for the histogram / domain passes (repro.core.histogram)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import (fine_histogram_global, fine_histogram_local,
                                  global_domains, local_domains)
from repro.errors import DataError
from repro.io import ArraySource
from repro.parallel import SerialComm, run_spmd


@pytest.fixture
def data():
    rng = np.random.default_rng(5)
    return rng.random((2000, 3)) * np.array([100.0, 10.0, 1.0])


class TestDomains:
    def test_local_domains_match_minmax(self, data):
        src = ArraySource(data)
        dom = local_domains(src, SerialComm(), 500)
        np.testing.assert_allclose(dom[:, 0], data.min(axis=0))
        np.testing.assert_allclose(dom[:, 1], data.max(axis=0))

    def test_global_domains_pads_upper_edge(self, data):
        dom = global_domains(ArraySource(data), SerialComm(), 500)
        assert (dom[:, 1] > data.max(axis=0)).all()

    def test_degenerate_dimension_widened(self):
        const = np.full((100, 1), 7.0)
        dom = global_domains(ArraySource(const), SerialComm(), 50)
        assert dom[0, 1] > dom[0, 0]

    def test_parallel_matches_serial(self, data):
        serial = global_domains(ArraySource(data), SerialComm(), 500)

        def prog(comm):
            from repro.io import block_range
            start, stop = block_range(len(data), comm.size, comm.rank)
            return global_domains(ArraySource(data), comm, 500, start, stop)

        for r in run_spmd(prog, 4):
            np.testing.assert_allclose(r.value, serial)

    def test_empty_data_rejected(self):
        with pytest.raises(DataError):
            global_domains(ArraySource(np.empty((0, 2))), SerialComm(), 10)


class TestFineHistogram:
    def test_counts_sum_to_records(self, data):
        dom = global_domains(ArraySource(data), SerialComm(), 500)
        hist = fine_histogram_local(ArraySource(data), SerialComm(), dom,
                                    50, 512)
        assert hist.shape == (3, 50)
        assert (hist.sum(axis=1) == 2000).all()

    def test_matches_numpy_histogram(self, data):
        dom = global_domains(ArraySource(data), SerialComm(), 500)
        hist = fine_histogram_local(ArraySource(data), SerialComm(), dom,
                                    64, 999)
        for j in range(3):
            ref, _ = np.histogram(data[:, j], bins=64,
                                  range=(dom[j, 0], dom[j, 1]))
            np.testing.assert_array_equal(hist[j], ref)

    def test_chunking_invariant(self, data):
        dom = global_domains(ArraySource(data), SerialComm(), 500)
        a = fine_histogram_local(ArraySource(data), SerialComm(), dom, 32, 100)
        b = fine_histogram_local(ArraySource(data), SerialComm(), dom, 32, 2000)
        np.testing.assert_array_equal(a, b)

    def test_global_equals_serial_under_spmd(self, data):
        dom = global_domains(ArraySource(data), SerialComm(), 500)
        serial = fine_histogram_global(ArraySource(data), SerialComm(), dom,
                                       40, 512)

        def prog(comm):
            from repro.io import block_range
            start, stop = block_range(len(data), comm.size, comm.rank)
            return fine_histogram_global(ArraySource(data), comm, dom, 40,
                                         512, start, stop)

        for r in run_spmd(prog, 3):
            np.testing.assert_array_equal(r.value, serial)

    def test_validation(self, data):
        src = ArraySource(data)
        with pytest.raises(DataError):
            fine_histogram_local(src, SerialComm(), np.zeros((2, 2)), 10, 100)
        dom = global_domains(src, SerialComm(), 500)
        with pytest.raises(DataError):
            fine_histogram_local(src, SerialComm(), dom, 0, 100)
        bad = dom.copy()
        bad[0, 1] = bad[0, 0]
        with pytest.raises(DataError):
            fine_histogram_local(src, SerialComm(), bad, 10, 100)
