"""Targeted tests for less-travelled branches across the library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dnf as dnf_mod
from repro.core.dnf import merged_mask
from repro.core.units import UnitTable
from repro.datagen import ICG
from repro.errors import CommError, DataError, ParameterError
from repro.io import RecordFile, stage_local, write_records
from repro.parallel import SerialComm, run_spmd
from tests.conftest import DOMAINS_10D


class TestUnitTableEdges:
    def test_concat_all_empty_list_rejected(self):
        with pytest.raises(DataError):
            UnitTable.concat_all([])

    def test_concat_all_skips_none(self):
        t = UnitTable.from_pairs([[(0, 1)]])
        assert UnitTable.concat_all([None, t, None]) == t

    def test_empty_table_ops(self):
        t = UnitTable.empty(2)
        assert t.repeat_mask().size == 0
        assert t.unique() == t
        assert t.sort().n_units == 0
        assert t.group_by_subspace() == {}
        assert list(t) == []


class TestStagingRecovery:
    def test_corrupted_local_copy_is_rebuilt(self, tmp_path):
        rng = np.random.default_rng(1)
        records = rng.random((100, 3))
        shared = tmp_path / "s.bin"
        write_records(shared, records)
        comm = SerialComm()
        local = stage_local(comm, shared, tmp_path)
        # corrupt the local copy
        local.path.write_bytes(b"garbage")
        rebuilt = stage_local(comm, shared, tmp_path)
        np.testing.assert_allclose(rebuilt.read_all(), records)

    def test_stale_local_copy_with_wrong_shape_is_rebuilt(self, tmp_path):
        rng = np.random.default_rng(2)
        shared = tmp_path / "s.bin"
        write_records(shared, rng.random((100, 3)))
        comm = SerialComm()
        first = stage_local(comm, shared, tmp_path)
        # shared file replaced by one with more records
        write_records(shared, rng.random((200, 3)))
        second = stage_local(comm, shared, tmp_path)
        assert second.n_records == 200


class TestRecordFileChunkValidation:
    def test_zero_chunk_rejected(self, tmp_path):
        write_records(tmp_path / "r.bin", np.ones((5, 2)))
        rf = RecordFile(tmp_path / "r.bin")
        with pytest.raises(DataError):
            list(rf.iter_chunks(0))
        with pytest.raises(DataError):
            list(rf.iter_chunks(2, start=3, stop=10))


class TestIcgEdges:
    def test_negative_randoms_rejected(self):
        with pytest.raises(ParameterError):
            ICG(seed=1).randoms(-1)

    def test_integers_high_validation(self):
        with pytest.raises(ParameterError):
            ICG(seed=1).integers(5, 0)

    def test_iterator_protocol(self):
        gen = ICG(seed=4)
        it = iter(gen)
        values = [next(it) for _ in range(5)]
        assert all(0 <= v < 1 for v in values)


class TestMergedMaskFallback:
    def test_neighbour_limit_degrades_gracefully(self, monkeypatch):
        """Beyond the expansion budget, suppression becomes axis-partial
        (more conservative) but never marks projections as maximal."""
        monkeypatch.setattr(dnf_mod, "_NEIGHBOUR_LIMIT", 1)
        higher = UnitTable.from_pairs([[(0, 3), (1, 3), (2, 3)]])
        from repro.core.dnf import projections
        lower = projections(higher).unique()
        mask = merged_mask(lower, higher)
        assert not mask.any()  # exact projections always suppressed


class TestRunSpmdEdges:
    def test_kwargs_default_not_shared(self):
        # mutating kwargs inside must not leak between calls
        def prog(comm, **kw):
            kw["x"] = comm.rank
            return kw

        a = run_spmd(prog, 1, backend="serial")
        b = run_spmd(prog, 1, backend="serial")
        assert a[0].value == {"x": 0} and b[0].value == {"x": 0}

    def test_process_backend_zero_ranks_rejected(self):
        from repro.parallel.process import run_processes
        with pytest.raises(CommError):
            run_processes(lambda c: None, 0)


class TestCliNewFlags:
    def test_report_maximal_flag(self, tmp_path, one_cluster_dataset,
                                  capsys):
        from repro.cli import main
        path = tmp_path / "d.bin"
        write_records(path, one_cluster_dataset.records)
        rc = main(["run", str(path), "--fine-bins", "200", "--window", "2",
                   "--chunk", "2000", "--report", "maximal"])
        assert rc == 0
        assert "(1, 3, 5, 7)" in capsys.readouterr().out

    def test_tree_collectives_flag(self, tmp_path, one_cluster_dataset,
                                   capsys):
        from repro.cli import main
        path = tmp_path / "d.bin"
        write_records(path, one_cluster_dataset.records)
        rc = main(["run", str(path), "--procs", "2", "--fine-bins", "200",
                   "--window", "2", "--chunk", "2000",
                   "--collectives", "tree"])
        assert rc == 0
        assert "clusters: 1" in capsys.readouterr().out


class TestExportMaximalMode:
    def test_roundtrip_preserves_report_mode(self, one_cluster_dataset,
                                             small_params):
        from repro import mafia
        from repro.core.export import result_from_dict, result_to_dict
        res = mafia(one_cluster_dataset.records,
                    small_params.with_(report="maximal"),
                    domains=DOMAINS_10D)
        back = result_from_dict(result_to_dict(res))
        assert back.params.report == "maximal"
