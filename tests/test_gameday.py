"""The chaos gameday: scenario loading, budgets, and the shipped
catalogue run end to end against a fault-free baseline."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.mafia import mafia
from repro.errors import ParameterError
from repro.gameday import (ChaosScenario, GamedayResult, load_scenario,
                           load_scenarios, results_identical, run_gameday,
                           write_recovery_trace)
from repro.parallel.faults import CrashPoint, FaultPlan

from .conftest import DOMAINS_10D

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "scenarios"


class TestScenarioLoading:

    def test_catalogue_loads(self):
        scenarios = load_scenarios(SCENARIO_DIR)
        names = {s.name for s in scenarios}
        assert {"kill-populate", "kill-rank0-join", "hard-kill-dedup",
                "stalled-rank", "eio-storm",
                "permanent-rank-loss"} <= names
        # every shipped scenario carries a positive budget and a plan
        for s in scenarios:
            assert s.rto_budget_seconds > 0
            assert s.faults is not None
            assert s.description

    def test_file_name_matches_scenario_name(self):
        for path in sorted(SCENARIO_DIR.glob("*.json")):
            assert load_scenario(path).name == path.stem

    def test_round_trip_through_fault_plan_dict(self):
        plan = FaultPlan(crashes=(CrashPoint(rank=1, site="populate",
                                             level=2, hard=True),))
        scenario = ChaosScenario.from_dict({
            "name": "x", "faults": plan.to_dict()})
        assert scenario.faults == plan

    def test_unknown_field_rejected(self):
        with pytest.raises(ParameterError, match="unknown fields"):
            ChaosScenario.from_dict({"name": "x", "banana": 1})

    def test_unknown_version_rejected(self):
        with pytest.raises(ParameterError, match="version"):
            ChaosScenario.from_dict({"name": "x", "version": 99})

    def test_bad_recovery_mode_rejected(self):
        with pytest.raises(ParameterError, match="recovery"):
            ChaosScenario(name="x", recovery="prayer")

    def test_bad_budget_rejected(self):
        with pytest.raises(ParameterError, match="rto_budget"):
            ChaosScenario(name="x", rto_budget_seconds=0.0)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="no scenario files"):
            load_scenarios(tmp_path)


class TestResultsIdentical:

    def test_same_result_is_identical(self, one_cluster_dataset,
                                      small_params):
        result = mafia(one_cluster_dataset.records, small_params,
                       DOMAINS_10D)
        assert results_identical(result, result)

    def test_different_params_diverge(self, one_cluster_dataset,
                                      small_params):
        a = mafia(one_cluster_dataset.records, small_params, DOMAINS_10D)
        b = mafia(one_cluster_dataset.records,
                  small_params.with_(alpha=20.0), DOMAINS_10D)
        assert not results_identical(a, b)


@pytest.mark.fault
class TestGamedayRuns:
    """Execute the shipped catalogue — the same suite CI's gameday job
    runs — on the session-scoped small workload."""

    @pytest.fixture(scope="class")
    def reference(self, one_cluster_dataset, small_params):
        return mafia(one_cluster_dataset.records, small_params,
                     DOMAINS_10D)

    @pytest.mark.parametrize(
        "scenario_name",
        ["kill-populate", "kill-rank0-join", "hard-kill-dedup",
         "stalled-rank", "eio-storm", "permanent-rank-loss"])
    def test_scenario_passes_budget(self, tmp_path, scenario_name,
                                    reference, one_cluster_dataset,
                                    small_params):
        scenario = load_scenario(SCENARIO_DIR / f"{scenario_name}.json")
        outcome = run_gameday(scenario, one_cluster_dataset.records,
                              small_params, checkpoint_dir=tmp_path,
                              baseline=reference, domains=DOMAINS_10D)
        assert outcome.error is None
        assert outcome.identical, \
            f"{scenario_name} diverged from the fault-free reference"
        assert outcome.ok
        assert outcome.recovery_seconds <= scenario.rto_budget_seconds
        if scenario.recovery == "supervised":
            assert outcome.events  # at least one recovery round recorded

    def test_budget_violation_fails_scenario(self, tmp_path, reference,
                                             one_cluster_dataset,
                                             small_params):
        """An absurd 1 ms budget must flip ok to False even though the
        run itself recovers fine."""
        base = load_scenario(SCENARIO_DIR / "permanent-rank-loss.json")
        from dataclasses import replace
        scenario = replace(base, rto_budget_seconds=0.001)
        outcome = run_gameday(scenario, one_cluster_dataset.records,
                              small_params, checkpoint_dir=tmp_path,
                              baseline=reference, domains=DOMAINS_10D)
        assert outcome.identical and not outcome.ok

    def test_trace_artifact_shape(self, tmp_path, reference,
                                  one_cluster_dataset, small_params):
        scenario = load_scenario(SCENARIO_DIR / "kill-populate.json")
        outcome = run_gameday(scenario, one_cluster_dataset.records,
                              small_params,
                              checkpoint_dir=tmp_path / "ckpt",
                              baseline=reference, domains=DOMAINS_10D)
        out = tmp_path / "trace.json"
        write_recovery_trace(out, [outcome])
        payload = json.loads(out.read_text())
        assert payload["passed"] == 1 and payload["failed"] == 0
        (entry,) = payload["scenarios"]
        assert entry["scenario"] == "kill-populate"
        assert entry["ok"] and entry["identical"]
        assert entry["events"][0]["rank"] == 1
        assert entry["rto_budget_seconds"] == 45.0

    def test_unexpected_error_reported_not_raised(self, tmp_path,
                                                  reference,
                                                  one_cluster_dataset,
                                                  small_params):
        """A scenario whose fault the chosen mode cannot absorb reports
        a failure instead of crashing the whole gameday."""
        scenario = ChaosScenario(
            name="unabsorbed", recovery="none", rto_budget_seconds=60.0,
            faults=FaultPlan(crashes=(CrashPoint(rank=1),)),
            recv_timeout=15.0)
        outcome = run_gameday(scenario, one_cluster_dataset.records,
                              small_params, checkpoint_dir=tmp_path,
                              baseline=reference, domains=DOMAINS_10D)
        assert not outcome.ok
        assert outcome.error is not None


def test_gameday_result_summary_lines():
    scenario = ChaosScenario(name="demo", recovery="restart",
                             rto_budget_seconds=10.0)
    good = GamedayResult(scenario=scenario, ok=True, identical=True,
                         recovery_seconds=0.5, wall_seconds=1.0)
    assert good.summary().startswith("PASS")
    bad = GamedayResult(scenario=scenario, ok=False, identical=False,
                        recovery_seconds=0.5, wall_seconds=1.0)
    assert "diverged" in bad.summary()
