"""Property-based tests: adaptive grid invariants, communicator
collectives, payload sizing, generator invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.adaptive_grid import build_dimension_grid, merge_windows, window_maxima
from repro.datagen import ClusterSpec, generate
from repro.params import MafiaParams
from repro.parallel import run_spmd
from repro.parallel.simtime import payload_nbytes


class TestGridProperties:
    @given(hnp.arrays(np.int64, st.integers(10, 120),
                      elements=st.integers(0, 10_000)),
           st.integers(1, 10),
           st.floats(0.05, 0.95))
    @settings(max_examples=80, deadline=None)
    def test_bins_partition_domain(self, fine, window, beta):
        params = MafiaParams(fine_bins=len(fine), window_size=min(window, len(fine)),
                             beta=beta)
        dg = build_dimension_grid(0, fine, (0.0, 100.0), max(int(fine.sum()), 1),
                                  params)
        edges = np.asarray(dg.edges)
        assert edges[0] == 0.0 and edges[-1] == 100.0
        assert (np.diff(edges) > 0).all()
        assert len(dg.thresholds) == dg.nbins

    @given(hnp.arrays(np.int64, st.integers(10, 120),
                      elements=st.integers(0, 10_000)),
           st.floats(0.05, 0.95))
    @settings(max_examples=80, deadline=None)
    def test_thresholds_proportional_to_width(self, fine, beta):
        n = max(int(fine.sum()), 1)
        params = MafiaParams(fine_bins=len(fine), window_size=5, beta=beta,
                             alpha=1.5)
        dg = build_dimension_grid(0, fine, (0.0, 50.0), n, params)
        for b in dg.bins():
            assert b.threshold == (
                (params.alpha * (params.uniform_alpha_boost if dg.uniform else 1.0))
                * n * b.width / 50.0)

    @given(hnp.arrays(np.int64, st.integers(2, 100),
                      elements=st.integers(0, 1000)),
           st.floats(0.05, 0.95))
    @settings(max_examples=80, deadline=None)
    def test_merge_ranges_partition_windows(self, values, beta):
        ranges = merge_windows(values, beta)
        assert ranges[0][0] == 0 and ranges[-1][1] == len(values)
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c and a < b

    @given(hnp.arrays(np.int64, st.integers(1, 100),
                      elements=st.integers(0, 1000)),
           st.integers(1, 10))
    @settings(max_examples=80, deadline=None)
    def test_window_maxima_bound_input(self, counts, w):
        wm = window_maxima(counts, w)
        assert wm.max() == counts.max()
        assert len(wm) == -(-len(counts) // w)


class TestCommProperties:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=6),
           st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_allreduce_sum_matches_numpy(self, base, p):
        arrays = [np.array(base) * (r + 1) for r in range(p)]

        def prog(comm):
            return comm.allreduce(arrays[comm.rank], op="sum")

        expected = np.sum(arrays, axis=0)
        for r in run_spmd(prog, p):
            np.testing.assert_array_equal(r.value, expected)

    @given(st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_allgather_order_invariant(self, p):
        def prog(comm):
            return comm.allgather(comm.rank ** 2)

        for r in run_spmd(prog, p):
            assert r.value == [i ** 2 for i in range(p)]


class TestPayloadProperties:
    @given(st.recursive(
        st.one_of(st.none(), st.integers(), st.floats(allow_nan=False),
                  st.text(max_size=20), st.binary(max_size=40)),
        lambda children: st.lists(children, max_size=4),
        max_leaves=12))
    @settings(max_examples=80, deadline=None)
    def test_payload_positive_and_monotone_in_nesting(self, obj):
        size = payload_nbytes(obj)
        assert size > 0
        assert payload_nbytes([obj]) > size


class TestGeneratorProperties:
    @given(st.integers(50, 400), st.integers(2, 6),
           st.floats(0.0, 0.3), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_all_records_in_domain(self, n, d, noise, seed):
        spec = ClusterSpec.box([0], [(20, 40)])
        ds = generate(n, d, [spec], noise_fraction=noise, seed=seed)
        assert ds.records.shape[1] == d
        assert (ds.records >= 0).all() and (ds.records <= 100).all()
        assert ds.records.shape[0] == n + int(round(noise * n))

    @given(st.integers(100, 500), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_cluster_members_respect_extents(self, n, seed):
        spec = ClusterSpec.box([1, 2], [(10, 30), (60, 90)])
        ds = generate(n, 4, [spec], seed=seed)
        members = ds.cluster_records(0)
        assert (members[:, 1] >= 10).all() and (members[:, 1] <= 30).all()
        assert (members[:, 2] >= 60).all() and (members[:, 2] <= 90).all()
