"""End-to-end tests on non-rectangular (union-of-box) clusters.

The paper's generator supports "arbitrary shapes instead of just
hyper-rectangular regions" (§5.1) and Figure 1.2 shows pMAFIA covering
such a cluster with a multi-rectangle minimal DNF.  These tests verify
the whole pipeline on an L-shaped cluster — including the density
physics: an arm is recoverable only while its *1-D projection* stays
α-fold above uniform, which is exactly how a density/grid method is
supposed to behave.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MafiaParams, mafia
from repro.analysis import points_in_cluster
from repro.datagen import ClusterSpec, generate

DOMS = np.array([[0.0, 100.0]] * 6)
PARAMS = MafiaParams(fine_bins=200, window_size=2, chunk_records=6000)


@pytest.fixture(scope="module")
def compact_L():
    """A compact L in dims (2, 5): both arms project densely."""
    spec = ClusterSpec(dims=(2, 5), boxes=(
        ((10.0, 30.0), (10.0, 16.0)),   # horizontal arm
        ((10.0, 16.0), (10.0, 30.0)),   # vertical arm
    ))
    return generate(30_000, 6, [spec], seed=13)


class TestCompactL:
    def test_single_cluster_right_subspace(self, compact_L):
        res = mafia(compact_L.records, PARAMS, domains=DOMS)
        assert [c.subspace.dims for c in res.clusters] == [(2, 5)]

    def test_multi_unit_connected_cluster(self, compact_L):
        res = mafia(compact_L.records, PARAMS, domains=DOMS)
        [cluster] = res.clusters
        # corner + two arms = at least 3 face-connected dense units
        assert cluster.n_units >= 3

    def test_dnf_is_multi_rectangle(self, compact_L):
        """Figure 1.2(b): the cluster reports as a DNF of more than one
        rectangle — one per arm — with boundaries near the truth."""
        res = mafia(compact_L.records, PARAMS, domains=DOMS)
        [cluster] = res.clusters
        assert len(cluster.dnf) >= 2
        # the union of rectangles covers the arms' far ends
        assert cluster.contains([0, 0, 28.0, 0, 0, 12.0])  # horizontal tip
        assert cluster.contains([0, 0, 12.0, 0, 0, 28.0])  # vertical tip
        # but not the empty quadrant diagonal from the corner
        assert not cluster.contains([0, 0, 28.0, 0, 0, 28.0])

    def test_point_recall(self, compact_L):
        res = mafia(compact_L.records, PARAMS, domains=DOMS)
        [cluster] = res.clusters
        member = points_in_cluster(cluster, compact_L.records)
        truth = compact_L.labels == 0
        recall = (member & truth).sum() / truth.sum()
        assert recall > 0.95

    def test_parallel_agrees(self, compact_L):
        from repro import pmafia
        serial = mafia(compact_L.records, PARAMS, domains=DOMS)
        run = pmafia(compact_L.records, 4, PARAMS, domains=DOMS)
        assert [c.describe() for c in run.result.clusters] == \
            [c.describe() for c in serial.clusters]


class TestDilutedL:
    def test_long_thin_arms_reduce_to_dense_core(self):
        """An L whose long arms dilute their own 1-D projections below
        α x uniform: the density-based method keeps only the region
        that is actually dense in projection (the corner).  This is the
        documented limitation of *any* grid/density subspace method,
        not an implementation artefact."""
        spec = ClusterSpec(dims=(2, 5), boxes=(
            ((10.0, 50.0), (10.0, 24.0)),
            ((10.0, 24.0), (10.0, 60.0)),
        ))
        ds = generate(30_000, 6, [spec], seed=13)
        res = mafia(ds.records, PARAMS, domains=DOMS)
        assert len(res.clusters) == 1
        [cluster] = res.clusters
        assert cluster.subspace.dims == (2, 5)
        # the dense corner survives ...
        assert cluster.contains([0, 0, 15.0, 0, 0, 15.0])
        # ... the diluted arm tips do not
        assert not cluster.contains([0, 0, 45.0, 0, 0, 15.0])
