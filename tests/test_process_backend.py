"""Tests for the multi-process SPMD backend (repro.parallel.process).

Kept small: each test forks real OS processes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MafiaParams, mafia, pmafia
from repro.errors import CommError
from repro.parallel import run_spmd
from tests.conftest import DOMAINS_10D

# module-level so they pickle for the child processes


def _echo_rank(comm):
    return comm.rank


def _ring(comm):
    nxt = (comm.rank + 1) % comm.size
    prev = (comm.rank - 1) % comm.size
    comm.send(comm.rank * 2, nxt, tag=5)
    return comm.recv(prev, tag=5)


def _collectives(comm):
    total = comm.allreduce(np.array([comm.rank + 1]), op="sum")
    gathered = comm.allgather(comm.rank ** 2)
    root_pick = comm.bcast("hello" if comm.rank == 1 else None, root=1)
    return int(total[0]), gathered, root_pick


def _crash_on_rank_one(comm):
    if comm.rank == 1:
        raise ValueError("child exploded")
    return comm.rank


class TestProcessBackend:
    def test_rank_results_in_order(self):
        results = run_spmd(_echo_rank, 3, backend="process")
        assert [r.value for r in results] == [0, 1, 2]

    def test_point_to_point_ring(self):
        results = run_spmd(_ring, 4, backend="process")
        assert [r.value for r in results] == [6, 0, 2, 4]

    def test_collectives(self):
        results = run_spmd(_collectives, 3, backend="process")
        for total, gathered, root_pick in (r.value for r in results):
            assert total == 6
            assert gathered == [0, 1, 4]
            assert root_pick == "hello"

    def test_tree_collectives(self):
        results = run_spmd(_collectives, 4, backend="process",
                           collectives="tree")
        for total, gathered, root_pick in (r.value for r in results):
            assert total == 10
            assert gathered == [0, 1, 4, 9]

    def test_child_crash_propagates(self):
        with pytest.raises(CommError, match="child exploded"):
            run_spmd(_crash_on_rank_one, 3, backend="process")

    def test_pmafia_process_backend_matches_serial(self, one_cluster_dataset,
                                                   small_params):
        serial = mafia(one_cluster_dataset.records, small_params,
                       domains=DOMAINS_10D)
        run = pmafia(one_cluster_dataset.records, 2, small_params,
                     backend="process", domains=DOMAINS_10D)
        assert [c.describe() for c in run.result.clusters] == \
            [c.describe() for c in serial.clusters]
        assert run.result.dense_per_level() == serial.dense_per_level()

    def test_pmafia_process_backend_from_file(self, tmp_path,
                                              one_cluster_dataset,
                                              small_params):
        """The recommended large-data path: pass a record-file path so
        ranks stage blocks from disk instead of pickling the array."""
        from repro.io import write_records
        shared = tmp_path / "shared.bin"
        write_records(shared, one_cluster_dataset.records)
        run = pmafia(shared, 2, small_params, domains=DOMAINS_10D)
        proc = pmafia(shared, 2, small_params, backend="process",
                      domains=DOMAINS_10D)
        assert [c.describe() for c in proc.result.clusters] == \
            [c.describe() for c in run.result.clusters]

def _crash_on(comm, crasher):
    if comm.rank == crasher:
        raise RuntimeError(f"rank {crasher} exploded")
    comm.allreduce(np.zeros(2))
    return comm.rank


def _silent_peer(comm):
    if comm.rank == 1:
        return comm.recv(0, tag=8)  # rank 0 never sends
    return None


class TestProcessFailures:
    @pytest.mark.parametrize("crasher", [0, 1, 2])
    def test_any_rank_crash_aborts_run(self, crasher):
        """A crash on any child process surfaces as CommError on the
        parent instead of hanging the surviving ranks."""
        import time
        start = time.monotonic()
        with pytest.raises(CommError,
                           match=f"rank {crasher} exploded"):
            run_spmd(_crash_on, 3, backend="process",
                     args=(crasher,))
        assert time.monotonic() - start < 60

    def test_recv_timeout_raises_typed_error(self):
        from repro.errors import CommTimeoutError
        with pytest.raises(CommTimeoutError, match="timed out receiving"):
            run_spmd(_silent_peer, 2, backend="process", recv_timeout=1.0)
