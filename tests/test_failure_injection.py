"""Failure injection: corrupted inputs, crashing ranks, bad payloads.

The SPMD substrate must fail loudly and promptly — a crashed rank
aborts its peers instead of deadlocking the program — and the library
must reject malformed data before it poisons a multi-hour run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import MafiaParams, mafia, pmafia
from repro.core.units import UnitTable
from repro.errors import CommError, DataError, RecordFileError
from repro.io import write_records
from repro.parallel import run_spmd
from tests.conftest import DOMAINS_10D


class TestCrashingRanks:
    @pytest.mark.parametrize("crasher", [0, 1, 2])
    def test_any_rank_crash_propagates(self, crasher):
        def prog(comm):
            if comm.rank == crasher:
                raise RuntimeError(f"rank {crasher} died")
            # peers block on a collective that can never complete
            comm.allreduce(np.zeros(4))

        start = time.monotonic()
        with pytest.raises(RuntimeError, match=f"rank {crasher} died"):
            run_spmd(prog, 3)
        assert time.monotonic() - start < 30  # aborted, not deadlocked

    def test_crash_mid_algorithm(self, one_cluster_dataset, small_params):
        calls = {"n": 0}

        def poisoned(comm, data, params, domains):
            from repro.core.pmafia import pmafia_rank
            if comm.rank == 1:
                raise MemoryError("injected mid-run")
            return pmafia_rank(comm, data, params, domains)

        with pytest.raises(MemoryError, match="injected"):
            run_spmd(poisoned, 3,
                     args=(one_cluster_dataset.records, small_params,
                           DOMAINS_10D))


class TestCorruptedInputs:
    def test_nan_records_rejected_at_write(self, tmp_path):
        bad = np.ones((10, 2))
        bad[5, 0] = np.inf
        with pytest.raises(DataError):
            write_records(tmp_path / "bad.bin", bad)

    def test_bit_flipped_header(self, tmp_path, one_cluster_dataset):
        path = tmp_path / "data.bin"
        write_records(path, one_cluster_dataset.records[:100])
        raw = bytearray(path.read_bytes())
        raw[6] ^= 0xFF  # corrupt the dtype code
        path.write_bytes(bytes(raw))
        with pytest.raises(RecordFileError):
            mafia(path)

    def test_shortened_body(self, tmp_path, one_cluster_dataset):
        path = tmp_path / "short.bin"
        write_records(path, one_cluster_dataset.records[:100])
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(RecordFileError):
            mafia(path)

    def test_garbage_unit_payload(self):
        with pytest.raises(DataError):
            UnitTable.frombytes(b"\x00" * 40)

    def test_too_many_dimensions_rejected(self):
        data = np.random.default_rng(0).random((10, 300))
        with pytest.raises(DataError):
            mafia(data, MafiaParams(fine_bins=10, window_size=2,
                                    chunk_records=10))


class TestDegenerateWorkloads:
    def test_single_record(self):
        res = mafia(np.array([[1.0, 2.0]]),
                    MafiaParams(fine_bins=10, window_size=2, chunk_records=10))
        assert res.n_records == 1

    def test_all_identical_records(self):
        data = np.tile([[5.0, 5.0, 5.0]], (1000, 1))
        res = mafia(data, MafiaParams(fine_bins=20, window_size=2,
                                      chunk_records=100))
        # one degenerate cell holds everything; must not crash and must
        # find at most one cluster region
        assert res.n_records == 1000

    def test_two_distinct_values(self):
        rng = np.random.default_rng(2)
        data = np.where(rng.random((2000, 2)) < 0.5, 1.0, 9.0)
        data += rng.random((2000, 2)) * 1e-6
        res = mafia(data, MafiaParams(fine_bins=20, window_size=2,
                                      chunk_records=500))
        assert res.max_level >= 1

    def test_chunk_bigger_than_data(self, one_cluster_dataset):
        params = MafiaParams(fine_bins=200, window_size=2,
                             chunk_records=10**9)
        res = mafia(one_cluster_dataset.records, params, domains=DOMAINS_10D)
        assert [c.subspace.dims for c in res.clusters] == [(1, 3, 5, 7)]

    def test_more_ranks_than_records(self):
        data = np.random.default_rng(3).random((5, 3)) * 100
        run = pmafia(data, 8, MafiaParams(fine_bins=10, window_size=2,
                                          chunk_records=10))
        assert run.result.n_records == 5
