"""Failure injection: corrupted inputs, crashing ranks, bad payloads.

The SPMD substrate must fail loudly and promptly — a crashed rank
aborts its peers instead of deadlocking the program — and the library
must reject malformed data before it poisons a multi-hour run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import (CrashPoint, FaultPlan, MafiaParams, MessageFault,
                   ReadFault, mafia, pmafia, pmafia_resumable)
from repro.core.checkpoint import (check_compatible, checkpoint_path,
                                   clear_checkpoints, latest_checkpoint,
                                   load_checkpoint, save_checkpoint)
from repro.core.pmafia import pmafia_rank
from repro.core.units import UnitTable
from repro.errors import (CheckpointError, ChecksumError, CommAborted,
                          CommError, CommTimeoutError, DataError,
                          ParameterError, RecordFileError)
from repro.io import RetryPolicy, read_with_retry, write_records
from repro.io.records import RecordFile, read_header
from repro.obs import obs_session
from repro.obs.metrics import merge_snapshots, metric_key
from repro.obs.trace import check_spans_by_rank
from repro.parallel import run_spmd
from repro.parallel.faults import InjectedFailure
from tests.conftest import DOMAINS_10D


class TestCrashingRanks:
    @pytest.mark.parametrize("crasher", [0, 1, 2])
    def test_any_rank_crash_propagates(self, crasher):
        def prog(comm):
            if comm.rank == crasher:
                raise RuntimeError(f"rank {crasher} died")
            # peers block on a collective that can never complete
            comm.allreduce(np.zeros(4))

        start = time.monotonic()
        with pytest.raises(RuntimeError, match=f"rank {crasher} died"):
            run_spmd(prog, 3)
        assert time.monotonic() - start < 30  # aborted, not deadlocked

    def test_crash_mid_algorithm(self, one_cluster_dataset, small_params):
        calls = {"n": 0}

        def poisoned(comm, data, params, domains):
            from repro.core.pmafia import pmafia_rank
            if comm.rank == 1:
                raise MemoryError("injected mid-run")
            return pmafia_rank(comm, data, params, domains)

        with pytest.raises(MemoryError, match="injected"):
            run_spmd(poisoned, 3,
                     args=(one_cluster_dataset.records, small_params,
                           DOMAINS_10D))


class TestCorruptedInputs:
    def test_nan_records_rejected_at_write(self, tmp_path):
        bad = np.ones((10, 2))
        bad[5, 0] = np.inf
        with pytest.raises(DataError):
            write_records(tmp_path / "bad.bin", bad)

    def test_bit_flipped_header(self, tmp_path, one_cluster_dataset):
        path = tmp_path / "data.bin"
        write_records(path, one_cluster_dataset.records[:100])
        raw = bytearray(path.read_bytes())
        raw[6] ^= 0xFF  # corrupt the dtype code
        path.write_bytes(bytes(raw))
        with pytest.raises(RecordFileError):
            mafia(path)

    def test_shortened_body(self, tmp_path, one_cluster_dataset):
        path = tmp_path / "short.bin"
        write_records(path, one_cluster_dataset.records[:100])
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(RecordFileError):
            mafia(path)

    def test_garbage_unit_payload(self):
        with pytest.raises(DataError):
            UnitTable.frombytes(b"\x00" * 40)

    def test_too_many_dimensions_rejected(self):
        data = np.random.default_rng(0).random((10, 300))
        with pytest.raises(DataError):
            mafia(data, MafiaParams(fine_bins=10, window_size=2,
                                    chunk_records=10))


class TestDegenerateWorkloads:
    def test_single_record(self):
        res = mafia(np.array([[1.0, 2.0]]),
                    MafiaParams(fine_bins=10, window_size=2, chunk_records=10))
        assert res.n_records == 1

    def test_all_identical_records(self):
        data = np.tile([[5.0, 5.0, 5.0]], (1000, 1))
        res = mafia(data, MafiaParams(fine_bins=20, window_size=2,
                                      chunk_records=100))
        # one degenerate cell holds everything; must not crash and must
        # find at most one cluster region
        assert res.n_records == 1000

    def test_two_distinct_values(self):
        rng = np.random.default_rng(2)
        data = np.where(rng.random((2000, 2)) < 0.5, 1.0, 9.0)
        data += rng.random((2000, 2)) * 1e-6
        res = mafia(data, MafiaParams(fine_bins=20, window_size=2,
                                      chunk_records=500))
        assert res.max_level >= 1

    def test_chunk_bigger_than_data(self, one_cluster_dataset):
        params = MafiaParams(fine_bins=200, window_size=2,
                             chunk_records=10**9)
        res = mafia(one_cluster_dataset.records, params, domains=DOMAINS_10D)
        assert [c.subspace.dims for c in res.clusters] == [(1, 3, 5, 7)]

    def test_more_ranks_than_records(self):
        data = np.random.default_rng(3).random((5, 3)) * 100
        run = pmafia(data, 8, MafiaParams(fine_bins=10, window_size=2,
                                          chunk_records=10))
        assert run.result.n_records == 5

class TestSpmdErrorPropagation:
    def test_all_ranks_comm_aborted_reraised(self):
        """Regression: when every rank raises only CommAborted (no root
        cause survived), run_spmd must still raise rather than return."""
        def prog(comm):
            raise CommAborted(f"rank {comm.rank} aborted")

        with pytest.raises(CommAborted):
            run_spmd(prog, 3)

    def test_root_cause_preferred_over_abort_echoes(self):
        """The rank that genuinely failed wins over the CommAborted
        echoes its peers raise while being torn down."""
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("the real failure")
            comm.recv((comm.rank + 1) % comm.size, tag=9)

        with pytest.raises(ValueError, match="the real failure"):
            run_spmd(prog, 3)


class TestCommTimeout:
    def test_thread_recv_deadline(self):
        """A rank blocked on a peer that never sends raises
        CommTimeoutError within (roughly) the configured deadline."""
        def prog(comm):
            if comm.rank == 1:
                return comm.recv(0, tag=3)  # rank 0 never sends
            return None

        start = time.monotonic()
        with pytest.raises(CommTimeoutError, match="timed out receiving"):
            run_spmd(prog, 2, recv_timeout=0.5)
        assert time.monotonic() - start < 10

    def test_timeout_not_triggered_by_slow_sender(self):
        def prog(comm):
            if comm.rank == 0:
                time.sleep(0.3)
                comm.send("late", 1, tag=4)
                return None
            return comm.recv(0, tag=4)

        results = run_spmd(prog, 2, recv_timeout=5.0)
        assert results[1].value == "late"


class TestFaultHarness:
    def test_crash_point_kills_rank(self, one_cluster_dataset, small_params):
        plan = FaultPlan(crashes=(CrashPoint(rank=1, site="start"),))
        with pytest.raises(InjectedFailure, match="rank 1 at site 'start'"):
            run_spmd(pmafia_rank, 3, faults=plan,
                     args=(one_cluster_dataset.records, small_params,
                           DOMAINS_10D))

    def test_wildcard_crash_point(self, one_cluster_dataset, small_params):
        """CrashPoint(rank=2) with no site kills rank 2 at the first
        site it announces."""
        plan = FaultPlan(crashes=(CrashPoint(rank=2),))
        with pytest.raises(InjectedFailure, match="rank 2"):
            run_spmd(pmafia_rank, 3, faults=plan,
                     args=(one_cluster_dataset.records, small_params,
                           DOMAINS_10D))

    def test_dropped_message_strands_receiver(self):
        """A dropped point-to-point message surfaces as a recv timeout
        on the stranded peer, not a silent hang."""
        plan = FaultPlan(message_faults=(
            MessageFault(rank=0, action="drop", nth=0),))

        def prog(comm):
            if comm.rank == 0:
                comm.send("lost", 1, tag=7)
                return None
            return comm.recv(0, tag=7)

        with pytest.raises(CommTimeoutError):
            run_spmd(prog, 2, faults=plan, recv_timeout=0.5)

    def test_delay_fault_still_delivers(self):
        plan = FaultPlan(message_faults=(
            MessageFault(rank=0, action="delay", nth=0, delay=0.05),))
        state = plan.state_for(0)
        assert state.on_send(1, 0) == (True, 0.05)
        assert state.on_send(1, 0) == (True, 0.0)

    def test_chaos_mode_is_deterministic(self):
        """Two runs of the same seeded plan make identical drop/delay
        decisions — failures found under chaos replay exactly."""
        plan = FaultPlan(seed=42, drop_rate=0.3, delay_rate=0.2)
        a, b = plan.state_for(1), plan.state_for(1)
        decisions_a = [a.on_send(0, 0) for _ in range(50)]
        decisions_b = [b.on_send(0, 0) for _ in range(50)]
        assert decisions_a == decisions_b
        assert any(not deliver for deliver, _ in decisions_a)

    def test_bad_message_fault_action_rejected(self):
        with pytest.raises(ValueError, match="drop"):
            MessageFault(rank=0, action="corrupt")


def _recording_policy(calls):
    """A fast retry policy whose sleeps are recorded, not slept."""
    return RetryPolicy(max_attempts=3, base_delay=0.01, multiplier=2.0,
                       sleep=calls.append)


class TestResilientReads:
    def test_transient_read_fault_retried(self, one_cluster_dataset,
                                          small_params):
        """Two injected EIO failures on one chunk are absorbed by the
        retry loop with exponential backoff; the run still succeeds."""
        sleeps: list[float] = []
        plan = FaultPlan(read_faults=(
            ReadFault(rank=0, site="histogram", chunk=0, errors=2),))
        ranks = run_spmd(pmafia_rank, 1, backend="serial", faults=plan,
                         args=(one_cluster_dataset.records, small_params,
                               DOMAINS_10D),
                         kwargs={"retry": _recording_policy(sleeps)})
        expected = mafia(one_cluster_dataset.records, small_params,
                         domains=DOMAINS_10D)
        assert ranks[0].value.dense_per_level() == expected.dense_per_level()
        assert sleeps == [0.01, 0.02]

    def test_permanent_read_fault_exhausts_retries(self, one_cluster_dataset,
                                                   small_params):
        sleeps: list[float] = []
        plan = FaultPlan(read_faults=(
            ReadFault(rank=0, permanent=True),))
        with pytest.raises(OSError, match="injected permanent"):
            run_spmd(pmafia_rank, 1, backend="serial", faults=plan,
                     args=(one_cluster_dataset.records, small_params,
                           DOMAINS_10D),
                     kwargs={"retry": _recording_policy(sleeps)})
        assert sleeps == [0.01, 0.02]  # max_attempts - 1 backoffs

    def test_structural_errors_not_retried(self):
        """ReproError-based OSErrors (bad file, bad checksum) fail fast
        — retrying cannot fix a structurally corrupt file."""
        calls = {"n": 0}

        def read():
            calls["n"] += 1
            raise ChecksumError("chunk 3 CRC mismatch")

        sleeps: list[float] = []
        with pytest.raises(ChecksumError):
            read_with_retry(read, _recording_policy(sleeps))
        assert calls["n"] == 1
        assert sleeps == []

    def test_success_after_transient(self):
        attempts = {"n": 0}

        def read():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError("transient")
            return "payload"

        sleeps: list[float] = []
        assert read_with_retry(read, _recording_policy(sleeps)) == "payload"
        assert attempts["n"] == 3
        assert sleeps == [0.01, 0.02]

    def test_retry_policy_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(base_delay=-1.0)


class TestChecksums:
    def test_v2_corruption_fails_fast(self, tmp_path, one_cluster_dataset):
        path = tmp_path / "data.bin"
        write_records(path, one_cluster_dataset.records[:500])
        assert read_header(path).version == 2
        raw = bytearray(path.read_bytes())
        raw[read_header(path).data_offset + 123] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ChecksumError):
            RecordFile(path).read_all()

    def test_corruption_pinpoints_chunk(self, tmp_path, one_cluster_dataset):
        path = tmp_path / "data.bin"
        write_records(path, one_cluster_dataset.records[:300],
                      crc_chunk_records=100)
        info = read_header(path)
        assert info.n_crc_chunks == 3
        raw = bytearray(path.read_bytes())
        # flip a byte inside the *second* CRC chunk (records 100-199)
        raw[info.data_offset + 110 * info.record_nbytes] ^= 0xFF
        path.write_bytes(bytes(raw))
        rf = RecordFile(path)
        rf.verify_chunk(0)
        rf.verify_chunk(2)
        with pytest.raises(ChecksumError, match="chunk 1"):
            rf.verify_chunk(1)
        # reads that do not touch the bad chunk still succeed
        assert rf.read_block(0, 100).shape == (100, 10)
        with pytest.raises(ChecksumError):
            rf.read_block(50, 150)

    def test_v1_files_still_readable(self, tmp_path, one_cluster_dataset):
        path = tmp_path / "legacy.bin"
        write_records(path, one_cluster_dataset.records[:200], version=1)
        info = read_header(path)
        assert info.version == 1
        assert info.n_crc_chunks == 0
        got = RecordFile(path).read_all()
        np.testing.assert_array_equal(got,
                                      one_cluster_dataset.records[:200])

    def test_corrupt_v2_detected_by_mafia_run(self, tmp_path,
                                              one_cluster_dataset):
        path = tmp_path / "data.bin"
        write_records(path, one_cluster_dataset.records)
        raw = bytearray(path.read_bytes())
        raw[read_header(path).data_offset + 4096] ^= 0x10
        path.write_bytes(bytes(raw))
        with pytest.raises(ChecksumError):
            mafia(path, MafiaParams(fine_bins=200, window_size=2,
                                    chunk_records=2000),
                  domains=DOMAINS_10D)

    def test_record_nbytes_rename(self, tmp_path, one_cluster_dataset):
        path = tmp_path / "data.bin"
        write_records(path, one_cluster_dataset.records[:10])
        info = read_header(path)
        assert info.record_nbytes == 10 * 8
        with pytest.warns(DeprecationWarning, match="record_nbytes"):
            assert info.record_nbyteses == info.record_nbytes


class TestCheckpointFiles:
    STATE = {"level": 3, "params": "p", "n_records": 100, "frontier": [1, 2]}

    def test_roundtrip(self, tmp_path):
        path = save_checkpoint(tmp_path, 3, self.STATE)
        assert path == checkpoint_path(tmp_path, 3)
        assert load_checkpoint(path) == self.STATE

    def test_latest_picks_highest_level(self, tmp_path):
        for level in (1, 4, 2):
            save_checkpoint(tmp_path, level, dict(self.STATE, level=level))
        assert latest_checkpoint(tmp_path) == checkpoint_path(tmp_path, 4)
        assert latest_checkpoint(tmp_path / "absent") is None

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = save_checkpoint(tmp_path, 2, self.STATE)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="CRC"):
            load_checkpoint(path)

    def test_truncated_checkpoint_rejected(self, tmp_path):
        path = save_checkpoint(tmp_path, 2, self.STATE)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "level0001.ckpt"
        path.write_bytes(b"JUNK" + b"\x00" * 30)
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_clear_checkpoints(self, tmp_path):
        for level in (1, 2):
            save_checkpoint(tmp_path, level, self.STATE)
        (tmp_path / "unrelated.txt").write_text("keep me")
        assert clear_checkpoints(tmp_path) == 2
        assert latest_checkpoint(tmp_path) is None
        assert (tmp_path / "unrelated.txt").exists()

    def test_check_compatible(self, small_params):
        state = {"params": small_params, "n_records": 5000}
        check_compatible(state, small_params, 5000)
        with pytest.raises(CheckpointError, match="parameters"):
            check_compatible(state, MafiaParams(), 5000)
        with pytest.raises(CheckpointError, match="records"):
            check_compatible(state, small_params, 4999)

    def test_quarantine_moves_file_aside(self, tmp_path):
        from repro.core.checkpoint import quarantine_checkpoint
        path = save_checkpoint(tmp_path, 2, self.STATE)
        corpse = quarantine_checkpoint(path)
        assert corpse == tmp_path / "level0002.ckpt.corrupt"
        assert corpse.exists() and not path.exists()
        # a quarantined file is invisible to the resume scan
        assert latest_checkpoint(tmp_path) is None

    def test_load_latest_falls_back_past_corruption(self, tmp_path):
        """A corrupt newest checkpoint — the expected debris of a crash
        mid-write — costs one level of progress, not the whole run."""
        from repro.core.checkpoint import load_latest_checkpoint
        save_checkpoint(tmp_path, 2, dict(self.STATE, level=2))
        bad = save_checkpoint(tmp_path, 3, dict(self.STATE, level=3))
        bad.write_bytes(bad.read_bytes()[:-6])
        state = load_latest_checkpoint(tmp_path)
        assert state is not None and state["level"] == 2
        # the corpse is preserved for post-mortems
        assert (tmp_path / "level0003.ckpt.corrupt").exists()
        assert latest_checkpoint(tmp_path) == checkpoint_path(tmp_path, 2)

    def test_load_latest_all_corrupt_returns_none(self, tmp_path):
        from repro.core.checkpoint import load_latest_checkpoint
        for level in (1, 2):
            path = save_checkpoint(tmp_path, level,
                                   dict(self.STATE, level=level))
            path.write_bytes(b"JUNK" + b"\x00" * 20)
        assert load_latest_checkpoint(tmp_path) is None
        assert load_latest_checkpoint(tmp_path / "absent") is None

    def test_shard_manifest_roundtrip(self, tmp_path):
        from repro.core.checkpoint import (load_shard_manifest,
                                           save_shard_manifest,
                                           shard_manifest_path)
        manifest = {"size": 3, "record_range": [0, 1667],
                    "grid_hash": "ab" * 32, "data_path": "/tmp/d.bin"}
        path = save_shard_manifest(tmp_path, 1, manifest)
        assert path == shard_manifest_path(tmp_path, 1)
        got = load_shard_manifest(tmp_path, 1)
        assert got["record_range"] == [0, 1667]
        assert got["rank"] == 1  # stamped on write
        assert load_shard_manifest(tmp_path, 2) is None

    def test_shard_manifest_never_load_bearing(self, tmp_path):
        """Garbage or wrong-version manifests read as absent — the
        replacement then restages from scratch instead of failing."""
        from repro.core.checkpoint import (load_shard_manifest,
                                           shard_manifest_path)
        shard_manifest_path(tmp_path, 0).write_text("{not json")
        assert load_shard_manifest(tmp_path, 0) is None
        shard_manifest_path(tmp_path, 0).write_text(
            '{"version": 999, "rank": 0}')
        assert load_shard_manifest(tmp_path, 0) is None

    def test_clear_checkpoints_keeps_shard_manifests(self, tmp_path):
        """A fresh run clears stale level checkpoints but must keep the
        shard manifests: the staged artifacts they describe remain
        valid for the new run's identical partition."""
        from repro.core.checkpoint import (load_shard_manifest,
                                           save_shard_manifest)
        save_checkpoint(tmp_path, 1, self.STATE)
        save_shard_manifest(tmp_path, 0, {"size": 3})
        assert clear_checkpoints(tmp_path) == 1
        assert load_shard_manifest(tmp_path, 0) is not None


@pytest.fixture(scope="module")
def baseline(one_cluster_dataset, small_params):
    """The uninterrupted 3-rank reference result for the resume matrix."""
    return pmafia(one_cluster_dataset.records, 3, small_params,
                  domains=DOMAINS_10D).result


def _assert_identical(result, reference):
    """Bit-identical clustering: per-level CDU and dense-unit counts,
    the dense unit tables themselves, and the reported cluster DNFs."""
    assert result.cdus_per_level() == reference.cdus_per_level()
    assert result.dense_per_level() == reference.dense_per_level()
    assert len(result.trace) == len(reference.trace)
    for got, want in zip(result.trace, reference.trace):
        np.testing.assert_array_equal(got.dense.dims, want.dense.dims)
        np.testing.assert_array_equal(got.dense.bins, want.dense.bins)
        np.testing.assert_array_equal(got.dense_counts, want.dense_counts)
    assert [c.dnf for c in result.clusters] == \
        [c.dnf for c in reference.clusters]


@pytest.mark.fault
class TestCheckpointResume:
    """The acceptance matrix: kill rank 1 at every level, resume, and
    demand a bit-identical result on both in-memory backends."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("level", [1, 2, 3, 4, 5, 6])
    def test_kill_and_resume_matrix(self, tmp_path, backend, level,
                                    baseline, one_cluster_dataset,
                                    small_params):
        if level > len(baseline.trace):
            pytest.skip(f"run has only {len(baseline.trace)} levels")
        plan = FaultPlan(crashes=(
            CrashPoint(rank=1, site="populate", level=level),))
        with pytest.raises((InjectedFailure, CommError)):
            pmafia_resumable(one_cluster_dataset.records, 3, small_params,
                             checkpoint_dir=tmp_path, domains=DOMAINS_10D,
                             backend=backend, faults=plan, recv_timeout=30.0)
        if level >= 2:
            # a kill during the level-1 pass predates the first
            # checkpoint; the resume below then simply starts fresh
            assert latest_checkpoint(tmp_path) is not None
        run = pmafia_resumable(one_cluster_dataset.records, 3, small_params,
                               checkpoint_dir=tmp_path, domains=DOMAINS_10D,
                               backend=backend)
        _assert_identical(run.result, baseline)

    def test_auto_restart_recovers_in_one_call(self, tmp_path, baseline,
                                               one_cluster_dataset,
                                               small_params):
        """max_restarts=1 turns an injected crash into a transparent
        retry-from-checkpoint inside a single call."""
        plan = FaultPlan(crashes=(
            CrashPoint(rank=2, site="join", level=2),))
        run = pmafia_resumable(one_cluster_dataset.records, 3, small_params,
                               checkpoint_dir=tmp_path, domains=DOMAINS_10D,
                               faults=plan, max_restarts=1,
                               recv_timeout=30.0)
        _assert_identical(run.result, baseline)

    def test_resume_with_different_nprocs(self, tmp_path, baseline,
                                          one_cluster_dataset, small_params):
        """Checkpoint state is rank-independent: a run killed on 3 ranks
        resumes on 2 (or 1) with the identical result."""
        plan = FaultPlan(crashes=(
            CrashPoint(rank=0, site="dedup", level=2),))
        with pytest.raises((InjectedFailure, CommError)):
            pmafia_resumable(one_cluster_dataset.records, 3, small_params,
                             checkpoint_dir=tmp_path, domains=DOMAINS_10D,
                             faults=plan, recv_timeout=30.0)
        run = pmafia_resumable(one_cluster_dataset.records, 2, small_params,
                               checkpoint_dir=tmp_path, domains=DOMAINS_10D)
        _assert_identical(run.result, baseline)

    def test_resume_after_completion_is_stable(self, tmp_path, baseline,
                                               one_cluster_dataset,
                                               small_params):
        first = pmafia_resumable(one_cluster_dataset.records, 3,
                                 small_params, checkpoint_dir=tmp_path,
                                 domains=DOMAINS_10D)
        again = pmafia_resumable(one_cluster_dataset.records, 3,
                                 small_params, checkpoint_dir=tmp_path,
                                 domains=DOMAINS_10D)
        _assert_identical(first.result, baseline)
        _assert_identical(again.result, baseline)

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path,
                                                one_cluster_dataset,
                                                small_params):
        save_checkpoint(tmp_path, 9, {"level": 9, "params": None,
                                      "n_records": 0})
        run = pmafia_resumable(one_cluster_dataset.records, 2, small_params,
                               checkpoint_dir=tmp_path, domains=DOMAINS_10D,
                               resume=False)
        assert run.result.n_records == len(one_cluster_dataset.records)
        assert not checkpoint_path(tmp_path, 9).exists()

    def test_incompatible_checkpoint_refused(self, tmp_path,
                                             one_cluster_dataset,
                                             small_params):
        pmafia_resumable(one_cluster_dataset.records, 2, small_params,
                         checkpoint_dir=tmp_path, domains=DOMAINS_10D)
        with pytest.raises(CheckpointError, match="parameters"):
            pmafia_resumable(one_cluster_dataset.records, 2,
                             MafiaParams(fine_bins=100, window_size=2,
                                         chunk_records=2000),
                             checkpoint_dir=tmp_path, domains=DOMAINS_10D)


@pytest.mark.fault
class TestDescriptorHygiene:
    """A read that raises mid-pass must not strand file descriptors or
    half-written temp files — the audit behind the context-managed /
    cached-mapping readers in ``io/records.py`` and ``io/binned.py``."""

    @staticmethod
    def _open_fds() -> int:
        import os
        return len(os.listdir("/proc/self/fd"))

    def test_no_dangling_descriptors_after_injected_read_faults(
            self, tmp_path, one_cluster_dataset, small_params):
        import gc
        import os

        path = tmp_path / "data.bin"
        write_records(path, one_cluster_dataset.records)
        params = small_params.with_(bin_cache="disk")
        plan = FaultPlan(read_faults=(ReadFault(rank=0, permanent=True),))
        gc.collect()
        before = self._open_fds()
        for _ in range(3):
            with pytest.raises((OSError, CommAborted)):
                run_spmd(pmafia_rank, 1, backend="serial", faults=plan,
                         args=(os.fspath(path), params, DOMAINS_10D),
                         kwargs={"retry": _recording_policy([])})
        gc.collect()
        assert self._open_fds() == before
        # the failed staging passes must not leave temp files around
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_binned_staging_removes_temp_file(self, tmp_path,
                                                     one_cluster_dataset,
                                                     small_params):
        """A staging pass that dies halfway (here: the source raising
        after its first chunk) unlinks the partially written store."""
        from repro.core.adaptive_grid import build_grid
        from repro.core.histogram import fine_histogram_global, global_domains
        from repro.io.binned import build_binned_store
        from repro.io.chunks import ArraySource
        from repro.parallel.serial import SerialComm

        records = one_cluster_dataset.records
        comm = SerialComm()
        domains = np.asarray(DOMAINS_10D, dtype=np.float64)
        source = ArraySource(records)
        fine = fine_histogram_global(source, comm, domains,
                                     small_params.fine_bins,
                                     small_params.chunk_records)
        grid = build_grid(fine, domains, len(records), small_params)

        class FlakySource(ArraySource):
            def __init__(self, records):
                super().__init__(records)
                self.reads = 0

            def read_block(self, start, stop):
                self.reads += 1
                if self.reads > 1:
                    raise ChecksumError("synthetic mid-staging corruption")
                return super().read_block(start, stop)

        target = tmp_path / "rank0.bins"
        with pytest.raises(ChecksumError):
            build_binned_store(FlakySource(records), grid, 1000, path=target)
        assert not target.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_record_writer_closes_handle_when_first_write_fails(
            self, tmp_path, monkeypatch):
        import gc

        from repro.io.records import RecordFileWriter

        gc.collect()
        before = self._open_fds()
        real_open = open

        class ExplodingFile:
            def __init__(self, fh):
                self._fh = fh

            def write(self, data):
                raise OSError("injected header-write failure")

            def close(self):
                self._fh.close()

        def failing_open(file, mode="r", *args, **kwargs):
            fh = real_open(file, mode, *args, **kwargs)
            if str(file).endswith(".tmp"):
                return ExplodingFile(fh)
            return fh

        import builtins
        monkeypatch.setattr(builtins, "open", failing_open)
        with pytest.raises(OSError, match="injected header-write"):
            RecordFileWriter(tmp_path / "w.bin", n_dims=3)
        monkeypatch.undo()
        gc.collect()
        assert self._open_fds() == before
        assert not list(tmp_path.glob("*.tmp"))


@pytest.mark.fault
class TestObservabilityUnderFaults:
    """The merged trace of a killed-and-resumed run must show the whole
    story: the injected fault, the checkpoint restore, and each level
    completed exactly once per rank — with the final clustering still
    bit-identical to the uninterrupted baseline."""

    def test_killed_and_resumed_run_trace(self, tmp_path, baseline,
                                          one_cluster_dataset,
                                          small_params):
        params = small_params.with_(trace=True, metrics=True)
        plan = FaultPlan(crashes=(
            CrashPoint(rank=1, site="populate", level=3),))
        with obs_session() as session:
            with pytest.raises((InjectedFailure, CommError)):
                pmafia_resumable(one_cluster_dataset.records, 3, params,
                                 checkpoint_dir=tmp_path,
                                 domains=DOMAINS_10D, backend="thread",
                                 faults=plan, recv_timeout=30.0)
            run = pmafia_resumable(one_cluster_dataset.records, 3, params,
                                   checkpoint_dir=tmp_path,
                                   domains=DOMAINS_10D, backend="thread")
        _assert_identical(run.result, baseline)

        # both attempts' observers were captured (3 ranks each)
        assert len(session.observers) == 6
        spans = session.merged_spans()
        assert check_spans_by_rank(spans) == []

        # the injected fault appears on the dead rank's own timeline
        crashes = [s for s in spans if s.name == "fault.crash"]
        assert [s.rank for s in crashes] == [1]
        assert crashes[0].attrs == {"site": "populate", "level": 3,
                                    "hard": False}

        # the resumed attempt restored the level-2 checkpoint on every
        # rank (the broadcast hands all ranks the same state)
        restores = [s for s in spans
                    if s.name == "checkpoint_restore" and s.ok
                    and "level" in s.attrs]
        assert sorted(s.rank for s in restores) == [0, 1, 2]
        assert {s.attrs["level"] for s in restores} == {2}
        markers = [s for s in spans if s.name == "checkpoint_restored"]
        assert sorted(s.rank for s in markers) == [0, 1, 2]

        # across crash + resume, no rank completed the same level twice
        for rank in range(3):
            done = [s.attrs["level"] for s in spans
                    if s.rank == rank and s.cat == "level" and s.ok]
            assert len(done) == len(set(done))
            assert done == sorted(done)

        # the crashed attempt's failed run span survives, error-tagged
        failed_runs = [s for s in spans
                       if s.cat == "run" and s.rank == 1 and not s.ok]
        assert len(failed_runs) == 1
        assert failed_runs[0].attrs["error"] == "InjectedFailure"

        # metrics agree: exactly one injected crash over both attempts
        merged = merge_snapshots(o.metrics.snapshot()
                                 for o in session.observers
                                 if o.metrics is not None)
        key = metric_key("faults.injected", {"kind": "crash"})
        assert merged[key]["value"] == 1

    def test_auto_restart_trace_in_one_call(self, tmp_path, baseline,
                                            one_cluster_dataset,
                                            small_params):
        """max_restarts=1 keeps both attempts in one process, so one
        session sees the fault and the recovery back to back."""
        params = small_params.with_(trace=True)
        plan = FaultPlan(crashes=(
            CrashPoint(rank=2, site="join", level=2),))
        with obs_session() as session:
            run = pmafia_resumable(one_cluster_dataset.records, 3, params,
                                   checkpoint_dir=tmp_path,
                                   domains=DOMAINS_10D, faults=plan,
                                   max_restarts=1, recv_timeout=30.0)
        _assert_identical(run.result, baseline)
        spans = session.merged_spans()
        assert any(s.name == "fault.crash" and s.rank == 2 for s in spans)
        assert any(s.name == "checkpoint_restore" and s.ok for s in spans)
        for rank in range(3):
            done = [s.attrs["level"] for s in spans
                    if s.rank == rank and s.cat == "level" and s.ok]
            assert len(done) == len(set(done))
