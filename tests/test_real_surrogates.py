"""End-to-end structure tests for the real-data surrogates: each must
reproduce the paper's §5.9 qualitative result under its companion
parameters (see DESIGN.md §2 for the substitution rationale)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro import mafia
from repro.datagen import dax_like, eachmovie_like, ionosphere_like
from repro.datagen.real import (Regime, apply_regime, dax_params,
                                eachmovie_params, ionosphere_params)
from repro.datagen.icg import np_rng


class TestRegimeMechanism:
    def test_die_level_property(self):
        r = Regime(dims=(0, 1, 2, 3), centers=(10, 10, 10, 10), width=2.0,
                   members=np.arange(10), drop=1)
        assert r.die_level == 3

    def test_participation_staircase(self):
        """Expected l-subset count is size * C(k-l, drop) / C(k, drop),
        zero above the die level."""
        rng = np_rng(0)
        records = rng.random((20_000, 6)) * 100.0
        regime = Regime(dims=(0, 1, 2, 3), centers=(50, 50, 50, 50),
                        width=2.0, members=np.arange(20_000), drop=1)
        apply_regime(rng, records, regime)
        in_band = (records >= 49.0) & (records < 51.0)
        triple = (in_band[:, 0] & in_band[:, 1] & in_band[:, 2]).sum()
        quad = in_band[:, :4].all(axis=1).sum()
        assert abs(triple - 5000) < 300          # C(1,1)/C(4,1) = 1/4
        # quads survive only when the dropped dim lands in the band by
        # chance: size * (width/domain) = 20000 * 0.02 = 400
        assert quad < 0.12 * triple

    def test_members_untouched_dims(self):
        rng = np_rng(1)
        records = np.full((100, 4), 77.0)
        regime = Regime(dims=(1,), centers=(10.0,), width=2.0,
                        members=np.arange(100), drop=0)
        apply_regime(rng, records, regime)
        assert (records[:, 0] == 77.0).all()
        assert (records[:, 1] < 12).all()


@pytest.mark.slow
class TestDaxTable4Shape:
    def test_cluster_counts_decrease_with_dimensionality(self):
        params, domains = dax_params()
        res = mafia(dax_like(), params, domains=domains)
        by_dim = res.clusters_by_dimensionality()
        # Table 4 shape: clusters at dims 3..6, counts decreasing
        for dim in (3, 4, 5, 6):
            assert by_dim.get(dim, 0) >= 1, f"no clusters at dim {dim}"
        assert by_dim[3] > by_dim[4] > by_dim[5] >= by_dim[6]


@pytest.mark.slow
class TestIonosphereAlphaSensitivity:
    def test_alpha2_many_small_alpha3_one(self):
        data = ionosphere_like()
        p2, d2 = ionosphere_params(2.0)
        res2 = mafia(data, p2, domains=d2)
        counts2 = Counter(c.dimensionality for c in res2.clusters
                          if c.dimensionality >= 3)
        assert counts2[3] >= 5                  # "158 unique clusters" shape
        assert counts2[4] >= 1                  # "32 unique clusters" shape
        assert counts2[3] > counts2[4]

        p3, d3 = ionosphere_params(3.0)
        res3 = mafia(data, p3, domains=d3)
        big3 = [c.subspace.dims for c in res3.clusters
                if c.dimensionality >= 3]
        assert big3 == [(0, 2, 4)]              # "one single cluster in 3-d"


@pytest.mark.slow
class TestEachMovieClusters:
    def test_seven_2d_clusters(self):
        n = 60_000
        data = eachmovie_like(n_records=n)
        params, domains = eachmovie_params(n)
        res = mafia(data, params, domains=domains)
        two_d = [c.subspace.dims for c in res.clusters
                 if c.dimensionality == 2]
        assert len(two_d) == 7                  # §5.9(3): 7 clusters, dim 2
        assert all(len(c.subspace.dims) <= 2 for c in res.clusters)
        assert Counter(two_d) == Counter({(0, 1): 4, (1, 2): 3})

    def test_scales_with_n(self):
        """The block structure is fraction-based: a smaller instance
        yields the same clusters (Table 5 runs at several scales)."""
        n = 20_000
        data = eachmovie_like(n_records=n)
        params, domains = eachmovie_params(n)
        res = mafia(data, params, domains=domains)
        two_d = [c.subspace.dims for c in res.clusters
                 if c.dimensionality == 2]
        assert len(two_d) == 7
