"""Observability conformance: tracing and metrics must change nothing.

The contract of :mod:`repro.obs` is that it only *watches*: with
``MafiaParams(trace=True, metrics=True)`` the clusters, the per-level
CDU tables and the simulated virtual times must be bit-identical to a
run with observability off, on every backend — while the recorded
spans nest properly and the counters reconcile with independent ground
truth (the cost model's work tallies, the collective payload sizes,
the fault plan's injection counts).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MafiaParams, mafia, pmafia, pmafia_resumable
from repro.cli import main as cli_main
from repro.core.timing import phase_timer
from repro.datagen import ClusterSpec, generate
from repro.io.binned import grid_fingerprint
from repro.obs import (RankObs, RankObsData, RunObs, as_run_obs,
                       serve_summary, write_chrome_trace,
                       write_metrics_snapshot)
from repro.obs.manifest import MANIFEST_NAME, SCHEMA, build_manifest
from repro.obs.metrics import MetricsRegistry, merge_snapshots, metric_key
from repro.obs.trace import (COMPLETE, INSTANT, RankTracer, Span,
                             check_rank_spans, check_spans_by_rank)
from repro.parallel import FaultPlan, ReadFault, run_spmd
from repro.parallel.serial import SerialComm
from repro.parallel.simtime import payload_nbytes
from repro.core.pmafia import pmafia_rank
from repro.io.resilient import RetryPolicy
from tests.conftest import DOMAINS_10D

PARAMS = MafiaParams(fine_bins=100, window_size=2, chunk_records=1000)
OBS_PARAMS = PARAMS.with_(trace=True, metrics=True)


def _signature(result):
    """Everything that must be bit-identical between observed and
    unobserved runs: lattice counts, dense unit tables, clusters."""
    sig = [result.cdus_per_level(), result.dense_per_level()]
    for t in result.trace:
        sig.append(t.dense.dims.tobytes())
        sig.append(t.dense.bins.tobytes())
        sig.append(t.dense_counts.tobytes())
    for c in result.clusters:
        sig.append((c.subspace.dims, c.units_bins.tolist(),
                    c.point_count, c.dnf))
    return sig


@st.composite
def workloads(draw):
    n_dims = draw(st.integers(3, 6))
    n_clusters = draw(st.integers(0, 2))
    specs = []
    for _ in range(n_clusters):
        k = draw(st.integers(1, min(3, n_dims)))
        dims = draw(st.lists(st.integers(0, n_dims - 1), min_size=k,
                             max_size=k, unique=True))
        extents = []
        for _ in dims:
            lo = draw(st.integers(5, 70))
            width = draw(st.integers(8, 20))
            extents.append((float(lo), float(lo + width)))
        specs.append(ClusterSpec.box(sorted(dims), extents))
    n_records = draw(st.integers(1500, 4000))
    noise = draw(st.floats(0.0, 0.3))
    seed = draw(st.integers(0, 10_000))
    return generate(n_records, n_dims, specs, noise_fraction=noise,
                    seed=seed)


class TestConformanceProperty:
    """Hypothesis sweep: observability is invisible on every backend."""

    @given(workloads())
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_observed_runs_bit_identical(self, dataset):
        domains = np.array([[0.0, 100.0]] * dataset.n_dims)
        baseline = mafia(dataset.records, PARAMS, domains=domains)
        assert baseline.obs is None  # zero-cost path carries nothing

        observed = mafia(dataset.records, OBS_PARAMS, domains=domains)
        assert _signature(observed) == _signature(baseline)
        assert isinstance(observed.obs, RankObsData)
        assert observed.obs.check() == []

        threaded = pmafia(dataset.records, 2, OBS_PARAMS, domains=domains)
        assert _signature(threaded.result) == _signature(baseline)
        assert isinstance(threaded.obs, RunObs)
        assert len(threaded.obs.ranks) == 2
        assert threaded.obs.check() == []

    @given(workloads())
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_sim_virtual_times_bit_identical(self, dataset):
        domains = np.array([[0.0, 100.0]] * dataset.n_dims)
        off = pmafia(dataset.records, 2, PARAMS, backend="sim",
                     domains=domains)
        on = pmafia(dataset.records, 2, OBS_PARAMS, backend="sim",
                    domains=domains)
        assert on.rank_times == off.rank_times
        assert on.makespan == off.makespan
        assert _signature(on.result) == _signature(off.result)
        # the span buffer carries the same virtual clock the backend ran
        for rank_obs, vend in zip(on.obs.ranks, on.rank_times):
            run_span = [s for s in rank_obs.spans if s.cat == "run"]
            assert len(run_span) == 1
            assert run_span[0].vend == pytest.approx(vend)

    def test_process_backend_bit_identical(self, one_cluster_dataset):
        """The process backend pickles results (and their obs exports)
        back to the parent; both must survive unchanged."""
        baseline = pmafia(one_cluster_dataset.records, 2, PARAMS,
                          backend="process", domains=DOMAINS_10D)
        observed = pmafia(one_cluster_dataset.records, 2, OBS_PARAMS,
                          backend="process", domains=DOMAINS_10D)
        assert _signature(observed.result) == _signature(baseline.result)
        assert len(observed.obs.ranks) == 2
        assert observed.obs.check() == []
        assert observed.obs.merged_metrics()["total"]


class TestSpanIntegrity:
    def test_run_spans_well_formed(self, one_cluster_dataset, small_params):
        run = pmafia(one_cluster_dataset.records, 3,
                     small_params.with_(trace=True, metrics=True),
                     domains=DOMAINS_10D)
        spans = run.obs.merged_spans()
        assert check_spans_by_rank(spans) == []
        # complete spans only — orphan ends are impossible by
        # construction, so every interval is fully bracketed
        assert {s.kind for s in spans} <= {COMPLETE, INSTANT}
        assert all(s.begin <= s.end for s in spans)
        # each rank ran the whole driver exactly once under a run span
        for rank in range(3):
            runs = [s for s in spans if s.rank == rank and s.cat == "run"]
            assert len(runs) == 1 and runs[0].ok
        # the driver phases all appear
        names = {s.name for s in spans if s.cat == "phase"}
        assert {"grid", "population", "assembly"} <= names

    def test_checker_flags_backwards_clock(self):
        good = Span(name="a", cat="task", rank=0, begin=1.0, end=2.0,
                    vbegin=0.0, vend=0.0, depth=0)
        bad = Span(name="b", cat="task", rank=0, begin=0.5, end=1.5,
                   vbegin=0.0, vend=0.0, depth=0)
        assert check_rank_spans([good]) == []
        problems = check_rank_spans([good, bad])
        assert any("backwards" in p for p in problems)

    def test_checker_flags_inverted_interval(self):
        bad = Span(name="a", cat="task", rank=0, begin=2.0, end=1.0,
                   vbegin=3.0, vend=1.0, depth=0)
        problems = check_rank_spans([bad])
        assert any("begin" in p for p in problems)
        assert any("vbegin" in p for p in problems)

    def test_checker_flags_straddling_spans(self):
        outer = Span(name="outer", cat="task", rank=0, begin=0.0, end=2.0,
                     vbegin=0.0, vend=0.0, depth=0)
        straddler = Span(name="straddler", cat="task", rank=0, begin=1.0,
                         end=3.0, vbegin=0.0, vend=0.0, depth=1)
        problems = check_rank_spans([straddler, outer])
        assert any("straddles" in p for p in problems)

    def test_checker_rejects_mixed_ranks(self):
        a = Span(name="a", cat="task", rank=0, begin=0.0, end=1.0,
                 vbegin=0.0, vend=0.0, depth=0)
        b = Span(name="b", cat="task", rank=1, begin=0.0, end=1.0,
                 vbegin=0.0, vend=0.0, depth=0)
        assert any("multiple ranks" in p for p in check_rank_spans([a, b]))
        assert check_spans_by_rank([a, b]) == []

    def test_error_spans_tagged_not_orphaned(self):
        tracer = RankTracer(0)
        with pytest.raises(ValueError):
            with tracer.span("doomed", cat="task"):
                raise ValueError("boom")
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert not span.ok
        assert span.attrs["error"] == "ValueError"
        assert span.begin <= span.end


class TestMetricsAgainstGroundTruth:
    def test_pairs_examined_matches_cost_model(self, one_cluster_dataset,
                                               small_params):
        """join + dedup pairs must equal the simulated backend's
        ``unit_pair_ops`` work tally, per rank and in total."""
        run = pmafia(one_cluster_dataset.records, 2,
                     small_params.with_(trace=True, metrics=True),
                     backend="sim", domains=DOMAINS_10D)
        total = 0.0
        for rank_obs, counters in zip(run.obs.ranks, run.counters):
            m = rank_obs.metrics
            rank_pairs = (m["join.pairs_examined"]["value"]
                          + m["dedup.pairs_examined"]["value"])
            assert rank_pairs == counters.unit_pair_ops
            total += rank_pairs
        assert total == sum(c.unit_pair_ops for c in run.counters)

    def test_pairs_examined_closed_form_serial(self, one_cluster_dataset,
                                               small_params):
        """On one rank the paper's pairwise sweep examines exactly
        ``ndu*(ndu+1)/2`` pairs per joined level and ``n_cdus_raw``
        dedup comparisons per level >= 2 — both recomputable from the
        result's own trace."""
        result = mafia(one_cluster_dataset.records,
                       small_params.with_(metrics=True,
                                          join_strategy="pairwise"),
                       domains=DOMAINS_10D)
        m = result.obs.metrics
        want_join = sum(t.n_dense * (t.n_dense + 1) // 2
                        for t in result.trace if t.n_dense > 0)
        want_dedup = sum(t.n_cdus_raw for t in result.trace
                         if t.level >= 2)
        assert m["join.pairs_examined"]["value"] == want_join
        assert m["dedup.pairs_examined"]["value"] == want_dedup

    def test_pairs_metric_strategy_invariant(self, one_cluster_dataset,
                                             small_params):
        """The hash join reports the paper's pairwise comparison count
        (the cost-model guard), so the metric must not drift between
        join strategies."""
        totals = {}
        for strategy in ("pairwise", "hash"):
            res = mafia(one_cluster_dataset.records,
                        small_params.with_(metrics=True,
                                           join_strategy=strategy),
                        domains=DOMAINS_10D)
            totals[strategy] = res.obs.metrics["join.pairs_examined"]["value"]
        assert totals["pairwise"] == totals["hash"]

    def test_collective_bytes_match_payload_sizes(self):
        """Every collective's byte counter equals ``payload_nbytes`` of
        what was actually sent — checked with a hand-built SPMD program
        around known payloads."""
        arr = np.arange(6, dtype=np.float64)
        blob = b"x" * 123

        def prog(comm):
            obs = RankObs(comm.rank, clock=comm.time)
            with obs.activate(comm):
                comm.allreduce(arr)
                comm.bcast(blob if comm.rank == 0 else None, root=0)
                comm.barrier()
            return obs.export()

        ranks = run_spmd(prog, 2)
        for r in ranks:
            m = r.value.metrics
            key = metric_key("comm.bytes", {"op": "allreduce"})
            assert m[key]["value"] == payload_nbytes(arr)
            assert m[metric_key("comm.collectives",
                                {"op": "allreduce"})]["value"] == 1
            assert m[metric_key("comm.collectives",
                                {"op": "barrier"})]["value"] == 1
            hist = m[metric_key("comm.payload_nbytes",
                                {"op": "allreduce"})]
            assert hist["kind"] == "histogram"
            assert hist["count"] == 1
            assert hist["sum"] == payload_nbytes(arr)
        # bcast counts the broadcast payload on the root
        root = ranks[0].value.metrics
        key = metric_key("comm.bytes", {"op": "bcast"})
        assert root[key]["value"] == payload_nbytes(blob)

    def test_nested_collectives_count_once(self):
        """An allreduce is implemented as allgather (itself gather +
        bcast); only the outermost call may be recorded, or counts and
        spans would triple."""
        def prog(comm):
            obs = RankObs(comm.rank, clock=comm.time)
            with obs.activate(comm):
                comm.allreduce(np.ones(4))
            return obs.export()

        ranks = run_spmd(prog, 2)
        for r in ranks:
            ops = {k: v["value"] for k, v in r.value.metrics.items()
                   if k.startswith("comm.collectives")}
            assert ops == {metric_key("comm.collectives",
                                      {"op": "allreduce"}): 1}
            comm_spans = [s for s in r.value.spans if s.cat == "comm"]
            assert [s.name for s in comm_spans] == ["allreduce"]

    def test_retry_counter_matches_fault_plan(self, one_cluster_dataset,
                                              small_params):
        """Two injected transient read errors -> exactly two recorded
        retries and two recorded fault events."""
        plan = FaultPlan(read_faults=(
            ReadFault(rank=0, site="histogram", chunk=0, errors=2),))
        policy = RetryPolicy(max_attempts=3, base_delay=0.0,
                             sleep=lambda _s: None)
        ranks = run_spmd(pmafia_rank, 1, backend="serial", faults=plan,
                         args=(one_cluster_dataset.records,
                               small_params.with_(trace=True, metrics=True),
                               DOMAINS_10D),
                         kwargs={"retry": policy})
        m = ranks[0].value.obs.metrics
        assert m["io.read_retries"]["value"] == 2
        key = metric_key("faults.injected", {"kind": "read_error"})
        assert m[key]["value"] == 2
        # the injected faults are visible on the same timeline
        faults = [s for s in ranks[0].value.obs.spans if s.cat == "fault"]
        assert len(faults) == 2
        assert all(s.name == "fault.read_error" for s in faults)

    def test_io_counters_cover_every_record(self, one_cluster_dataset,
                                            small_params):
        """Each level pass re-reads all N local records; the records
        counter must be an exact multiple of N."""
        result = mafia(one_cluster_dataset.records,
                       small_params.with_(metrics=True),
                       domains=DOMAINS_10D)
        n = len(one_cluster_dataset.records)
        m = result.obs.metrics
        read = sum(v["value"] for k, v in m.items()
                   if k.startswith("io.records_read"))
        assert read > 0 and read % n == 0
        levels = len(result.trace)
        # one pass per level, served from the bitmap index (which
        # replays the streaming engines' per-chunk accounting exactly)
        key = metric_key("io.records_read", {"kind": "indexed"})
        assert m[key]["value"] == levels * n

    def test_memo_hit_rate_gauge(self, one_cluster_dataset, small_params):
        """The indexed engine publishes its prefix-memo hit rate as a
        gauge reconciling exactly with the hit/miss counters."""
        result = mafia(one_cluster_dataset.records,
                       small_params.with_(metrics=True),
                       domains=DOMAINS_10D)
        m = result.obs.metrics
        assert m["index.memo_hit_rate"]["kind"] == "gauge"
        hits = m["index.memo_hits"]["value"]
        misses = m["index.memo_misses"]["value"]
        rate = m["index.memo_hit_rate"]["value"]
        if hits + misses:
            assert rate == hits / (hits + misses)
        else:
            assert rate == 0.0
        assert 0.0 <= rate <= 1.0

    def test_prefetch_hit_miss_counters(self, one_cluster_dataset,
                                        small_params):
        # prefetch only exists on the streaming engines, so pin the
        # level passes to the binned store for this test
        params = small_params.with_(metrics=True, prefetch=True,
                                    chunk_records=500, bitmap_index="off")
        result = mafia(one_cluster_dataset.records, params,
                       domains=DOMAINS_10D)
        m = result.obs.metrics
        hits = m.get("io.prefetch_hits", {}).get("value", 0)
        misses = m.get("io.prefetch_misses", {}).get("value", 0)
        chunks = m[metric_key("io.chunks_read", {"kind": "binned"})]["value"]
        assert hits + misses == chunks

    def test_lattice_counters_match_trace(self, one_cluster_dataset,
                                          small_params):
        result = mafia(one_cluster_dataset.records,
                       small_params.with_(metrics=True),
                       domains=DOMAINS_10D)
        m = result.obs.metrics
        for t in result.trace:
            label = {"level": str(t.level)}
            assert m[metric_key("lattice.cdus_raw",
                                label)]["value"] == t.n_cdus_raw
            assert m[metric_key("lattice.cdus", label)]["value"] == t.n_cdus
            assert m[metric_key("lattice.dense", label)]["value"] == t.n_dense


class TestMetricsRegistry:
    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1)
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x", a=1)

    def test_snapshot_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        a.gauge("g").set(7)
        b.gauge("g").set(5)
        a.histogram("h").observe(2)
        b.histogram("h").observe(100)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["c"]["value"] == 7          # counters sum
        assert merged["g"]["value"] == 7          # gauges keep the max
        assert merged["h"]["count"] == 2
        assert merged["h"]["sum"] == 102
        assert merged["h"]["min"] == 2
        assert merged["h"]["max"] == 100

    def test_merge_rejects_kind_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1)
        with pytest.raises(TypeError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_snapshot_is_json_and_pickle_clean(self):
        import pickle

        reg = MetricsRegistry()
        reg.counter("n", kind="records").inc(np.int64(5))
        reg.histogram("h").observe(np.float64(3.0))
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == pickle.loads(
            pickle.dumps(snap))
        key = metric_key("n", {"kind": "records"})
        assert type(snap[key]["value"]) is int


class TestExports:
    @pytest.fixture()
    def traced_run(self, one_cluster_dataset, small_params):
        return pmafia(one_cluster_dataset.records, 2,
                      small_params.with_(trace=True, metrics=True),
                      backend="sim", domains=DOMAINS_10D)

    def test_chrome_trace_file_is_valid(self, tmp_path, traced_run):
        path = write_chrome_trace(tmp_path / "trace.json",
                                  traced_run.obs.merged_spans())
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        named = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in named} == {"rank 0", "rank 1"}
        for e in events:
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
                assert "vbegin_s" in e["args"]
        # every span made it across, plus one metadata record per rank
        assert len(events) == len(traced_run.obs.merged_spans()) + 2

    def test_metrics_snapshot_reconciles(self, tmp_path, traced_run):
        path = write_metrics_snapshot(tmp_path / "metrics.json",
                                      traced_run)
        doc = json.loads(path.read_text())
        assert sorted(doc["per_rank"]) == ["0", "1"]
        for key, entry in doc["total"].items():
            if entry["kind"] != "counter":
                continue
            assert entry["value"] == sum(
                doc["per_rank"][r][key]["value"]
                for r in doc["per_rank"] if key in doc["per_rank"][r])

    def test_metrics_snapshot_requires_data(self, tmp_path):
        with pytest.raises(ValueError, match="no observability data"):
            write_metrics_snapshot(tmp_path / "m.json", None)

    def test_as_run_obs_coercions(self, traced_run):
        assert as_run_obs(None) is None
        assert as_run_obs(traced_run) is traced_run.obs
        assert as_run_obs(traced_run.obs) is traced_run.obs
        single = as_run_obs(traced_run.result)
        assert isinstance(single, RunObs)
        assert len(single.ranks) == 1

    def test_manifest_contents(self, traced_run):
        result = traced_run.result
        manifest = build_manifest(result,
                                  phases=traced_run.obs.phase_seconds(),
                                  nprocs=2,
                                  virtual_seconds=traced_run.makespan)
        assert manifest["schema"] == SCHEMA
        assert manifest["grid_fingerprint"] == \
            grid_fingerprint(result.grid).hex()
        assert manifest["n_records"] == result.n_records
        assert manifest["nprocs"] == 2
        assert manifest["virtual_seconds"] == traced_run.makespan
        assert [lv["level"] for lv in manifest["levels"]] == \
            [t.level for t in result.trace]
        assert manifest["params"]["trace"] is True
        json.dumps(manifest)  # must be directly serialisable

    def test_resumable_run_writes_manifest(self, tmp_path,
                                           one_cluster_dataset,
                                           small_params):
        run = pmafia_resumable(one_cluster_dataset.records, 2,
                               small_params.with_(trace=True, metrics=True),
                               checkpoint_dir=tmp_path, domains=DOMAINS_10D)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["schema"] == SCHEMA
        assert manifest["n_records"] == run.result.n_records
        assert manifest["levels"] == [
            {"level": t.level, "n_cdus_raw": t.n_cdus_raw,
             "n_cdus": t.n_cdus, "n_dense": t.n_dense}
            for t in run.result.trace]


class TestCliFlags:
    @pytest.fixture()
    def npy_data(self, tmp_path, one_cluster_dataset):
        path = tmp_path / "data.npy"
        np.save(path, one_cluster_dataset.records[:2000])
        return path

    def test_trace_and_metrics_out(self, tmp_path, npy_data, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        rc = cli_main(["run", str(npy_data), "--fine-bins", "100",
                       "--window", "2", "--chunk", "1000",
                       "--trace-out", str(trace_path),
                       "--metrics-out", str(metrics_path)])
        assert rc == 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        metrics = json.loads(metrics_path.read_text())
        assert metrics["total"]
        manifest = json.loads(
            (trace_path.parent / MANIFEST_NAME).read_text())
        assert manifest["schema"] == SCHEMA
        assert manifest["nprocs"] == 1

    def test_flags_rejected_for_clique(self, npy_data, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["run", str(npy_data), "--algorithm", "clique",
                      "--trace-out", str(tmp_path / "t.json")])


class TestServeObservability:
    """The serving engine meters through the same RankObs: serve.*
    metrics and score_batch spans land beside a run's own, and the
    ``obs=None`` default stays the zero-cost path."""

    @pytest.fixture()
    def server_parts(self):
        from repro.serve import ClusterServer, compile_clusters
        from repro.types import Cluster, DNFTerm, Subspace
        sub = Subspace((0, 1))
        cluster = Cluster(
            subspace=sub, units_bins=np.zeros((1, 2), dtype=np.int64),
            dnf=(DNFTerm(subspace=sub,
                         intervals=((0.2, 0.6), (0.1, 0.9))),),
            point_count=1)
        model = compile_clusters([cluster], ndim=2)
        records = np.random.default_rng(0).uniform(0, 1, (200, 2))
        return ClusterServer, model, records

    def test_metrics_and_spans_recorded(self, server_parts):
        ClusterServer, model, records = server_parts
        obs = RankObs(0)
        server = ClusterServer(model, obs=obs)
        server.score_batch(records)
        server.score_batch(records)  # second pass is cache-warm
        snap = obs.metrics.snapshot()
        assert snap["serve.batches"]["value"] == 2
        assert snap["serve.records"]["value"] == 400
        assert snap["serve.cache_hits"]["value"] + \
            snap["serve.cache_misses"]["value"] == 400
        assert snap["serve.batch_latency_us"]["count"] == 2
        spans = [s for s in obs.tracer.spans if s.cat == "serve"]
        assert len(spans) == 2
        assert spans[0].name == "score_batch"
        assert spans[0].attrs["n_records"] == 200

    def test_serve_spans_export_to_chrome_trace(self, tmp_path,
                                                server_parts):
        ClusterServer, model, records = server_parts
        obs = RankObs(0)
        ClusterServer(model, obs=obs).score_batch(records)
        path = write_chrome_trace(tmp_path / "t.json",
                                  obs.export().spans)
        events = json.loads(path.read_text())["traceEvents"]
        assert any(e.get("cat") == "serve"
                   and e.get("name") == "score_batch" for e in events)

    def test_obs_none_records_nothing(self, server_parts):
        ClusterServer, model, records = server_parts
        server = ClusterServer(model)
        assert server._obs is None
        server.score_batch(records)  # must not touch any observer

    def test_metrics_off_half_is_guarded(self, server_parts):
        ClusterServer, model, records = server_parts
        obs = RankObs(0, trace=True, metrics=False)
        ClusterServer(model, obs=obs).score_batch(records)
        assert obs.metrics is None  # serve_batch degraded to a no-op
        assert any(s.cat == "serve" for s in obs.tracer.spans)
        obs2 = RankObs(0, trace=False, metrics=True)
        ClusterServer(model, obs=obs2).score_batch(records)
        assert obs2.tracer is None
        assert obs2.metrics.snapshot()["serve.batches"]["value"] == 1

    def test_serve_summary_shapes(self, server_parts):
        ClusterServer, model, records = server_parts
        assert serve_summary(None) is None
        obs = RankObs(0)
        assert serve_summary(obs) is None  # nothing served yet
        ClusterServer(model, obs=obs).score_batch(records)
        summary = serve_summary(obs)
        assert summary["batches"] == 1
        assert summary["records"] == 200
        assert summary["latency_us"]["count"] == 1
        json.dumps(summary)

    def test_manifest_serve_section_is_optional(self, one_cluster_dataset):
        result = mafia(one_cluster_dataset.records,
                       OBS_PARAMS, domains=DOMAINS_10D)
        phases = result.obs.phase_seconds()
        without = build_manifest(result, phases=phases)
        assert "serve" not in without
        with_serve = build_manifest(result, phases=phases,
                                    serve={"batches": 1})
        assert with_serve["serve"] == {"batches": 1}
        # the serve key is the only difference
        with_serve.pop("serve")
        assert with_serve == without


class TestZeroCostDisabled:
    def test_disabled_run_carries_nothing(self, one_cluster_dataset,
                                          small_params):
        result = mafia(one_cluster_dataset.records, small_params,
                       domains=DOMAINS_10D)
        assert result.obs is None
        run = pmafia(one_cluster_dataset.records, 2, small_params,
                     domains=DOMAINS_10D)
        assert run.obs is None

    def test_comm_observer_slot_restored(self):
        comm = SerialComm()
        assert comm.obs is None
        obs = RankObs(0)
        with obs.activate(comm):
            assert comm.obs is obs
        assert comm.obs is None

    def test_phase_timer_still_works_alongside_tracing(
            self, one_cluster_dataset, small_params):
        """The deprecated-but-stable phase_timer API keeps returning the
        same phase names as before, and the traced run records matching
        phase spans."""
        with phase_timer() as times:
            result = mafia(one_cluster_dataset.records,
                           small_params.with_(trace=True),
                           domains=DOMAINS_10D)
        traced_phases = result.obs.phase_seconds()
        assert set(times.seconds) == set(traced_phases)
        for name, secs in traced_phases.items():
            assert secs == pytest.approx(times.seconds[name], rel=0.5,
                                         abs=0.05)

    def test_trace_only_and_metrics_only(self, one_cluster_dataset,
                                         small_params):
        trace_only = mafia(one_cluster_dataset.records,
                           small_params.with_(trace=True),
                           domains=DOMAINS_10D)
        assert trace_only.obs.spans and trace_only.obs.metrics is None
        metrics_only = mafia(one_cluster_dataset.records,
                             small_params.with_(metrics=True),
                             domains=DOMAINS_10D)
        assert metrics_only.obs.metrics and metrics_only.obs.spans == ()
