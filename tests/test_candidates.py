"""Tests for the MAFIA CDU join (repro.core.candidates)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidates import join_all, join_block
from repro.core.partition import triangular_splits
from repro.core.units import UnitTable
from repro.errors import DataError


def table(*units):
    return UnitTable.from_pairs(list(units))


class TestJoinLevel1to2:
    def test_pairs_of_distinct_dimensions(self):
        dense = table([(0, 3)], [(1, 5)], [(2, 7)])
        jr = join_all(dense)
        got = {u for u in jr.cdus.unique()}
        assert got == {((0, 3), (1, 5)), ((0, 3), (2, 7)), ((1, 5), (2, 7))}
        assert jr.combined.all()

    def test_same_dimension_units_never_join(self):
        dense = table([(0, 3)], [(0, 4)])
        jr = join_all(dense)
        assert jr.cdus.n_units == 0
        assert not jr.combined.any()

    def test_seven_dense_bins_give_21_cdus(self):
        """Table 2's pMAFIA row at k=2: C(7,2) = 21."""
        dense = table(*[[(d, 0)] for d in range(7)])
        jr = join_all(dense)
        assert jr.cdus.unique().n_units == 21


class TestJoinAnySharedDims:
    def test_paper_example_figure(self):
        """§3's example: {a1,b7,c8} and {b7,c8,d9} (3-d units sharing 2
        dims) must yield the 4-d candidate {a1,b7,c8,d9}, which CLIQUE's
        prefix join misses."""
        dense = table([(0, 1), (6, 7), (7, 8)],   # a1 b7 c8
                      [(6, 7), (7, 8), (8, 9)])   # b7 c8 d9
        jr = join_all(dense)
        assert jr.cdus.n_units == 1
        assert jr.cdus.unit(0) == ((0, 1), (6, 7), (7, 8), (8, 9))

    def test_shared_dims_must_agree_on_bins(self):
        dense = table([(0, 1), (1, 1)],
                      [(1, 2), (2, 2)])  # share dim 1 with different bins
        assert join_all(dense).cdus.n_units == 0

    def test_insufficient_overlap_rejected(self):
        dense = table([(0, 1), (1, 1), (2, 1)],
                      [(3, 1), (4, 1), (5, 1)])  # 3-d units sharing 0 dims
        assert join_all(dense).cdus.n_units == 0

    def test_total_overlap_rejected(self):
        """Identical dimension sets (sharing k−1 dims) must not join."""
        dense = table([(0, 1), (1, 1)],
                      [(0, 1), (1, 2)])
        assert join_all(dense).cdus.n_units == 0

    def test_duplicate_candidates_generated(self):
        """Three 2-d faces of a 3-cube generate the same 3-d CDU from
        three different pairs — the repeats dedup must remove (Fig 2)."""
        dense = table([(0, 0), (1, 0)], [(0, 0), (2, 0)], [(1, 0), (2, 0)])
        jr = join_all(dense)
        assert jr.cdus.n_units == 3
        assert jr.cdus.unique().n_units == 1

    def test_combined_mask_marks_both_sides(self):
        dense = table([(0, 1)], [(1, 1)], [(0, 2)])
        jr = join_all(dense)
        # unit 2 (dim 0) joins unit 1 (dim 1) but not unit 0 (same dim)
        assert jr.combined.tolist() == [True, True, True]

    def test_noncombinable_unit_flagged(self):
        dense = table([(0, 1), (1, 1)],
                      [(5, 5), (6, 6)])  # nothing shared
        jr = join_all(dense)
        assert not jr.combined.any()


class TestJoinBlocks:
    @pytest.mark.parametrize("nblocks", [1, 2, 3, 5])
    def test_block_union_equals_full_join(self, nblocks):
        rng = np.random.default_rng(0)
        units = []
        for _ in range(30):
            dims = sorted(rng.choice(6, size=3, replace=False).tolist())
            units.append([(d, int(rng.integers(0, 3))) for d in dims])
        dense = UnitTable.from_pairs(units).unique()
        full = join_all(dense)
        offsets = triangular_splits(dense.n_units, nblocks)
        parts = [join_block(dense, offsets[i], offsets[i + 1])
                 for i in range(nblocks)]
        merged = UnitTable.concat_all([p.cdus for p in parts])
        assert merged.unique() == full.cdus.unique()
        combined = np.zeros(dense.n_units, dtype=bool)
        for p in parts:
            combined |= p.combined
        np.testing.assert_array_equal(combined, full.combined)

    def test_pairs_examined_counts_triangular_work(self):
        dense = table(*[[(d, 0)] for d in range(10)])
        jr = join_block(dense, 2, 5)
        assert jr.pairs_examined == (10 - 2) + (10 - 3) + (10 - 4)

    def test_empty_block(self):
        dense = table([(0, 0)], [(1, 0)])
        jr = join_block(dense, 1, 1)
        assert jr.cdus.n_units == 0 and jr.pairs_examined == 0

    def test_range_validation(self):
        dense = table([(0, 0)])
        with pytest.raises(DataError):
            join_block(dense, 0, 5)

    def test_empty_table(self):
        jr = join_all(UnitTable.empty(2))
        assert jr.cdus.n_units == 0 and jr.cdus.level == 3


class TestJoinProperties:
    def test_output_level_increments(self):
        dense = table([(0, 0), (1, 0)], [(1, 0), (2, 0)])
        assert join_all(dense).cdus.level == 3

    def test_output_dims_sorted(self):
        dense = table([(3, 0), (5, 0)], [(1, 0), (3, 0)])
        jr = join_all(dense)
        assert jr.cdus.unit(0) == ((1, 0), (3, 0), (5, 0))

    def test_k_subsets_of_clean_cluster(self):
        """A clean k-d cluster's dense units at level l are exactly the
        C(k, l) l-subsets — the Table 2 pMAFIA invariant end to end."""
        from math import comb
        k = 6
        dense = table(*[[(d, 0)] for d in range(k)])
        for level in range(2, k + 1):
            jr = join_all(dense)
            dense = jr.cdus.unique()
            assert dense.n_units == comb(k, level)
