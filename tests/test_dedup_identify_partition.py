"""Tests for repeat elimination, dense identification and the
equation-(1) task partition (repro.core.{dedup,identify,partition})."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dedup import drop_repeats, repeat_flags_block
from repro.core.identify import (dense_flags_block, dense_units,
                                 unit_thresholds)
from repro.core.partition import (even_splits, prefix_work, row_work,
                                  split_range, triangular_splits)
from repro.core.units import UnitTable
from repro.errors import DataError, ParameterError
from repro.types import DimensionGrid, Grid


def table(*units):
    return UnitTable.from_pairs(list(units))


class TestDedup:
    def test_blockwise_flags_or_to_full_mask(self):
        t = table([(0, 1)], [(1, 1)], [(0, 1)], [(1, 1)], [(0, 1)])
        full = t.repeat_mask()
        merged = np.zeros(t.n_units, dtype=bool)
        offsets = triangular_splits(t.n_units, 3)
        for i in range(3):
            merged |= repeat_flags_block(t, offsets[i], offsets[i + 1])
        np.testing.assert_array_equal(merged, full)

    def test_first_occurrence_survives(self):
        t = table([(1, 1)], [(0, 0)], [(1, 1)])
        u = drop_repeats(t, t.repeat_mask())
        assert list(u) == [((1, 1),), ((0, 0),)]

    def test_no_repeats_is_identity(self):
        t = table([(0, 0)], [(1, 1)])
        assert drop_repeats(t, t.repeat_mask()) == t

    def test_mask_shape_checked(self):
        t = table([(0, 0)])
        with pytest.raises(DataError):
            drop_repeats(t, np.array([True, False]))

    def test_block_bounds_checked(self):
        with pytest.raises(DataError):
            repeat_flags_block(table([(0, 0)]), 0, 5)


def make_grid():
    """2-d grid: dim 0 has bins with thresholds (10, 50); dim 1 (30,)."""
    return Grid(dims=(
        DimensionGrid(dim=0, edges=(0.0, 1.0, 2.0), thresholds=(10.0, 50.0)),
        DimensionGrid(dim=1, edges=(0.0, 5.0), thresholds=(30.0,)),
    ))


class TestIdentify:
    def test_threshold_is_max_of_bins(self):
        """§4.4: a CDU's count is compared against the thresholds of ALL
        its bins — i.e. it must exceed their maximum."""
        grid = make_grid()
        units = table([(0, 0), (1, 0)], [(0, 1), (1, 0)])
        thr = unit_thresholds(grid, units)
        np.testing.assert_allclose(thr, [30.0, 50.0])

    def test_dense_is_strictly_greater(self):
        grid = make_grid()
        units = table([(0, 0)], [(0, 1)])
        thr = unit_thresholds(grid, units)
        flags = dense_flags_block(np.array([10, 51]), thr)
        assert flags.tolist() == [False, True]

    def test_min_points_filter(self):
        grid = make_grid()
        units = table([(0, 0)], [(0, 0)])
        thr = unit_thresholds(grid, units)
        flags = dense_flags_block(np.array([20, 20]), thr, min_points=21)
        assert not flags.any()

    def test_blockwise_flags_or_correctly(self):
        grid = make_grid()
        units = table([(0, 0)], [(0, 1)], [(1, 0)], [(0, 0)])
        thr = unit_thresholds(grid, units)
        counts = np.array([100, 100, 100, 5])
        full = dense_flags_block(counts, thr)
        merged = np.zeros(4, dtype=bool)
        offsets = even_splits(4, 2)
        for i in range(2):
            merged |= dense_flags_block(counts, thr, offsets[i],
                                        offsets[i + 1])
        np.testing.assert_array_equal(merged, full)

    def test_dense_units_subsets(self):
        units = table([(0, 0)], [(0, 1)], [(1, 0)])
        counts = np.array([5, 100, 7])
        mask = np.array([False, True, False])
        sub, sub_counts = dense_units(units, counts, mask)
        assert list(sub) == [((0, 1),)]
        assert sub_counts.tolist() == [100]

    def test_unknown_dims_or_bins_rejected(self):
        grid = make_grid()
        with pytest.raises(DataError):
            unit_thresholds(grid, table([(2, 0)]))
        with pytest.raises(DataError):
            unit_thresholds(grid, table([(1, 1)]))

    def test_empty_table(self):
        assert unit_thresholds(make_grid(), UnitTable.empty(1)).size == 0


class TestTriangularPartition:
    def test_row_and_prefix_work(self):
        assert row_work(10, 0) == 10 and row_work(10, 9) == 1
        assert prefix_work(10, 10) == 55
        assert prefix_work(10, 0) == 0
        assert prefix_work(10, 3) == 10 + 9 + 8

    def test_offsets_monotone_and_cover(self):
        for n in (0, 1, 7, 100, 1000):
            for p in (1, 2, 4, 16):
                offsets = triangular_splits(n, p)
                assert offsets[0] == 0 and offsets[-1] == n
                assert all(a <= b for a, b in zip(offsets, offsets[1:]))

    def test_work_balanced_within_one_row(self):
        """Equation (1): every rank's work is Ndu(Ndu+1)/2p up to the
        granularity of a single row."""
        n, p = 1000, 8
        offsets = triangular_splits(n, p)
        ideal = n * (n + 1) / (2 * p)
        for i in range(p):
            work = prefix_work(n, offsets[i + 1]) - prefix_work(n, offsets[i])
            assert abs(work - ideal) <= n  # one row's worth of slack

    def test_first_rank_gets_fewest_rows(self):
        """Early rows carry more comparisons, so rank 0's row range must
        be the smallest."""
        offsets = triangular_splits(1000, 4)
        sizes = np.diff(offsets)
        assert sizes[0] < sizes[-1]

    def test_split_range(self):
        assert split_range(100, 4, 0)[0] == 0
        assert split_range(100, 4, 3)[1] == 100

    def test_even_splits(self):
        assert even_splits(10, 3) == [0, 4, 7, 10]
        assert even_splits(0, 3) == [0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ParameterError):
            triangular_splits(-1, 2)
        with pytest.raises(ParameterError):
            triangular_splits(10, 0)
        with pytest.raises(ParameterError):
            row_work(5, 5)
        with pytest.raises(ParameterError):
            split_range(10, 2, 2)


class TestSplitProperties:
    """Property-based invariants for the weighted fence builders: every
    output must be a valid fence-post vector (monotone, spanning
    [0, n]) for *any* non-negative weights, and the generalisation
    chain even -> triangular -> weighted -> proportional must close."""

    hyp = pytest.importorskip("hypothesis")

    from hypothesis import given, settings
    from hypothesis import strategies as st

    weights_st = st.lists(
        st.floats(min_value=0.0, max_value=1e12, allow_nan=False,
                  allow_infinity=False),
        min_size=0, max_size=200)
    ranks_st = st.integers(min_value=1, max_value=32)

    @staticmethod
    def _check_fences(offsets, n, n_ranks):
        assert len(offsets) == n_ranks + 1
        assert offsets[0] == 0 and offsets[-1] == n
        assert all(a <= b for a, b in zip(offsets, offsets[1:]))
        assert all(isinstance(o, int) for o in offsets)

    @given(weights=weights_st, n_ranks=ranks_st)
    @settings(max_examples=200, deadline=None)
    def test_weighted_splits_always_valid_fences(self, weights, n_ranks):
        from repro.core.partition import weighted_splits
        offsets = weighted_splits(weights, n_ranks)
        self._check_fences(offsets, len(weights), n_ranks)

    @given(weights=weights_st, n_ranks=ranks_st)
    @settings(max_examples=200, deadline=None)
    def test_uniform_shares_reduce_to_weighted(self, weights, n_ranks):
        """proportional_splits with equal shares matches weighted_splits
        up to float tie-breaking: a 1-ulp difference in the prefix
        target may shift a fence across a tie (including a plateau of
        zero-weight rows), moving at most one boundary row's worth of
        work — never a second row."""
        from repro.core.partition import (proportional_splits,
                                          weighted_splits)
        shares = np.full(n_ranks, 1.0 / n_ranks)
        got = proportional_splits(weights, shares)
        want = weighted_splits(weights, n_ranks)
        assert len(got) == len(want)
        w = np.asarray(weights, dtype=np.float64)
        prefix = np.concatenate([[0.0], np.cumsum(w)])
        heaviest = float(w.max()) if w.size else 0.0
        tol = heaviest + 1e-6 * float(prefix[-1]) + 1e-12
        for g, f in zip(got, want):
            assert abs(prefix[g] - prefix[f]) <= tol

    @given(weights=weights_st,
           shares=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                     allow_nan=False,
                                     allow_infinity=False),
                           min_size=1, max_size=32))
    @settings(max_examples=200, deadline=None)
    def test_proportional_splits_always_valid_fences(self, weights,
                                                     shares):
        from repro.core.partition import proportional_splits
        if sum(shares) <= 0:
            shares = [s + 1.0 for s in shares]
        offsets = proportional_splits(weights, shares)
        self._check_fences(offsets, len(weights), len(shares))

    @given(weights=weights_st, n_ranks=ranks_st)
    @settings(max_examples=100, deadline=None)
    def test_weighted_splits_balance_bound(self, weights, n_ranks):
        """No rank's share of the total work may exceed the ideal
        1/p share by more than one row's worth of weight."""
        from repro.core.partition import weighted_splits
        w = np.asarray(weights, dtype=np.float64)
        offsets = weighted_splits(weights, n_ranks)
        total = float(w.sum())
        if total == 0:
            return
        ideal = total / n_ranks
        heaviest = float(w.max())
        for lo, hi in zip(offsets, offsets[1:]):
            assert float(w[lo:hi].sum()) <= ideal + heaviest + 1e-6

    @given(n=st.integers(min_value=0, max_value=500), n_ranks=ranks_st)
    @settings(max_examples=100, deadline=None)
    def test_triangular_weights_match_triangular_splits(self, n, n_ranks):
        """weights = [n, n-1, ..., 1] reproduces the closed form."""
        from repro.core.partition import weighted_splits
        weights = np.arange(n, 0, -1, dtype=np.float64)
        got = weighted_splits(weights, n_ranks)
        want = triangular_splits(n, n_ranks)
        # both balance identical prefix work; demand equal imbalance
        # rather than equal cuts (rounding may differ by one row)
        tri = n * (n + 1) / 2
        for fences in (got, want):
            self._check_fences(fences, n, n_ranks)
            for lo, hi in zip(fences, fences[1:]):
                work = float(weights[lo:hi].sum())
                assert work <= tri / n_ranks + n + 1e-6

    @given(weights=weights_st)
    @settings(max_examples=100, deadline=None)
    def test_starved_share_gets_empty_range(self, weights):
        """A zero share is legal (a parked rank): it must produce an
        empty fence range, never steal rows."""
        from repro.core.partition import proportional_splits
        offsets = proportional_splits(weights, [1.0, 0.0, 1.0])
        self._check_fences(offsets, len(weights), 3)
        w = np.asarray(weights, dtype=np.float64)
        mid = float(w[offsets[1]:offsets[2]].sum())
        # rank 1's range may hold at most one boundary row's weight
        assert mid <= (float(w.max()) if w.size else 0.0) + 1e-6

    def test_proportional_splits_validation(self):
        from repro.core.partition import proportional_splits
        with pytest.raises(ParameterError):
            proportional_splits([1.0, 2.0], [])
        with pytest.raises(ParameterError):
            proportional_splits([1.0, 2.0], [0.0, 0.0])
        with pytest.raises(ParameterError):
            proportional_splits([1.0, 2.0], [1.0, -1.0])
        with pytest.raises(ParameterError):
            proportional_splits([1.0, 2.0], [1.0, float("nan")])
        with pytest.raises(ParameterError):
            proportional_splits([[1.0], [2.0]], [1.0])
        with pytest.raises(ParameterError):
            proportional_splits([-1.0], [1.0])

    def test_more_ranks_than_units(self):
        """16 ranks over a 3-row lattice: trailing ranks get empty but
        valid ranges on both weighted and proportional paths."""
        from repro.core.partition import (proportional_splits,
                                          weighted_splits)
        offsets = weighted_splits([5.0, 3.0, 1.0], 16)
        self._check_fences(offsets, 3, 16)
        offsets = proportional_splits([5.0, 3.0, 1.0], np.ones(16) / 16)
        self._check_fences(offsets, 3, 16)

    def test_single_unit_lattice(self):
        """One row: exactly one rank gets it, whoever's share covers
        the first positive prefix target."""
        from repro.core.partition import (proportional_splits,
                                          weighted_splits)
        for offsets in (weighted_splits([7.0], 4),
                        proportional_splits([7.0], [1.0, 1.0, 1.0, 1.0])):
            self._check_fences(offsets, 1, 4)
            widths = [b - a for a, b in zip(offsets, offsets[1:])]
            assert sum(widths) == 1 and max(widths) == 1
