"""Tests for repeat elimination, dense identification and the
equation-(1) task partition (repro.core.{dedup,identify,partition})."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dedup import drop_repeats, repeat_flags_block
from repro.core.identify import (dense_flags_block, dense_units,
                                 unit_thresholds)
from repro.core.partition import (even_splits, prefix_work, row_work,
                                  split_range, triangular_splits)
from repro.core.units import UnitTable
from repro.errors import DataError, ParameterError
from repro.types import DimensionGrid, Grid


def table(*units):
    return UnitTable.from_pairs(list(units))


class TestDedup:
    def test_blockwise_flags_or_to_full_mask(self):
        t = table([(0, 1)], [(1, 1)], [(0, 1)], [(1, 1)], [(0, 1)])
        full = t.repeat_mask()
        merged = np.zeros(t.n_units, dtype=bool)
        offsets = triangular_splits(t.n_units, 3)
        for i in range(3):
            merged |= repeat_flags_block(t, offsets[i], offsets[i + 1])
        np.testing.assert_array_equal(merged, full)

    def test_first_occurrence_survives(self):
        t = table([(1, 1)], [(0, 0)], [(1, 1)])
        u = drop_repeats(t, t.repeat_mask())
        assert list(u) == [((1, 1),), ((0, 0),)]

    def test_no_repeats_is_identity(self):
        t = table([(0, 0)], [(1, 1)])
        assert drop_repeats(t, t.repeat_mask()) == t

    def test_mask_shape_checked(self):
        t = table([(0, 0)])
        with pytest.raises(DataError):
            drop_repeats(t, np.array([True, False]))

    def test_block_bounds_checked(self):
        with pytest.raises(DataError):
            repeat_flags_block(table([(0, 0)]), 0, 5)


def make_grid():
    """2-d grid: dim 0 has bins with thresholds (10, 50); dim 1 (30,)."""
    return Grid(dims=(
        DimensionGrid(dim=0, edges=(0.0, 1.0, 2.0), thresholds=(10.0, 50.0)),
        DimensionGrid(dim=1, edges=(0.0, 5.0), thresholds=(30.0,)),
    ))


class TestIdentify:
    def test_threshold_is_max_of_bins(self):
        """§4.4: a CDU's count is compared against the thresholds of ALL
        its bins — i.e. it must exceed their maximum."""
        grid = make_grid()
        units = table([(0, 0), (1, 0)], [(0, 1), (1, 0)])
        thr = unit_thresholds(grid, units)
        np.testing.assert_allclose(thr, [30.0, 50.0])

    def test_dense_is_strictly_greater(self):
        grid = make_grid()
        units = table([(0, 0)], [(0, 1)])
        thr = unit_thresholds(grid, units)
        flags = dense_flags_block(np.array([10, 51]), thr)
        assert flags.tolist() == [False, True]

    def test_min_points_filter(self):
        grid = make_grid()
        units = table([(0, 0)], [(0, 0)])
        thr = unit_thresholds(grid, units)
        flags = dense_flags_block(np.array([20, 20]), thr, min_points=21)
        assert not flags.any()

    def test_blockwise_flags_or_correctly(self):
        grid = make_grid()
        units = table([(0, 0)], [(0, 1)], [(1, 0)], [(0, 0)])
        thr = unit_thresholds(grid, units)
        counts = np.array([100, 100, 100, 5])
        full = dense_flags_block(counts, thr)
        merged = np.zeros(4, dtype=bool)
        offsets = even_splits(4, 2)
        for i in range(2):
            merged |= dense_flags_block(counts, thr, offsets[i],
                                        offsets[i + 1])
        np.testing.assert_array_equal(merged, full)

    def test_dense_units_subsets(self):
        units = table([(0, 0)], [(0, 1)], [(1, 0)])
        counts = np.array([5, 100, 7])
        mask = np.array([False, True, False])
        sub, sub_counts = dense_units(units, counts, mask)
        assert list(sub) == [((0, 1),)]
        assert sub_counts.tolist() == [100]

    def test_unknown_dims_or_bins_rejected(self):
        grid = make_grid()
        with pytest.raises(DataError):
            unit_thresholds(grid, table([(2, 0)]))
        with pytest.raises(DataError):
            unit_thresholds(grid, table([(1, 1)]))

    def test_empty_table(self):
        assert unit_thresholds(make_grid(), UnitTable.empty(1)).size == 0


class TestTriangularPartition:
    def test_row_and_prefix_work(self):
        assert row_work(10, 0) == 10 and row_work(10, 9) == 1
        assert prefix_work(10, 10) == 55
        assert prefix_work(10, 0) == 0
        assert prefix_work(10, 3) == 10 + 9 + 8

    def test_offsets_monotone_and_cover(self):
        for n in (0, 1, 7, 100, 1000):
            for p in (1, 2, 4, 16):
                offsets = triangular_splits(n, p)
                assert offsets[0] == 0 and offsets[-1] == n
                assert all(a <= b for a, b in zip(offsets, offsets[1:]))

    def test_work_balanced_within_one_row(self):
        """Equation (1): every rank's work is Ndu(Ndu+1)/2p up to the
        granularity of a single row."""
        n, p = 1000, 8
        offsets = triangular_splits(n, p)
        ideal = n * (n + 1) / (2 * p)
        for i in range(p):
            work = prefix_work(n, offsets[i + 1]) - prefix_work(n, offsets[i])
            assert abs(work - ideal) <= n  # one row's worth of slack

    def test_first_rank_gets_fewest_rows(self):
        """Early rows carry more comparisons, so rank 0's row range must
        be the smallest."""
        offsets = triangular_splits(1000, 4)
        sizes = np.diff(offsets)
        assert sizes[0] < sizes[-1]

    def test_split_range(self):
        assert split_range(100, 4, 0)[0] == 0
        assert split_range(100, 4, 3)[1] == 100

    def test_even_splits(self):
        assert even_splits(10, 3) == [0, 4, 7, 10]
        assert even_splits(0, 3) == [0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ParameterError):
            triangular_splits(-1, 2)
        with pytest.raises(ParameterError):
            triangular_splits(10, 0)
        with pytest.raises(ParameterError):
            row_work(5, 5)
        with pytest.raises(ParameterError):
            split_range(10, 2, 2)
