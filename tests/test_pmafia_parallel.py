"""Parallel pMAFIA tests: serial/parallel equivalence, backend behaviour,
task-parallel paths, file staging (repro.core.{pmafia,mafia})."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MachineSpec, MafiaParams, mafia, pmafia
from repro.io import write_records
from tests.conftest import DOMAINS_10D


def clusters_of(result):
    return [(c.subspace.dims, c.units_bins.tolist()) for c in result.clusters]


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 8])
    def test_same_clusters_any_p(self, one_cluster_dataset, small_params,
                                 nprocs):
        serial = mafia(one_cluster_dataset.records, small_params,
                       domains=DOMAINS_10D)
        run = pmafia(one_cluster_dataset.records, nprocs, small_params,
                     domains=DOMAINS_10D)
        assert clusters_of(run.result) == clusters_of(serial)
        assert run.result.cdus_per_level() == serial.cdus_per_level()
        assert run.result.dense_per_level() == serial.dense_per_level()

    def test_task_parallel_path_exercised(self, one_cluster_dataset):
        """With τ=0 every join/dedup/identify goes through the
        task-partitioned branch; results must not change."""
        params = MafiaParams(fine_bins=200, window_size=2,
                             chunk_records=2000, tau=0)
        serial = mafia(one_cluster_dataset.records, params,
                       domains=DOMAINS_10D)
        run = pmafia(one_cluster_dataset.records, 4, params,
                     domains=DOMAINS_10D)
        assert clusters_of(run.result) == clusters_of(serial)

    def test_redundant_path_exercised(self, one_cluster_dataset):
        """With a huge τ all ranks redundantly process everything."""
        params = MafiaParams(fine_bins=200, window_size=2,
                             chunk_records=2000, tau=10**9)
        serial = mafia(one_cluster_dataset.records, params,
                       domains=DOMAINS_10D)
        run = pmafia(one_cluster_dataset.records, 3, params,
                     domains=DOMAINS_10D)
        assert clusters_of(run.result) == clusters_of(serial)

    def test_two_clusters_parallel(self, two_cluster_dataset):
        run = pmafia(two_cluster_dataset.records, 4,
                     MafiaParams(chunk_records=5000), domains=DOMAINS_10D)
        assert sorted(c.subspace.dims for c in run.result.clusters) == [
            (1, 6, 7, 8), (2, 3, 4, 5)]

    def test_p_larger_than_interesting_work(self, one_cluster_dataset,
                                            small_params):
        """More ranks than dense units: blocks go empty but the result
        stands."""
        run = pmafia(one_cluster_dataset.records, 8,
                     small_params.with_(tau=0), domains=DOMAINS_10D)
        assert [c.subspace.dims for c in run.result.clusters] == [(1, 3, 5, 7)]


class TestFileStagedRuns:
    def test_shared_file_staged_to_rank_locals(self, tmp_path,
                                               one_cluster_dataset,
                                               small_params):
        shared = tmp_path / "shared.bin"
        write_records(shared, one_cluster_dataset.records)
        run = pmafia(shared, 3, small_params, domains=DOMAINS_10D)
        assert [c.subspace.dims for c in run.result.clusters] == [(1, 3, 5, 7)]
        # rank-private local copies exist
        for rank in range(3):
            assert (tmp_path / f"shared.rank{rank}.bin").exists()

    def test_file_and_array_agree(self, tmp_path, one_cluster_dataset,
                                  small_params):
        shared = tmp_path / "shared.bin"
        write_records(shared, one_cluster_dataset.records)
        from_file = pmafia(shared, 2, small_params, domains=DOMAINS_10D)
        from_array = pmafia(one_cluster_dataset.records, 2, small_params,
                            domains=DOMAINS_10D)
        assert clusters_of(from_file.result) == clusters_of(from_array.result)


class TestSimBackend:
    def test_sim_matches_thread_results(self, one_cluster_dataset,
                                        small_params):
        thread = pmafia(one_cluster_dataset.records, 4, small_params,
                        domains=DOMAINS_10D)
        sim = pmafia(one_cluster_dataset.records, 4, small_params,
                     backend="sim", domains=DOMAINS_10D)
        assert clusters_of(sim.result) == clusters_of(thread.result)

    def test_sim_times_positive_and_synchronised(self, one_cluster_dataset,
                                                 small_params):
        run = pmafia(one_cluster_dataset.records, 4, small_params,
                     backend="sim", domains=DOMAINS_10D)
        assert run.makespan > 0
        # the final bcast of the result synchronises every clock
        assert max(run.rank_times) - min(run.rank_times) < 0.2 * run.makespan

    def test_sim_is_deterministic(self, one_cluster_dataset, small_params):
        a = pmafia(one_cluster_dataset.records, 4, small_params,
                   backend="sim", domains=DOMAINS_10D)
        b = pmafia(one_cluster_dataset.records, 4, small_params,
                   backend="sim", domains=DOMAINS_10D)
        assert a.rank_times == b.rank_times

    def test_speedup_with_more_ranks(self, two_cluster_dataset):
        """Virtual time must drop with processor count (near-linearly on
        this data-parallel-dominated workload)."""
        params = MafiaParams(chunk_records=2500)
        times = {}
        for p in (1, 2, 4):
            run = pmafia(two_cluster_dataset.records, p, params,
                         backend="sim", domains=DOMAINS_10D)
            times[p] = run.makespan
        assert times[2] < times[1] and times[4] < times[2]
        assert times[1] / times[4] > 2.5  # near-linear, allow overheads

    def test_counters_recorded_per_rank(self, one_cluster_dataset,
                                        small_params):
        run = pmafia(one_cluster_dataset.records, 2, small_params,
                     backend="sim", domains=DOMAINS_10D)
        for counters in run.counters:
            assert counters is not None
            assert counters.record_cell_ops > 0
            assert counters.io_chunks > 0
            assert counters.messages > 0

    def test_custom_machine(self, one_cluster_dataset, small_params):
        slow = MachineSpec(record_cell_op=1e-5)
        fast = MachineSpec(record_cell_op=1e-8)
        t_slow = pmafia(one_cluster_dataset.records, 2, small_params,
                        backend="sim", machine=slow,
                        domains=DOMAINS_10D).makespan
        t_fast = pmafia(one_cluster_dataset.records, 2, small_params,
                        backend="sim", machine=fast,
                        domains=DOMAINS_10D).makespan
        assert t_slow > t_fast


class TestRunMetadata:
    def test_run_records_backend_and_nprocs(self, one_cluster_dataset,
                                            small_params):
        run = pmafia(one_cluster_dataset.records, 2, small_params,
                     domains=DOMAINS_10D)
        assert run.nprocs == 2 and run.backend == "thread"
        assert run.makespan == 0.0  # untimed backend

    def test_single_rank_uses_serial_backend(self, one_cluster_dataset,
                                             small_params):
        run = pmafia(one_cluster_dataset.records, 1, small_params,
                     domains=DOMAINS_10D)
        assert run.backend == "serial"
