"""Smoke tests: every example script must run to completion and print
its headline output (examples are documentation — they must not rot)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "subspace exact" in out
        assert "recall" in out

    def test_out_of_core(self):
        out = run_example("out_of_core.py")
        assert "staged their blocks" in out
        assert "(1, 3, 5)" in out

    def test_score_stream(self):
        out = run_example("score_stream.py")
        assert "served 20000 requests" in out
        assert "hits" in out and "evaluations" in out


@pytest.mark.slow
class TestSlowExamples:
    def test_parallel_speedup(self):
        out = run_example("parallel_speedup.py")
        assert "matches the serial result" in out
        assert "speedup" in out

    def test_movie_ratings(self):
        out = run_example("movie_ratings.py")
        assert "two-dimensional clusters" in out

    def test_stock_indicators(self):
        out = run_example("stock_indicators.py")
        assert "clusters per subspace dimensionality" in out

    def test_clique_comparison(self):
        out = run_example("clique_comparison.py")
        assert "pMAFIA" in out and "CLIQUE" in out

    def test_introspection(self):
        out = run_example("introspection.py")
        assert "verification: OK" in out
        assert "stable alpha suggestion" in out
