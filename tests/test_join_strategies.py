"""The sub-signature hash join and the fptree engine are bit-identical
drop-ins for the paper's pairwise CDU join.

Property-based equivalence (hypothesis): on random lattices across
levels 1-6 the hash path emits the *same raw CDU table in the same row
order* as the pairwise sweep — for the full join and for arbitrary
row fences — so repeat elimination sees identical first-occurrence
order and every downstream pass is unchanged; the fptree engine must
additionally produce an *array-for-array identical*
:class:`~repro.core.candidates.HashJoinPlan`, which makes fencing,
block assembly and pair charging shared code.  Full-run tests pin the
same statement end-to-end: clusterings are byte-identical between
``join_strategy='hash'``, ``'fptree'`` and ``'pairwise'`` on the
serial, thread and process backends, and invariant to the rank count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MafiaParams, mafia
from repro.core.candidates import (HashJoinPlan, hash_join_all,
                                   hash_join_block, hash_join_plan,
                                   join_all, join_block)
from repro.core.dedup import drop_repeats
from repro.core.fptree import (FPTree, fptree_join_plan, prune_entries,
                               suffix_ids)
from repro.core.partition import triangular_splits, weighted_splits
from repro.core.pmafia import (FPTREE_MAX_KEPT, FPTREE_MIN_LEVEL,
                               HASH_JOIN_MIN_UNITS, pmafia_rank,
                               resolved_join_strategy)
from repro.core.units import UnitTable
from repro.errors import ParameterError
from repro.io.prefetch import prefetched
from repro.parallel import run_spmd
from repro.parallel.comm import Comm
from tests.conftest import DOMAINS_10D


@st.composite
def lattices(draw, max_units=40, min_level=1, max_level=6, max_dim=10,
             max_bin=3):
    """Random (possibly duplicate-free) unit tables.  Few distinct bins
    per dimension force heavy sub-signature bucket collisions."""
    level = draw(st.integers(min_level, max_level))
    n = draw(st.integers(0, max_units))
    units = []
    for _ in range(n):
        dims = draw(st.lists(st.integers(0, max_dim - 1), min_size=level,
                             max_size=level, unique=True))
        unit = [(d, draw(st.integers(0, max_bin - 1))) for d in sorted(dims)]
        units.append(unit)
    if not units:
        return UnitTable.empty(level)
    return UnitTable.from_pairs(units).unique()


def assert_results_equal(a, b):
    assert a.pairs_examined == b.pairs_examined
    assert np.array_equal(a.combined, b.combined)
    assert np.array_equal(a.cdus.dims, b.cdus.dims)
    assert np.array_equal(a.cdus.bins, b.cdus.bins)


class TestHashEqualsPairwise:
    @given(lattices())
    @settings(max_examples=120, deadline=None)
    def test_full_join_bit_identical(self, t):
        assert_results_equal(join_all(t), hash_join_all(t))

    @given(lattices(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_block_join_bit_identical_for_any_fences(self, t, data):
        n = t.n_units
        plan = hash_join_plan(t)
        fences = sorted(data.draw(st.lists(st.integers(0, n), min_size=0,
                                           max_size=4)))
        cuts = [0] + fences + [n]
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            assert_results_equal(join_block(t, lo, hi),
                                 hash_join_block(t, lo, hi, plan=plan))

    @given(lattices())
    @settings(max_examples=60, deadline=None)
    def test_dedup_sees_identical_first_occurrence_order(self, t):
        raw_p = join_all(t).cdus
        raw_h = hash_join_all(t).cdus
        assert drop_repeats(raw_p, raw_p.repeat_mask()) \
            == drop_repeats(raw_h, raw_h.repeat_mask())

    @given(lattices())
    @settings(max_examples=60, deadline=None)
    def test_plan_row_counts_are_per_pivot_pair_counts(self, t):
        plan = hash_join_plan(t)
        for i in range(t.n_units):
            assert plan.row_pair_counts[i] \
                == join_block(t, i, i + 1).cdus.n_units
        assert plan.row_pair_counts.sum() == plan.n_pairs

    @given(lattices())
    @settings(max_examples=40, deadline=None)
    def test_rank_partition_reassembles_serial_table(self, t):
        """Concatenating per-rank hash fragments in rank order (the
        driver's gather) reproduces the serial raw table for both the
        triangular and the weighted fences."""
        n = t.n_units
        serial = hash_join_all(t).cdus
        plan = hash_join_plan(t)
        for p in (2, 3, 5):
            for offsets in (triangular_splits(n, p),
                            weighted_splits(plan.row_pair_counts, p)):
                parts = [hash_join_block(t, offsets[r], offsets[r + 1],
                                         plan=plan).cdus
                         for r in range(p)]
                assert UnitTable.concat_all(parts) == serial

    def test_empty_and_tiny_tables(self):
        for t in (UnitTable.empty(1), UnitTable.empty(3),
                  UnitTable.from_pairs([[(0, 1)]]),
                  UnitTable.from_pairs([[(0, 1), (2, 0)]])):
            assert_results_equal(join_all(t), hash_join_all(t))


def assert_plans_equal(a: HashJoinPlan, b: HashJoinPlan) -> None:
    """Array-for-array plan identity, dtypes included — the contract
    that lets fencing, block assembly and pair charging share code."""
    assert a.n_units == b.n_units and a.level == b.level
    for name in ("left", "right", "right_token", "row_pair_counts"):
        x, y = getattr(a, name), getattr(b, name)
        assert x.dtype == y.dtype, name
        assert np.array_equal(x, y), name


class TestFPTreeEqualsHash:
    @given(lattices())
    @settings(max_examples=120, deadline=None)
    def test_plan_bit_identical(self, t):
        assert_plans_equal(hash_join_plan(t), fptree_join_plan(t))

    @given(lattices())
    @settings(max_examples=60, deadline=None)
    def test_full_join_bit_identical_to_pairwise(self, t):
        plan = fptree_join_plan(t)
        assert_results_equal(join_all(t),
                             hash_join_block(t, 0, t.n_units, plan=plan))

    @given(lattices(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_block_join_bit_identical_for_any_fences(self, t, data):
        n = t.n_units
        plan = fptree_join_plan(t)
        fences = sorted(data.draw(st.lists(st.integers(0, n), min_size=0,
                                           max_size=4)))
        cuts = [0] + fences + [n]
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            assert_results_equal(join_block(t, lo, hi),
                                 hash_join_block(t, lo, hi, plan=plan))

    @given(lattices())
    @settings(max_examples=60, deadline=None)
    def test_dedup_sees_identical_first_occurrence_order(self, t):
        raw_p = join_all(t).cdus
        raw_f = hash_join_block(t, 0, t.n_units,
                                plan=fptree_join_plan(t)).cdus
        assert drop_repeats(raw_p, raw_p.repeat_mask()) \
            == drop_repeats(raw_f, raw_f.repeat_mask())

    @given(lattices())
    @settings(max_examples=40, deadline=None)
    def test_rank_partition_reassembles_serial_table(self, t):
        n = t.n_units
        serial = hash_join_all(t).cdus
        plan = fptree_join_plan(t)
        for p in (2, 3, 5):
            for offsets in (triangular_splits(n, p),
                            weighted_splits(plan.row_pair_counts, p)):
                parts = [hash_join_block(t, offsets[r], offsets[r + 1],
                                         plan=plan).cdus
                         for r in range(p)]
                assert UnitTable.concat_all(parts) == serial

    @given(lattices())
    @settings(max_examples=60, deadline=None)
    def test_precomputed_prune_mask_changes_nothing(self, t):
        """The auto policy hands its probed support-prune mask down;
        the plan must not depend on who computed it."""
        if t.n_units < 2:
            return
        keep = prune_entries(t.tokens(), t.n_units, t.level)
        assert_plans_equal(fptree_join_plan(t),
                           fptree_join_plan(t, keep=keep))

    @given(lattices())
    @settings(max_examples=60, deadline=None)
    def test_prune_never_drops_a_pairable_entry(self, t):
        """Entries surviving the support prune account for every pair
        the hash join finds — the prune is a pure false-positive
        filter."""
        if t.n_units < 2:
            return
        keep = prune_entries(t.tokens(), t.n_units, t.level)
        plan = hash_join_plan(t)
        pairable = np.zeros(t.n_units, dtype=bool)
        pairable[plan.left] = True
        pairable[plan.right] = True
        assert keep.any(axis=1)[pairable].all()

    def test_trie_support_counts(self):
        """Node counts are per-prefix supports (root counts all rows)."""
        t = UnitTable.from_pairs([
            [(0, 1), (1, 0)], [(0, 1), (1, 1)], [(0, 1), (2, 0)],
            [(3, 0), (4, 0)]])
        tok = t.tokens().astype(np.int64)
        order = np.lexsort(tuple(tok[:, c] for c in
                                 range(tok.shape[1] - 1, -1, -1)))
        tree = FPTree.build(tok[order])
        assert tree.node_count[0] == t.n_units
        # the shared (0,1) prefix node supports three of the four rows
        assert tree.node_count[1:].max() == 3
        # 2 depth-1 nodes + 4 distinct depth-2 leaves, plus the root
        assert tree.n_nodes == 7
        assert tree.n_edges == 6

    def test_empty_and_tiny_tables(self):
        for t in (UnitTable.empty(1), UnitTable.empty(3),
                  UnitTable.from_pairs([[(0, 1)]]),
                  UnitTable.from_pairs([[(0, 1), (2, 0)]])):
            assert_plans_equal(hash_join_plan(t), fptree_join_plan(t))


class TestFPTreeGuards:
    """Empty and single-transaction inputs — reachable from a rank
    whose shard keeps no (or one) dense row at the probe level — must
    build degenerate but well-formed tries, not crash the row-shift
    vectorisation."""

    def test_build_no_transactions(self):
        for m in (1, 3, 6):
            tree = FPTree.build(np.zeros((0, m), dtype=np.int64))
            assert tree.node_count[0] == 0
            assert tree.n_edges == 0
            assert tree.path.shape == (0, m + 1)

    def test_build_zero_width_rows(self):
        tree = FPTree.build(np.zeros((5, 0), dtype=np.int64))
        assert tree.n_edges == 0
        assert tree.node_count[0] == 5  # the root supports every row

    def test_build_single_transaction_is_one_chain(self):
        ts = np.array([[3, 7, 11]], dtype=np.int64)
        tree = FPTree.build(ts)
        assert tree.n_nodes == 4 and tree.n_edges == 3
        assert (tree.node_count == 1).all()
        assert tree.path.tolist() == [[0, 1, 2, 3]]

    def test_suffix_ids_degenerate_inputs(self):
        assert suffix_ids(np.zeros((0, 4), dtype=np.int64)).shape == (0, 5)
        one = suffix_ids(np.array([[5, 9]], dtype=np.int64))
        assert one.tolist() == [[0, 0, 0]]

    def test_single_unit_plan_matches_hash(self):
        t = UnitTable.from_pairs([[(0, 1), (2, 0), (4, 3)]])
        assert_plans_equal(hash_join_plan(t), fptree_join_plan(t))


class TestPruneDegenerates:
    """Degenerate support-prune cascades: the mask must collapse to
    all-kept or all-pruned exactly when the lattice structure says so,
    for any table the generators produce."""

    @given(lattices(min_level=1, max_level=1))
    @settings(max_examples=60, deadline=None)
    def test_level_one_keeps_all_or_nothing(self, t):
        """m=1: every drop-one sequence is the empty sequence, so every
        entry pairs with every other — all kept iff a partner exists."""
        if t.n_units == 0:
            return
        keep = prune_entries(t.tokens(), t.n_units, 1)
        if t.n_units == 1:
            assert not keep.any()
        else:
            assert keep.all()

    @given(st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_single_unit_prunes_everything(self, level):
        t = UnitTable.from_pairs(
            [[(d, 1) for d in range(level)]])
        keep = prune_entries(t.tokens(), 1, level)
        assert not keep.any()

    @given(st.integers(2, 6), st.integers(2, 30))
    @settings(max_examples=60, deadline=None)
    def test_disjoint_token_blocks_prune_everything(self, level, n):
        """Each unit lives in its own private dim block, so no two
        drop-one sequences share even one token — the cascade must
        drain the whole table."""
        dims = np.arange(n * level, dtype=np.uint8).reshape(n, level)
        bins = np.zeros((n, level), dtype=np.uint8)
        t = UnitTable(dims=dims, bins=bins)
        keep = prune_entries(t.tokens(), n, level)
        assert not keep.any()

    @given(lattices(min_level=2))
    @settings(max_examples=60, deadline=None)
    def test_duplicated_rows_keep_everything(self, t):
        """Doubling the table gives every entry an identical twin, so
        the prune may not drop a single entry."""
        if t.n_units == 0:
            return
        dup = UnitTable.concat_all([t, t])
        keep = prune_entries(dup.tokens(), dup.n_units, t.level)
        assert keep.all()

    @given(lattices(min_level=2))
    @settings(max_examples=40, deadline=None)
    def test_prune_is_sound_under_any_cascade_outcome(self, t):
        """Whatever the cascade converged to, the surviving entries
        account for every pair the exact engines find (restating the
        pure-false-positive-filter contract on the degenerate shapes
        this class constructs)."""
        if t.n_units < 2:
            return
        keep = prune_entries(t.tokens(), t.n_units, t.level)
        plan = hash_join_plan(t)
        pairable = np.zeros(t.n_units, dtype=bool)
        pairable[plan.left] = True
        pairable[plan.right] = True
        assert keep.any(axis=1)[pairable].all()


class TestWeightedSplits:
    @given(st.lists(st.integers(0, 50), max_size=60), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_fences_are_monotone_and_cover(self, weights, p):
        offsets = weighted_splits(weights, p)
        assert offsets[0] == 0 and offsets[-1] == len(weights)
        assert all(a <= b for a, b in zip(offsets, offsets[1:]))
        assert len(offsets) == p + 1

    def test_matches_triangular_on_triangular_weights(self):
        n = 500
        tri = triangular_splits(n, 4)
        wgt = weighted_splits(np.arange(n, 0, -1), 4)
        assert all(abs(a - b) <= 1 for a, b in zip(tri, wgt))

    def test_balances_realised_work(self):
        rng = np.random.default_rng(3)
        w = rng.integers(0, 100, size=400)
        offsets = weighted_splits(w, 4)
        loads = [w[offsets[r]:offsets[r + 1]].sum() for r in range(4)]
        assert max(loads) <= w.sum() / 4 + w.max()

    def test_rejects_bad_input(self):
        with pytest.raises(ParameterError):
            weighted_splits([1, 2], 0)
        with pytest.raises(ParameterError):
            weighted_splits([-1, 2], 2)


class _StubComm(Comm):
    rank, size = 0, 1


class _StubSimComm(_StubComm):
    models_paper_costs = True


def _sparse_table(n=600, level=5, n_dims=40, seed=0):
    """No two units share a drop-one sub-signature: a prefix-sparse
    lattice, the fptree engine's win regime."""
    rng = np.random.default_rng(seed)
    rows = np.stack([np.sort(rng.choice(n_dims, size=level, replace=False))
                     for _ in range(n)]).astype(np.uint8)
    bins = rng.integers(0, 8, size=(n, level)).astype(np.uint8)
    return UnitTable(dims=rows, bins=bins).unique()


def _saturated_table(level=5, n_dims=9):
    """Every level-subset of one dim block at one bin — a combinatorial
    core where every drop-one sub-signature is shared and the trie
    prunes nothing."""
    from itertools import combinations
    units = [[(d, 1) for d in combo]
             for combo in combinations(range(n_dims), level)]
    return UnitTable.from_pairs(units)


class TestAutoPolicy:
    def test_explicit_strategies_win(self):
        for strategy in ("hash", "pairwise", "fptree"):
            params = MafiaParams(join_strategy=strategy)
            assert resolved_join_strategy(params, _StubSimComm(), 10**6) \
                == (strategy, None)

    def test_auto_is_pairwise_on_sim_backend(self):
        params = MafiaParams(join_strategy="auto")
        assert resolved_join_strategy(params, _StubSimComm(), 10**6) \
            == ("pairwise", None)

    def test_auto_threshold_on_wallclock_backends(self):
        params = MafiaParams(join_strategy="auto")
        comm = _StubComm()
        assert resolved_join_strategy(params, comm,
                                      HASH_JOIN_MIN_UNITS) \
            == ("pairwise", None)
        assert resolved_join_strategy(params, comm,
                                      HASH_JOIN_MIN_UNITS + 1) \
            == ("hash", None)

    def test_auto_picks_fptree_on_sparse_high_level_lattices(self):
        params = MafiaParams(join_strategy="auto")
        t = _sparse_table(level=FPTREE_MIN_LEVEL + 1)
        strategy, keep = resolved_join_strategy(
            params, _StubComm(), t.n_units, t.level, tokens=t.tokens())
        assert strategy == "fptree"
        assert keep is not None and keep.shape == (t.n_units, t.level)
        assert keep.mean() <= FPTREE_MAX_KEPT

    def test_auto_demotes_to_hash_on_saturated_lattices(self):
        params = MafiaParams(join_strategy="auto")
        t = _saturated_table(level=FPTREE_MIN_LEVEL + 1, n_dims=12)
        assert t.n_units > HASH_JOIN_MIN_UNITS
        strategy, keep = resolved_join_strategy(
            params, _StubComm(), t.n_units, t.level, tokens=t.tokens())
        assert strategy == "hash" and keep is None

    def test_auto_never_probes_below_min_level(self):
        params = MafiaParams(join_strategy="auto")
        t = _sparse_table(level=FPTREE_MIN_LEVEL - 1)
        strategy, keep = resolved_join_strategy(
            params, _StubComm(), t.n_units, t.level, tokens=t.tokens())
        assert strategy == "hash" and keep is None

    def test_params_validation(self):
        with pytest.raises(ParameterError):
            MafiaParams(join_strategy="quantum")
        with pytest.raises(ParameterError):
            MafiaParams(prefetch="yes")


def fingerprint(result):
    return (
        result.cdus_per_level(),
        result.dense_per_level(),
        tuple(c.describe() for c in result.clusters),
        tuple(c.point_count for c in result.clusters),
    )


@pytest.fixture(scope="module")
def strategy_params(small_params):
    # tau=1 forces the task-parallel join/dedup path even on this small
    # lattice, so the weighted fences really are exercised
    return small_params.with_(tau=1)


@pytest.fixture(scope="module")
def reference(one_cluster_dataset, strategy_params):
    return fingerprint(
        mafia(one_cluster_dataset.records,
              strategy_params.with_(join_strategy="pairwise"),
              domains=DOMAINS_10D))


class TestFullRunsIdentical:
    @pytest.mark.parametrize("backend,nprocs", [
        ("serial", 1), ("thread", 2), ("thread", 5), ("process", 2)])
    def test_hash_equals_pairwise_across_backends_and_ranks(
            self, one_cluster_dataset, strategy_params, reference,
            backend, nprocs):
        for strategy in ("hash", "fptree", "auto"):
            params = strategy_params.with_(join_strategy=strategy)
            ranks = run_spmd(pmafia_rank, nprocs, backend=backend,
                             args=(one_cluster_dataset.records, params,
                                   DOMAINS_10D))
            for rank in ranks:
                assert fingerprint(rank.value) == reference

    def test_prefetch_does_not_change_results(self, one_cluster_dataset,
                                              strategy_params, reference):
        for nprocs in (1, 3):
            params = strategy_params.with_(join_strategy="hash",
                                           prefetch=True)
            ranks = run_spmd(pmafia_rank, nprocs, backend="thread",
                             args=(one_cluster_dataset.records, params,
                                   DOMAINS_10D))
            for rank in ranks:
                assert fingerprint(rank.value) == reference


class TestPrefetched:
    def test_preserves_order_and_items(self):
        assert list(prefetched(iter(range(100)))) == list(range(100))
        assert list(prefetched(iter([]))) == []

    def test_propagates_reader_exceptions_in_order(self):
        def gen():
            yield 1
            yield 2
            raise OSError("boom")

        it = prefetched(gen())
        assert next(it) == 1
        assert next(it) == 2
        with pytest.raises(OSError, match="boom"):
            next(it)

    def test_abandoning_joins_reader_thread(self):
        import threading

        before = threading.active_count()
        it = prefetched(iter(range(1000)))
        assert next(it) == 0
        it.close()
        assert threading.active_count() == before
