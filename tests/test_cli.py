"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import _parse_cluster, build_parser, main
from repro.io import read_header, write_records


@pytest.fixture
def record_file(tmp_path, one_cluster_dataset):
    path = tmp_path / "data.bin"
    write_records(path, one_cluster_dataset.records)
    return path


class TestParseCluster:
    def test_single_dim(self):
        spec = _parse_cluster("3:10:20")
        assert spec.dims == (3,)
        assert spec.boxes == (((10.0, 20.0),),)

    def test_multi_dim_sorted(self):
        spec = _parse_cluster("5:1:2,1:3:4")
        assert spec.dims == (1, 5)
        assert spec.boxes == (((3.0, 4.0), (1.0, 2.0)),)

    def test_malformed(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_cluster("5:1")


class TestGenerateAndInfo:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "gen.bin"
        rc = main(["generate", str(out), "--records", "500", "--dims", "4",
                   "--cluster", "0:10:30,2:40:60", "--seed", "3"])
        assert rc == 0
        info = read_header(out)
        assert info.n_records == 550 and info.n_dims == 4

    def test_info(self, record_file, capsys):
        assert main(["info", str(record_file)]) == 0
        out = capsys.readouterr().out
        assert "5500 records x 10 dims" in out

    def test_info_missing_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path / "missing.bin")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_run_text_output(self, record_file, capsys):
        rc = main(["run", str(record_file), "--fine-bins", "200",
                   "--window", "2", "--chunk", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clusters: 1" in out
        assert "(1, 3, 5, 7)" in out

    def test_run_json_output(self, record_file, capsys):
        rc = main(["run", str(record_file), "--fine-bins", "200",
                   "--window", "2", "--chunk", "2000", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "pmafia-result"
        assert len(payload["clusters"]) == 1
        assert payload["clusters"][0]["subspace"] == [1, 3, 5, 7]

    def test_run_parallel(self, record_file, capsys):
        rc = main(["run", str(record_file), "--procs", "3",
                   "--fine-bins", "200", "--window", "2",
                   "--chunk", "2000"])
        assert rc == 0
        assert "clusters: 1" in capsys.readouterr().out

    def test_run_clique(self, record_file, capsys):
        rc = main(["run", str(record_file), "--algorithm", "clique",
                   "--bins", "10", "--threshold", "0.02",
                   "--chunk", "2000"])
        assert rc == 0
        assert "clusters:" in capsys.readouterr().out

    def test_run_npy_input(self, tmp_path, one_cluster_dataset, capsys):
        path = tmp_path / "data.npy"
        np.save(path, one_cluster_dataset.records)
        rc = main(["run", str(path), "--fine-bins", "200", "--window", "2",
                   "--chunk", "2000"])
        assert rc == 0
        assert "(1, 3, 5, 7)" in capsys.readouterr().out

    def test_run_csv_input(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        data = rng.random((800, 3)) * 100
        data[:500, 1] = 40 + rng.random(500) * 10
        path = tmp_path / "data.csv"
        np.savetxt(path, data, delimiter=",")
        rc = main(["run", str(path), "--fine-bins", "50", "--window", "2",
                   "--chunk", "500"])
        assert rc == 0


class TestBinCacheFlag:
    def test_default_is_memory(self):
        args = build_parser().parse_args(["run", "x.bin"])
        assert args.bin_cache == "memory"

    @pytest.mark.parametrize("policy", ["memory", "disk", "off"])
    def test_policies_accepted_and_equivalent(self, record_file, capsys,
                                              policy):
        rc = main(["run", str(record_file), "--fine-bins", "200",
                   "--window", "2", "--chunk", "2000",
                   "--bin-cache", policy])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clusters: 1" in out
        assert "(1, 3, 5, 7)" in out

    def test_unknown_policy_rejected(self, record_file, capsys):
        with pytest.raises(SystemExit):
            main(["run", str(record_file), "--bin-cache", "ram"])
        assert "--bin-cache" in capsys.readouterr().err


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestVerifyFlag:
    def test_run_with_verify_passes(self, record_file, capsys):
        rc = main(["run", str(record_file), "--fine-bins", "200",
                   "--window", "2", "--chunk", "2000", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verification: OK" in out

class TestCheckpointFlags:
    def test_run_with_checkpoint_dir(self, record_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        rc = main(["run", str(record_file), "--fine-bins", "200",
                   "--window", "2", "--chunk", "2000", "--procs", "2",
                   "--checkpoint-dir", str(ckpt)])
        assert rc == 0
        assert list(ckpt.glob("level*.ckpt"))
        # a second invocation resumes from the completed run
        rc = main(["run", str(record_file), "--fine-bins", "200",
                   "--window", "2", "--chunk", "2000", "--procs", "2",
                   "--checkpoint-dir", str(ckpt), "--resume"])
        assert rc == 0

    def test_resume_requires_checkpoint_dir(self, record_file, capsys):
        with pytest.raises(SystemExit):
            main(["run", str(record_file), "--resume"])
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_dir_rejected_for_clique(self, record_file, tmp_path,
                                                capsys):
        with pytest.raises(SystemExit):
            main(["run", str(record_file), "--algorithm", "clique",
                  "--checkpoint-dir", str(tmp_path / "c")])
        assert "clique" in capsys.readouterr().err
