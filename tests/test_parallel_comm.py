"""Tests for the communicator substrate: serial + thread backends,
collectives, abort semantics (repro.parallel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommAborted, CommError
from repro.parallel import (Comm, REDUCE_OPS, SerialComm, ThreadWorld,
                            run_spmd)
from repro.parallel.comm import resolve_op


class TestSerialComm:
    def test_rank_and_size(self):
        c = SerialComm()
        assert c.rank == 0 and c.size == 1

    def test_self_send_recv_fifo_per_tag(self):
        c = SerialComm()
        c.send("a", 0, tag=1)
        c.send("b", 0, tag=1)
        c.send("x", 0, tag=2)
        assert c.recv(0, tag=1) == "a"
        assert c.recv(0, tag=2) == "x"
        assert c.recv(0, tag=1) == "b"

    def test_recv_without_message_raises(self):
        with pytest.raises(CommError):
            SerialComm().recv(0)

    def test_send_to_other_rank_rejected(self):
        with pytest.raises(CommError):
            SerialComm().send("x", 1)

    def test_collectives_are_identities(self):
        c = SerialComm()
        assert c.bcast(42) == 42
        assert c.gather("v") == ["v"]
        assert c.allgather("v") == ["v"]
        assert c.scatter(["only"]) == "only"
        np.testing.assert_array_equal(c.allreduce(np.arange(3)), np.arange(3))
        c.barrier()

    def test_allreduce_returns_copy(self):
        c = SerialComm()
        a = np.arange(3)
        out = c.allreduce(a)
        out[0] = 99
        assert a[0] == 0

    def test_unknown_reduce_op(self):
        with pytest.raises(CommError):
            SerialComm().allreduce(np.arange(3), op="median")

    def test_scatter_wrong_length(self):
        with pytest.raises(CommError):
            SerialComm().scatter(["a", "b"])


class TestReduceOps:
    @pytest.mark.parametrize("name", sorted(REDUCE_OPS))
    def test_all_registered_ops_resolve(self, name):
        assert resolve_op(name) is REDUCE_OPS[name]

    def test_ops_are_associative_on_samples(self):
        rng = np.random.default_rng(0)
        a, b, c = rng.integers(1, 5, (3, 6)).astype(float)
        for name in ("sum", "max", "min", "prod"):
            fn = REDUCE_OPS[name]
            np.testing.assert_allclose(fn(fn(a, b), c), fn(a, fn(b, c)))


def _spmd_values(fn, nprocs, **kw):
    return [r.value for r in run_spmd(fn, nprocs, **kw)]


class TestThreadBackendCollectives:
    @pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
    def test_bcast_from_each_root(self, nprocs):
        def prog(comm):
            out = []
            for root in range(comm.size):
                out.append(comm.bcast(f"msg{root}" if comm.rank == root
                                      else None, root=root))
            return out
        for values in _spmd_values(prog, nprocs):
            assert values == [f"msg{r}" for r in range(nprocs)]

    def test_gather_rank_order(self):
        def prog(comm):
            return comm.gather(comm.rank * 10, root=1)
        values = _spmd_values(prog, 4)
        assert values[1] == [0, 10, 20, 30]
        assert values[0] is None and values[2] is None and values[3] is None

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.rank))
        for values in _spmd_values(prog, 4):
            assert values == ["a", "b", "c", "d"]

    def test_scatter(self):
        def prog(comm):
            objs = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)
        assert _spmd_values(prog, 4) == [0, 1, 4, 9]

    @pytest.mark.parametrize("op,expected", [
        ("sum", 0 + 1 + 2 + 3), ("max", 3), ("min", 0), ("prod", 0)])
    def test_allreduce_ops(self, op, expected):
        def prog(comm):
            return comm.allreduce(np.full(4, comm.rank), op=op)
        for values in _spmd_values(prog, 4):
            assert (values == expected).all()

    def test_allreduce_lor(self):
        def prog(comm):
            mine = np.zeros(4, dtype=bool)
            mine[comm.rank] = True
            return comm.allreduce(mine, op="lor")
        for values in _spmd_values(prog, 4):
            assert values.all()

    def test_reduce_lands_on_root_only(self):
        def prog(comm):
            return comm.reduce(np.array([comm.rank]), op="sum", root=2)
        values = _spmd_values(prog, 3)
        assert values[2].tolist() == [3]
        assert values[0] is None and values[1] is None

    def test_point_to_point_ring(self):
        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            comm.send(comm.rank, nxt, tag=7)
            return comm.recv(prev, tag=7)
        assert _spmd_values(prog, 5) == [4, 0, 1, 2, 3]

    def test_tags_demultiplex(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("tag-9", 1, tag=9)
                comm.send("tag-3", 1, tag=3)
                return None
            first = comm.recv(0, tag=3)
            second = comm.recv(0, tag=9)
            return (first, second)
        assert _spmd_values(prog, 2)[1] == ("tag-3", "tag-9")

    def test_barrier_returns(self):
        def prog(comm):
            comm.barrier()
            return comm.rank
        assert _spmd_values(prog, 4) == [0, 1, 2, 3]

    def test_allreduce_shape_mismatch_raises(self):
        def prog(comm):
            return comm.allreduce(np.zeros(comm.rank + 1))
        with pytest.raises(CommError):
            run_spmd(prog, 2)


class TestSpmdRunner:
    def test_serial_backend_requires_one_rank(self):
        with pytest.raises(CommError):
            run_spmd(lambda c: None, 2, backend="serial")

    def test_unknown_backend(self):
        with pytest.raises(CommError):
            run_spmd(lambda c: None, 1, backend="mpi")

    def test_machine_only_for_sim(self):
        from repro.parallel import MachineSpec
        with pytest.raises(CommError):
            run_spmd(lambda c: None, 1, backend="serial",
                     machine=MachineSpec.ibm_sp2())

    def test_args_kwargs_forwarded(self):
        def prog(comm, a, b=0):
            return a + b + comm.rank
        values = _spmd_values(prog, 2, args=(10,), kwargs={"b": 5})
        assert values == [15, 16]

    def test_exception_on_one_rank_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            comm.recv(1)  # would deadlock without abort propagation
        with pytest.raises(ValueError, match="boom on rank 1"):
            run_spmd(prog, 3)

    def test_results_in_rank_order(self):
        values = _spmd_values(lambda c: c.rank, 6)
        assert values == list(range(6))

    def test_nprocs_validation(self):
        with pytest.raises(CommError):
            run_spmd(lambda c: None, 0)


class TestThreadWorld:
    def test_rank_bounds(self):
        world = ThreadWorld(2)
        with pytest.raises(CommError):
            world.comm(2)
        with pytest.raises(CommError):
            ThreadWorld(0)

    def test_abort_interrupts_blocked_recv(self):
        world = ThreadWorld(2)
        comm = world.comm(0)
        world.abort.set()
        with pytest.raises(CommAborted):
            comm.recv(1)
        with pytest.raises(CommAborted):
            comm.send("x", 1)
