"""Tests for the independent result verifier (repro.analysis.verify)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import MafiaParams, mafia, pmafia
from repro.analysis import verify_result
from repro.clique import clique
from repro.core.result import ClusteringResult, LevelTrace
from repro.params import CliqueParams
from tests.conftest import DOMAINS_10D


@pytest.fixture(scope="module")
def result(one_cluster_dataset, small_params):
    return mafia(one_cluster_dataset.records, small_params,
                 domains=DOMAINS_10D)


class TestCleanRunsVerify:
    def test_serial_mafia_passes(self, result, one_cluster_dataset):
        report = verify_result(result, one_cluster_dataset.records,
                               chunk_records=2000)
        assert report.ok, report.summary()
        assert report.checks_run > 20

    def test_parallel_mafia_passes(self, two_cluster_dataset):
        run = pmafia(two_cluster_dataset.records, 4,
                     MafiaParams(chunk_records=5000), domains=DOMAINS_10D)
        report = verify_result(run.result, two_cluster_dataset.records,
                               chunk_records=5000)
        assert report.ok, report.summary()

    def test_clique_passes(self, two_cluster_dataset):
        res = clique(two_cluster_dataset.records,
                     CliqueParams(bins=10, threshold=0.01,
                                  chunk_records=5000), domains=DOMAINS_10D)
        report = verify_result(res, two_cluster_dataset.records,
                               chunk_records=5000)
        assert report.ok, report.summary()

    def test_summary_format(self, result, one_cluster_dataset):
        text = verify_result(result, one_cluster_dataset.records,
                             chunk_records=2000).summary()
        assert text.startswith("verification: OK")


def _tamper_trace(result, level_index, **changes) -> ClusteringResult:
    trace = list(result.trace)
    trace[level_index] = replace(trace[level_index], **changes)
    return ClusteringResult(grid=result.grid, clusters=result.clusters,
                            trace=tuple(trace), params=result.params,
                            n_records=result.n_records)


class TestTamperedRunsFlagged:
    def test_wrong_counts_detected(self, result, one_cluster_dataset):
        bad_counts = result.trace[0].dense_counts.copy()
        bad_counts[0] += 17
        tampered = _tamper_trace(result, 0, dense_counts=bad_counts)
        report = verify_result(tampered, one_cluster_dataset.records,
                               chunk_records=2000)
        assert not report.ok
        assert any("recount" in f for f in report.findings)

    def test_non_dense_unit_detected(self, result, one_cluster_dataset):
        """A stored count at the threshold (not above) must be flagged
        by the density check."""
        bad_counts = result.trace[0].dense_counts.copy()
        bad_counts[0] = 1  # clearly below any threshold
        tampered = _tamper_trace(result, 0, dense_counts=bad_counts)
        report = verify_result(tampered, one_cluster_dataset.records,
                               chunk_records=2000)
        assert any("threshold" in f for f in report.findings)

    def test_broken_closure_detected(self, result, one_cluster_dataset):
        """Removing a level-1 dense unit orphans the level-2 units that
        project onto it."""
        lvl1 = result.trace[0]
        pruned_dense = lvl1.dense.select(np.arange(1, lvl1.dense.n_units))
        tampered = _tamper_trace(
            result, 0, dense=pruned_dense,
            dense_counts=lvl1.dense_counts[1:],
            n_dense=lvl1.n_dense - 1)
        report = verify_result(tampered, one_cluster_dataset.records,
                               chunk_records=2000)
        assert any("projection" in f for f in report.findings)

    def test_wrong_cluster_point_count_detected(self, result,
                                                one_cluster_dataset):
        from dataclasses import replace as dc_replace
        bad_cluster = replace(result.clusters[0],
                              point_count=result.clusters[0].point_count + 5)
        tampered = ClusteringResult(
            grid=result.grid, clusters=(bad_cluster,), trace=result.trace,
            params=result.params, n_records=result.n_records)
        report = verify_result(tampered, one_cluster_dataset.records,
                               chunk_records=2000)
        assert any("point_count" in f for f in report.findings)

    def test_cluster_at_unreached_level_detected(self, result,
                                                 one_cluster_dataset):
        tampered = ClusteringResult(
            grid=result.grid, clusters=result.clusters,
            trace=result.trace[:2],  # drop levels 3-4
            params=result.params, n_records=result.n_records)
        report = verify_result(tampered, one_cluster_dataset.records,
                               chunk_records=2000)
        assert any("never reached" in f for f in report.findings)
